#include "profile/data_model.h"

// to_string(ThreadId) lives in trial_data.cpp next to the packing helpers;
// this translation unit exists so the data model stays a linkable module
// even when nothing else from the profile library is referenced.
