// Crash-recovery harness: fork a child that runs a transactional
// workload with an armed failpoint, let it die mid-write, then reopen
// the store in the parent and check the durability contract:
//
//   - every transaction whose commit() returned is fully present;
//   - a transaction that never reached commit (rolled back, or killed
//     mid-flight) contributes either nothing or — if the crash landed
//     between the WAL write and the commit acknowledgement — all of its
//     rows, never a partial set;
//   - recovery is idempotent: reopening twice yields identical contents.
//
// The workload, the kill point, and the verification all derive from one
// seed, so a failure reproduces exactly; the failing iteration's seed and
// kill point are printed for shrinking by hand.
//
// fork() is unreliable under TSan (the runtime's internal threads do not
// survive it), so the fork-based tests skip there; the ctest `crash`
// label is likewise excluded from the TSan suite in scripts/check.sh.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/connection.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/file.h"
#include "util/log.h"
#include "util/rng.h"

using namespace perfdmf::sqldb;
namespace u = perfdmf::util;
namespace fp = perfdmf::util::failpoint;

#if defined(__SANITIZE_THREAD__)
#define PERFDMF_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PERFDMF_TSAN 1
#endif
#endif

namespace {

// Failpoints are process-global state; never leak one into the next test.
class CrashRecovery : public ::testing::Test {
 protected:
  void TearDown() override { fp::clear_all(); }
};
using FailpointRollback = CrashRecovery;

// ----------------------------------------------------------------- plan

struct TxnPlan {
  std::int64_t id = 0;        // txn marker stored in every row
  int rows = 0;               // rows this transaction inserts
  bool commit = false;        // else ROLLBACK
  bool autocommit_before = false;  // one out-of-txn INSERT first (id + 500)
  bool checkpoint_after = false;
};

/// The deterministic workload for one iteration; the child executes it
/// and the parent verifies against it, each deriving it independently.
std::vector<TxnPlan> make_plan(std::uint64_t seed, int iter) {
  u::Rng rng(seed * 7919 + static_cast<std::uint64_t>(iter));
  std::vector<TxnPlan> plan(2 + rng.next_below(4));
  for (std::size_t t = 0; t < plan.size(); ++t) {
    plan[t].id = static_cast<std::int64_t>(iter) * 1000 +
                 static_cast<std::int64_t>(t);
    plan[t].rows = 1 + static_cast<int>(rng.next_below(5));
    plan[t].commit = rng.next_below(5) != 0;  // 20% planned rollbacks
    plan[t].autocommit_before = rng.next_below(3) == 0;
    plan[t].checkpoint_after = rng.next_below(4) == 0;
  }
  return plan;
}

struct KillPoint {
  const char* site;
  perfdmf::util::FailAction action;
  int countdown;
  int arg;
  // Sticky ENOSPC: the disk "fills" permanently, so the child degrades
  // to read-only and dies on the first rejected write instead of
  // crashing at a single evaluation.
  bool sticky_enospc = false;
};

/// Pick where and how the child dies. kShortWrite only makes sense at
/// fd-backed sites that apply it (the snapshot.* sites are pure
/// crash/error points).
KillPoint make_kill_point(std::uint64_t seed, int iter) {
  u::Rng rng(seed ^ (0x9e3779b9ULL + static_cast<std::uint64_t>(iter) * 31));
  if (rng.next_below(6) == 0) {
    // Degraded-mode kill point: every write to this site fails ENOSPC,
    // the ENOSPC retry loop exhausts, the database enters read-only,
    // and the child exits on the resulting DbError. Nothing it never
    // acknowledged may survive.
    static constexpr const char* kStickySites[] = {"wal.append", "wal.commit",
                                                   "snapshot.write"};
    return {kStickySites[rng.next_below(std::size(kStickySites))],
            perfdmf::util::FailAction::kError, 1, 28 /* ENOSPC */, true};
  }
  static constexpr struct {
    const char* site;
    bool fd_backed;
  } kSites[] = {
      {"wal.append", true},    {"wal.commit", true},
      {"wal.commit", true},  // weighted: the richest crash window
      {"wal.sync", false},     {"wal.reset", false},
      {"wal.group_sync", false},  // leader dies before the group fsync
      {"snapshot.write", false}, {"snapshot.rotate", false},
      {"snapshot.install", false}, {"util.write_file", true},
  };
  const auto& site = kSites[rng.next_below(std::size(kSites))];
  perfdmf::util::FailAction action;
  switch (rng.next_below(3)) {
    case 0:
      action = perfdmf::util::FailAction::kAbort;
      break;
    case 1:
      action = site.fd_backed ? perfdmf::util::FailAction::kShortWrite
                              : perfdmf::util::FailAction::kAbort;
      break;
    default:
      action = perfdmf::util::FailAction::kError;
      break;
  }
  return {site.site, action, 1 + static_cast<int>(rng.next_below(8)),
          static_cast<int>(rng.next_below(64))};
}

// ---------------------------------------------------------------- child

/// Run the iteration's workload with the kill point armed. Reports
/// "<id> <rows>" to `report_path` after each acknowledged commit. Exits
/// via _exit only (no destructors, no checkpoint-on-close): a run that
/// outlives its failpoint still ends as an unclean shutdown, so the
/// parent always recovers from WAL/snapshot state, never from a tidy
/// close.
[[noreturn]] void run_child(const std::filesystem::path& db_dir,
                            const std::filesystem::path& report_path,
                            std::uint64_t seed, int iter) {
  // The child's recovery chatter (reopening after the previous
  // iteration's crash) would flood the test log 200 times over.
  u::set_log_level(u::LogLevel::kOff);

  const int report_fd =
      ::open(report_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (report_fd < 0) ::_exit(70);
  const auto report = [report_fd](std::int64_t id, int rows) {
    char line[64];
    const int len = std::snprintf(line, sizeof line, "%lld %d\n",
                                  static_cast<long long>(id), rows);
    if (::write(report_fd, line, static_cast<std::size_t>(len)) != len) {
      ::_exit(70);
    }
  };

  const KillPoint kill = make_kill_point(seed, iter);
  if (kill.sticky_enospc) {
    fp::enable_every(kill.site, kill.action, 1, kill.arg);
  } else {
    fp::enable(kill.site, kill.action, kill.countdown, kill.arg);
  }

  try {
    Connection conn(db_dir);
    auto stmt = conn.prepare("INSERT INTO log (txn, v) VALUES (?, ?)");
    for (const TxnPlan& t : make_plan(seed, iter)) {
      if (t.autocommit_before) {
        stmt.set_int(1, t.id + 500);
        stmt.set_int(2, 0);
        stmt.execute_update();
        report(t.id + 500, 1);
      }
      // SQL-level transaction control: COMMIT runs through the governed
      // statement path, which defers the WAL fsync into the group-commit
      // queue — so the wal.group_sync kill point lands in the real
      // leader-fsync window, between lock release and acknowledgement.
      conn.execute("BEGIN");
      for (int i = 0; i < t.rows; ++i) {
        stmt.set_int(1, t.id);
        stmt.set_int(2, i);
        stmt.execute_update();
      }
      if (t.commit) {
        conn.execute("COMMIT");
        report(t.id, t.rows);
      } else {
        conn.execute("ROLLBACK");
      }
      if (t.checkpoint_after) conn.checkpoint();
    }
  } catch (const std::exception&) {
    // An injected kError surfaced as IoError: treat it as the crash it
    // simulates.
    ::_exit(fp::kCrashExitCode);
  }
  ::_exit(0);
}

std::map<std::int64_t, std::set<std::int64_t>> dump_rows(Connection& conn) {
  std::map<std::int64_t, std::set<std::int64_t>> rows;
  auto rs = conn.execute("SELECT txn, v FROM log");
  while (rs.next()) rows[rs.get_int(1)].insert(rs.get_int(2));
  return rows;
}

}  // namespace

// ------------------------------------------------------------- harness

TEST_F(CrashRecovery, RandomKillPointsPreserveCommittedTransactions) {
#ifdef PERFDMF_TSAN
  GTEST_SKIP() << "fork() is unreliable under TSan";
#endif
  // PERFDMF_SEED replays a reported failing seed without recompiling.
  const std::uint64_t kSeed = u::seed_from_env(0xC0FFEE);
  constexpr int kIterations = 220;

  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  const auto report_path = dir.path() / "committed.txt";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE log (id INTEGER PRIMARY KEY, txn INTEGER, v INTEGER)");
    conn.execute_update("CREATE INDEX idx_txn ON log (txn)");
    conn.checkpoint();
  }

  // id -> row count the store must hold, accumulated across iterations.
  std::map<std::int64_t, int> expected;

  for (int iter = 0; iter < kIterations; ++iter) {
    const KillPoint kill = make_kill_point(kSeed, iter);
    SCOPED_TRACE(::testing::Message()
                 << "iteration " << iter << ", kill point " << kill.site
                 << " action " << static_cast<int>(kill.action)
                 << " countdown " << kill.countdown << " arg " << kill.arg
                 << (kill.sticky_enospc ? " sticky-enospc" : "")
                 << " (seed 0x" << std::hex << kSeed << std::dec
                 << "; replay with PERFDMF_SEED=" << kSeed << ")");

    std::filesystem::remove(report_path);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) run_child(db_dir, report_path, kSeed, iter);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child did not exit normally";
    const int code = WEXITSTATUS(status);
    ASSERT_TRUE(code == 0 || code == fp::kCrashExitCode)
        << "child exited with unexpected code " << code;

    // Commits the child acknowledged are non-negotiable.
    if (std::filesystem::exists(report_path)) {
      std::ifstream in(report_path);
      std::int64_t id = 0;
      int rows = 0;
      while (in >> id >> rows) expected[id] = rows;
    }

    const auto plan = make_plan(kSeed, iter);
    std::map<std::int64_t, std::set<std::int64_t>> actual;
    {
      Connection conn(db_dir);
      actual = dump_rows(conn);

      for (const TxnPlan& t : plan) {
        const auto it = actual.find(t.id);
        const int count =
            it == actual.end() ? 0 : static_cast<int>(it->second.size());
        if (!t.commit) {
          ASSERT_EQ(count, 0) << "rolled-back txn " << t.id << " left rows";
        } else if (!expected.count(t.id)) {
          // Commit never acknowledged: the crash decides, but atomically.
          ASSERT_TRUE(count == 0 || count == t.rows)
              << "txn " << t.id << " is partially present: " << count << "/"
              << t.rows << " rows";
          if (count != 0) expected[t.id] = t.rows;
        }
        if (t.autocommit_before && !expected.count(t.id + 500)) {
          const auto ac = actual.find(t.id + 500);
          const int ac_count =
              ac == actual.end() ? 0 : static_cast<int>(ac->second.size());
          ASSERT_LE(ac_count, 1) << "autocommit row " << t.id + 500
                                 << " duplicated";
          if (ac_count != 0) expected[t.id + 500] = 1;
        }
      }

      // The store holds exactly the settled state: every expected txn in
      // full, nothing else — committed data survived, uncommitted data
      // (this iteration's and every earlier one's) stayed invisible.
      ASSERT_EQ(actual.size(), expected.size());
      for (const auto& [id, rows] : expected) {
        const auto it = actual.find(id);
        ASSERT_NE(it, actual.end()) << "committed txn " << id << " lost";
        ASSERT_EQ(it->second.size(), static_cast<std::size_t>(rows))
            << "committed txn " << id << " incomplete";
        for (int v = 0; v < rows; ++v) {
          ASSERT_TRUE(it->second.count(v))
              << "txn " << id << " missing row value " << v;
        }
      }
    }  // close: checkpoint-on-close rewrites the snapshot chain

    // Idempotence: recovering the recovered store changes nothing.
    Connection again(db_dir);
    ASSERT_EQ(dump_rows(again), actual)
        << "second recovery produced different contents";
  }
}

// ------------------------------------------- directed failpoint tests

TEST_F(FailpointRollback, CommitWalFailureRollsBackMemoryAndDisk) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");

    fp::enable("wal.commit", perfdmf::util::FailAction::kError);
    conn.begin();
    conn.execute_update("INSERT INTO t (x) VALUES (2)");
    conn.execute_update("INSERT INTO t (x) VALUES (3)");
    EXPECT_THROW(conn.commit(), perfdmf::IoError);

    // The failed commit must leave no trace in memory...
    auto rs = conn.execute("SELECT COUNT(*) FROM t");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 1);
    // ...and the connection stays usable.
    conn.execute_update("INSERT INTO t (x) VALUES (4)");
  }
  // ...nor on disk after recovery.
  Connection conn(db_dir);
  auto rs = conn.execute("SELECT x FROM t ORDER BY x");
  ASSERT_EQ(rs.row_count(), 2u);
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);
  rs.next();
  EXPECT_EQ(rs.get_int(1), 4);
}

TEST_F(FailpointRollback, AutocommitWalFailureRollsBackStatement) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");

    fp::enable("wal.append", perfdmf::util::FailAction::kError);
    EXPECT_THROW(conn.execute_update("INSERT INTO t (x) VALUES (1), (2)"),
                 perfdmf::IoError);
    auto rs = conn.execute("SELECT COUNT(*) FROM t");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 0);  // multi-row statement fully undone
  }
  Connection conn(db_dir);
  auto rs = conn.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 0);
}

TEST_F(FailpointRollback, CheckpointFailureKeepsStoreRecoverable) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.checkpoint();
    conn.execute_update("INSERT INTO t (x) VALUES (2)");

    // Die at each snapshot stage in turn; every one must leave a store
    // that recovers completely.
    for (const char* site : {"snapshot.write", "snapshot.rotate",
                             "snapshot.install", "wal.reset"}) {
      fp::enable(site, perfdmf::util::FailAction::kError);
      EXPECT_THROW(conn.checkpoint(), perfdmf::IoError) << site;
    }
    conn.execute_update("INSERT INTO t (x) VALUES (3)");
    // Leave without a clean close: the final checkpoint fails too.
    fp::enable("snapshot.write", perfdmf::util::FailAction::kError);
  }
  fp::clear_all();
  Connection conn(db_dir);
  auto rs = conn.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);
}

TEST_F(CrashRecovery, TornCommitWriteIsInvisibleAfterRestart) {
#ifdef PERFDMF_TSAN
  GTEST_SKIP() << "fork() is unreliable under TSan";
#endif
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.checkpoint();
  }
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    u::set_log_level(u::LogLevel::kOff);
    // Persist 40 bytes of the commit record, then die — a torn write.
    fp::enable("wal.commit", perfdmf::util::FailAction::kShortWrite, 1, 40);
    try {
      Connection conn(db_dir);
      conn.begin();
      conn.execute_update("INSERT INTO t (x) VALUES (2)");
      conn.execute_update("INSERT INTO t (x) VALUES (3)");
      conn.commit();  // dies inside the WAL write
    } catch (const std::exception&) {
    }
    ::_exit(1);  // only the failpoint exit is expected
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), fp::kCrashExitCode);

  Connection conn(db_dir);
  EXPECT_TRUE(conn.recovery_report().clean());  // a torn tail is expected
  auto rs = conn.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);  // the unacknowledged txn vanished whole
}

// Group commit, directed: several threads commit concurrently under
// SyncMode::kAlways, so their WAL fsyncs coalesce behind one leader; the
// child dies at the leader's group-fsync point. Every commit a thread
// acknowledged (its COMMIT statement returned, i.e. wait_durable saw the
// record fsynced) must survive recovery in full, and commits caught
// mid-group may land either way — but never torn.
TEST_F(CrashRecovery, CrashMidGroupFsyncRecoversEveryAcknowledgedCommit) {
#ifdef PERFDMF_TSAN
  GTEST_SKIP() << "fork() is unreliable under TSan";
#endif
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    DurabilityOptions opts;
    opts.sync = SyncMode::kAlways;
    Connection conn(db_dir, opts);
    conn.execute_update(
        "CREATE TABLE log (id INTEGER PRIMARY KEY, txn INTEGER, v INTEGER)");
    conn.checkpoint();
  }
  const auto report_path = dir.path() / "acked.txt";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    u::set_log_level(u::LogLevel::kOff);
    // A real accumulation window, so leader rounds genuinely cover
    // several followers' commits when the crash hits.
    ::setenv("PERFDMF_GROUP_COMMIT_MAX_WAIT_US", "200", 1);
    // The third leader round dies between lock release and fsync.
    fp::enable("wal.group_sync", perfdmf::util::FailAction::kAbort, 3, 0);

    const int report_fd =
        ::open(report_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (report_fd < 0) ::_exit(70);
    try {
      DurabilityOptions opts;
      opts.sync = SyncMode::kAlways;
      Connection root(db_dir, opts);
      const auto database = root.database_ptr();
      constexpr int kThreads = 4;
      constexpr int kTxnsPerThread = 12;
      constexpr int kRowsPerTxn = 3;
      std::vector<std::thread> committers;
      for (int t = 0; t < kThreads; ++t) {
        committers.emplace_back([&database, report_fd, t] {
          try {
            Connection conn(database);
            auto stmt = conn.prepare("INSERT INTO log (txn, v) VALUES (?, ?)");
            for (int i = 0; i < kTxnsPerThread; ++i) {
              const std::int64_t tag = t * 100 + i;
              conn.execute("BEGIN");
              for (int v = 0; v < kRowsPerTxn; ++v) {
                stmt.set_int(1, tag);
                stmt.set_int(2, v);
                stmt.execute_update();
              }
              conn.execute("COMMIT");  // returns only once durable
              char line[64];
              const int len =
                  std::snprintf(line, sizeof line, "%lld %d\n",
                                static_cast<long long>(tag), kRowsPerTxn);
              if (::write(report_fd, line, static_cast<std::size_t>(len)) !=
                  len) {
                ::_exit(70);
              }
            }
          } catch (const std::exception&) {
            ::_exit(9);  // a commit failed for a non-crash reason
          }
        });
      }
      for (auto& c : committers) c.join();
    } catch (const std::exception&) {
      ::_exit(8);
    }
    ::_exit(0);  // countdown 3 should have killed us long before this
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), fp::kCrashExitCode)
      << "child did not die at the group-fsync kill point";

  std::map<std::int64_t, int> acked;
  {
    std::ifstream in(report_path);
    std::int64_t tag = 0;
    int rows = 0;
    while (in >> tag >> rows) acked[tag] = rows;
  }

  for (int reopen = 0; reopen < 2; ++reopen) {  // recovery is idempotent
    Connection conn(db_dir);
    const auto actual = dump_rows(conn);
    for (const auto& [tag, rows] : acked) {
      const auto it = actual.find(tag);
      ASSERT_NE(it, actual.end())
          << "acknowledged commit " << tag << " lost (reopen " << reopen << ")";
      EXPECT_EQ(it->second.size(), static_cast<std::size_t>(rows))
          << "acknowledged commit " << tag << " incomplete";
    }
    // Unacknowledged commits: the crash decides, but atomically.
    for (const auto& [tag, values] : actual) {
      EXPECT_TRUE(values.size() == 3u)
          << "txn " << tag << " is torn: " << values.size() << "/3 rows";
    }
  }
}

// Degraded-mode kill point, directed: the child's disk fills for good,
// it degrades to read-only (still serving reads), then dies uncleanly.
// Recovery must hold exactly the writes acknowledged before the fault.
TEST_F(CrashRecovery, ChildDyingInDegradedModeKeepsCommittedData) {
#ifdef PERFDMF_TSAN
  GTEST_SKIP() << "fork() is unreliable under TSan";
#endif
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.checkpoint();
  }
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    u::set_log_level(u::LogLevel::kOff);
    try {
      Connection conn(db_dir);
      conn.execute_update("INSERT INTO t (x) VALUES (2)");  // acked pre-fault
      fp::enable_every("wal.append", perfdmf::util::FailAction::kError, 1,
                       28 /* ENOSPC */);
      try {
        conn.execute_update("INSERT INTO t (x) VALUES (3)");
        ::_exit(3);  // a write went through on a full disk
      } catch (const perfdmf::DbError& e) {
        if (e.kind() != perfdmf::DbError::Kind::kReadOnly) ::_exit(4);
      }
      if (!conn.database().read_only()) ::_exit(5);
      // Degraded means readable: the store still answers, without the
      // rolled-back row.
      auto rs = conn.execute("SELECT COUNT(*) FROM t");
      if (!rs.next() || rs.get_int(1) != 2) ::_exit(6);
    } catch (const std::exception&) {
      ::_exit(7);
    }
    ::_exit(fp::kCrashExitCode);  // die degraded, no clean close
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), fp::kCrashExitCode)
      << "child failed a degraded-mode invariant (see exit code)";

  for (int reopen = 0; reopen < 2; ++reopen) {  // and recovery is idempotent
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT x FROM t ORDER BY x");
    ASSERT_EQ(rs.row_count(), 2u) << "reopen " << reopen;
    rs.next();
    EXPECT_EQ(rs.get_int(1), 1);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
  }
}
