#include "analysis/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace perfdmf::analysis {

void jacobi_eigen(std::vector<double> matrix, std::size_t n,
                  std::vector<double>& eigenvalues,
                  std::vector<std::vector<double>>& eigenvectors) {
  if (matrix.size() != n * n) throw InvalidArgument("jacobi: bad matrix size");
  auto at = [&](std::size_t r, std::size_t c) -> double& { return matrix[r * n + c]; };

  // V starts as identity; accumulates rotations.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const std::size_t max_sweeps = 64;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off_diagonal += at(p, q) * at(p, q);
      }
    }
    if (off_diagonal < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (at(q, q) - at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = at(i, p);
          const double aiq = at(i, q);
          at(i, p) = c * aip - s * aiq;
          at(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = at(p, i);
          const double aqi = at(q, i);
          at(p, i) = c * api - s * aqi;
          at(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v[i * n + p];
          const double viq = v[i * n + q];
          v[i * n + p] = c * vip - s * viq;
          v[i * n + q] = s * vip + c * viq;
        }
      }
    }
  }

  // Extract and sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return at(a, a) > at(b, b); });

  eigenvalues.resize(n);
  eigenvectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t index = order[rank];
    eigenvalues[rank] = at(index, index);
    for (std::size_t i = 0; i < n; ++i) {
      eigenvectors[rank][i] = v[i * n + index];  // columns of V are vectors
    }
  }
}

PcaResult pca(const std::vector<double>& data, std::size_t rows, std::size_t dims,
              std::size_t keep) {
  if (rows == 0 || dims == 0 || data.size() != rows * dims) {
    throw InvalidArgument("pca: bad matrix shape");
  }
  // Mean-center a working copy.
  std::vector<double> centered = data;
  for (std::size_t c = 0; c < dims; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < rows; ++r) mean += centered[r * dims + c];
    mean /= static_cast<double>(rows);
    for (std::size_t r = 0; r < rows; ++r) centered[r * dims + c] -= mean;
  }

  // Covariance matrix (dims x dims).
  std::vector<double> covariance(dims * dims, 0.0);
  const double denom = rows > 1 ? static_cast<double>(rows - 1) : 1.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < dims; ++i) {
      const double xi = centered[r * dims + i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < dims; ++j) {
        covariance[i * dims + j] += xi * centered[r * dims + j];
      }
    }
  }
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i; j < dims; ++j) {
      covariance[i * dims + j] /= denom;
      covariance[j * dims + i] = covariance[i * dims + j];
    }
  }

  PcaResult out;
  jacobi_eigen(std::move(covariance), dims, out.eigenvalues, out.components);

  double total = 0.0;
  for (double lambda : out.eigenvalues) total += std::max(0.0, lambda);
  for (double lambda : out.eigenvalues) {
    out.explained_variance_ratio.push_back(
        total > 0.0 ? std::max(0.0, lambda) / total : 0.0);
  }

  out.projected_dims = keep == 0 ? dims : std::min(keep, dims);
  out.projected.assign(rows * out.projected_dims, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < out.projected_dims; ++k) {
      double dot = 0.0;
      for (std::size_t d = 0; d < dims; ++d) {
        dot += centered[r * dims + d] * out.components[k][d];
      }
      out.projected[r * out.projected_dims + k] = dot;
    }
  }
  return out;
}

}  // namespace perfdmf::analysis
