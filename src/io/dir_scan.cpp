#include "io/dir_scan.h"

#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::io {

std::vector<std::filesystem::path> scan_directory(const std::filesystem::path& dir,
                                                  const ScanFilter& filter) {
  std::vector<std::filesystem::path> out;
  for (const auto& path : util::list_files(dir)) {
    const std::string name = path.filename().string();
    if (!filter.prefix.empty() && !util::starts_with(name, filter.prefix)) continue;
    if (!filter.suffix.empty() && !util::ends_with(name, filter.suffix)) continue;
    out.push_back(path);
  }
  return out;
}

}  // namespace perfdmf::io
