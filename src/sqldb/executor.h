// Statement execution against a Database catalog.
//
// SELECT pipeline: FROM/JOIN (nested-loop with index acceleration on
// equality join keys) -> WHERE (index-accelerated candidate selection on
// the base table) -> GROUP BY / aggregates -> HAVING -> projection ->
// DISTINCT -> ORDER BY -> LIMIT/OFFSET. Results are materialized; the
// profile workloads PerfDMF runs are read-mostly and bounded by row
// construction, not pipelining.
#pragma once

#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/expr_eval.h"
#include "sqldb/table.h"

namespace perfdmf::sqldb {

class Database;

struct ResultSetData {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
};

/// Execute a SELECT. `params` supplies '?' bindings. The statement is
/// mutated in place (column binding, temporary aggregate rewriting) but
/// is restored to a reusable state, so prepared statements can re-execute
/// it with different parameters.
ResultSetData execute_select(Database& db, SelectStatement& stmt,
                             const Params& params);

/// Candidate RowIds for a WHERE clause over a single table, using an
/// index when the (already bound) predicate pins an indexed column with
/// '=', '<', '<=', '>', '>=' or BETWEEN against a literal/placeholder.
/// The caller must still evaluate the full predicate per candidate.
std::vector<RowId> collect_candidates(const Table& table, const Expr* bound_where,
                                      const Params& params);

}  // namespace perfdmf::sqldb
