// TAU callpath profile support.
//
// TAU's callpath profiling mode names events by their call chain,
// "main => solve => MPI_Allreduce()", grouped under TAU_CALLPATH, while
// keeping the flat events too. PerfDMF stores callpath events like any
// interval event; these helpers let analysis code split paths, find
// parents, and aggregate a callpath profile down to its flat (leaf)
// equivalent.
#pragma once

#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::profile {

/// True when the event name encodes a call chain ("a => b => c").
bool is_callpath(const std::string& event_name);

/// Split "a => b => c" into {"a", "b", "c"}; a non-callpath name yields
/// a single-element vector. Components are trimmed.
std::vector<std::string> split_callpath(const std::string& event_name);

/// Leaf component ("c" for "a => b => c").
std::string callpath_leaf(const std::string& event_name);

/// Parent chain ("a => b" for "a => b => c"); empty for non-callpaths.
std::string callpath_parent(const std::string& event_name);

/// Depth of the chain (1 for flat events).
std::size_t callpath_depth(const std::string& event_name);

/// Aggregate a callpath profile into a flat profile: for every leaf,
/// exclusive time and call counts are summed over all chains ending in
/// that leaf; inclusive time is taken from the depth-1 event when present
/// (TAU emits it) or the max over chains otherwise. Flat (non-callpath)
/// events pass through. Derived fields are recomputed.
TrialData flatten_callpaths(const TrialData& trial);

}  // namespace perfdmf::profile
