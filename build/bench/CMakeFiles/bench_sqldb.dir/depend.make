# Empty dependencies file for bench_sqldb.
# This may be replaced when dependencies are built.
