file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_io.dir/io/csv_export.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/csv_export.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/detect.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/detect.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/dir_scan.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/dir_scan.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/dynaprof_format.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/dynaprof_format.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/gprof_format.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/gprof_format.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/hpm_format.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/hpm_format.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/mpip_format.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/mpip_format.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/psrun_format.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/psrun_format.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/synth.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/synth.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/tau_format.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/tau_format.cpp.o.d"
  "CMakeFiles/perfdmf_io.dir/io/xml_io.cpp.o"
  "CMakeFiles/perfdmf_io.dir/io/xml_io.cpp.o.d"
  "libperfdmf_io.a"
  "libperfdmf_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
