# Empty dependencies file for perfdmf_xml.
# This may be replaced when dependencies are built.
