file(REMOVE_RECURSE
  "libperfdmf_analysis.a"
)
