#include "profile/derived.h"

#include "util/error.h"

namespace perfdmf::profile {

std::size_t derive_metric(TrialData& trial, const std::string& name,
                          const std::string& metric_a, const std::string& metric_b,
                          const PointCombiner& combine) {
  if (trial.find_metric(name)) {
    throw InvalidArgument("metric '" + name + "' already exists in trial");
  }
  auto index_a = trial.find_metric(metric_a);
  auto index_b = trial.find_metric(metric_b);
  if (!index_a) throw InvalidArgument("no metric '" + metric_a + "' in trial");
  if (!index_b) throw InvalidArgument("no metric '" + metric_b + "' in trial");

  const std::size_t new_index = trial.intern_metric(name);
  trial.metric(new_index).derived = true;

  // Collect matching (event, thread) pairs first: mutating while iterating
  // for_each_interval would observe the points we are adding.
  struct Pending {
    std::size_t event;
    std::size_t thread;
    IntervalDataPoint point;
  };
  std::vector<Pending> pending;
  trial.for_each_interval([&](std::size_t event, std::size_t thread,
                              std::size_t metric, const IntervalDataPoint& pa) {
    if (metric != *index_a) return;
    const IntervalDataPoint* pb = trial.interval_data(event, thread, *index_b);
    if (pb == nullptr) return;
    pending.push_back({event, thread, combine(pa, *pb)});
  });
  for (const auto& p : pending) {
    trial.set_interval_data(p.event, p.thread, new_index, p.point);
  }
  return new_index;
}

std::size_t derive_ratio(TrialData& trial, const std::string& name,
                         const std::string& numerator,
                         const std::string& denominator) {
  return derive_metric(
      trial, name, numerator, denominator,
      [](const IntervalDataPoint& a, const IntervalDataPoint& b) {
        IntervalDataPoint out;
        out.inclusive = b.inclusive != 0.0 ? a.inclusive / b.inclusive : 0.0;
        out.exclusive = b.exclusive != 0.0 ? a.exclusive / b.exclusive : 0.0;
        out.num_calls = a.num_calls;
        out.num_subrs = a.num_subrs;
        out.inclusive_per_call =
            out.num_calls > 0.0 ? out.inclusive / out.num_calls : 0.0;
        return out;
      });
}

std::size_t derive_scaled(TrialData& trial, const std::string& name,
                          const std::string& metric, double factor) {
  return derive_metric(trial, name, metric, metric,
                       [factor](const IntervalDataPoint& a, const IntervalDataPoint&) {
                         IntervalDataPoint out = a;
                         out.inclusive *= factor;
                         out.exclusive *= factor;
                         out.inclusive_per_call *= factor;
                         return out;
                       });
}

}  // namespace perfdmf::profile
