# Empty dependencies file for bench_derived.
# This may be replaced when dependencies are built.
