#include "analysis/scalability.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace perfdmf::analysis {

double AmdahlFit::predict(std::int64_t p) const {
  if (p <= 0) throw InvalidArgument("predict: processors must be positive");
  return t1 * (serial_fraction + (1.0 - serial_fraction) / static_cast<double>(p));
}

double AmdahlFit::max_speedup() const {
  if (serial_fraction <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / serial_fraction;
}

AmdahlFit fit_amdahl(const std::vector<ScalingObservation>& observations) {
  if (observations.size() < 2) {
    throw InvalidArgument("fit_amdahl needs at least two observations");
  }
  // T(p) = T1*s + T1*(1-s)/p is linear in (a, b) with a = T1*s, b = T1*(1-s):
  // T(p) = a + b * (1/p). Ordinary least squares on x = 1/p.
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  const double n = static_cast<double>(observations.size());
  for (const auto& o : observations) {
    if (o.processors <= 0 || o.time < 0.0) {
      throw InvalidArgument("fit_amdahl: bad observation");
    }
    const double x = 1.0 / static_cast<double>(o.processors);
    sum_x += x;
    sum_y += o.time;
    sum_xx += x * x;
    sum_xy += x * o.time;
  }
  const double denominator = n * sum_xx - sum_x * sum_x;
  if (std::fabs(denominator) < 1e-30) {
    throw InvalidArgument("fit_amdahl: observations need distinct processor counts");
  }
  double b = (n * sum_xy - sum_x * sum_y) / denominator;  // T1*(1-s)
  double a = (sum_y - b * sum_x) / n;                      // T1*s
  // Clamp to the physical region.
  if (a < 0.0) a = 0.0;
  if (b < 0.0) b = 0.0;

  AmdahlFit fit;
  fit.t1 = a + b;
  fit.serial_fraction = fit.t1 > 0.0 ? a / fit.t1 : 0.0;

  // R^2 against the mean.
  const double mean_y = sum_y / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const auto& o : observations) {
    const double predicted = fit.predict(o.processors);
    ss_res += (o.time - predicted) * (o.time - predicted);
    ss_tot += (o.time - mean_y) * (o.time - mean_y);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double CommModelFit::predict(std::int64_t p) const {
  if (p <= 0) throw InvalidArgument("predict: processors must be positive");
  const double dp = static_cast<double>(p);
  return serial + work / dp + comm * std::log2(dp);
}

double CommModelFit::optimal_processors() const {
  // dT/dp = -work/p^2 + comm/(p ln 2) = 0  ->  p = work * ln2 / comm.
  if (comm <= 0.0 || work <= 0.0) return 0.0;
  return work * std::log(2.0) / comm;
}

CommModelFit fit_comm_model(const std::vector<ScalingObservation>& observations) {
  // Distinct processor counts.
  {
    std::vector<std::int64_t> counts;
    for (const auto& o : observations) {
      if (o.processors <= 0 || o.time < 0.0) {
        throw InvalidArgument("fit_comm_model: bad observation");
      }
      counts.push_back(o.processors);
    }
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    if (counts.size() < 3) {
      throw InvalidArgument(
          "fit_comm_model needs at least three distinct processor counts");
    }
  }
  // Linear least squares in (a, b, c) with basis {1, 1/p, log2 p}:
  // solve the 3x3 normal equations by Gaussian elimination.
  double ata[3][3] = {};
  double atb[3] = {};
  for (const auto& o : observations) {
    const double dp = static_cast<double>(o.processors);
    const double basis[3] = {1.0, 1.0 / dp, std::log2(dp)};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) ata[r][c] += basis[r] * basis[c];
      atb[r] += basis[r] * o.time;
    }
  }
  // Gaussian elimination with partial pivoting on the 3x3 system.
  double m[3][4];
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) m[r][c] = ata[r][c];
    m[r][3] = atb[r];
  }
  for (int pivot = 0; pivot < 3; ++pivot) {
    int best = pivot;
    for (int r = pivot + 1; r < 3; ++r) {
      if (std::fabs(m[r][pivot]) > std::fabs(m[best][pivot])) best = r;
    }
    std::swap(m[pivot], m[best]);
    if (std::fabs(m[pivot][pivot]) < 1e-30) {
      throw InvalidArgument("fit_comm_model: singular normal equations");
    }
    for (int r = 0; r < 3; ++r) {
      if (r == pivot) continue;
      const double factor = m[r][pivot] / m[pivot][pivot];
      for (int c = pivot; c < 4; ++c) m[r][c] -= factor * m[pivot][c];
    }
  }
  CommModelFit fit;
  fit.serial = std::max(0.0, m[0][3] / m[0][0]);
  fit.work = std::max(0.0, m[1][3] / m[1][1]);
  fit.comm = std::max(0.0, m[2][3] / m[2][2]);
  // Snap numerically-zero communication to zero so downstream questions
  // ("does adding processors ever hurt?") don't see fp residue.
  if (fit.comm < 1e-9 * (fit.serial + fit.work + 1.0)) fit.comm = 0.0;

  double ss_res = 0.0;
  double ss_tot = 0.0;
  double mean = 0.0;
  for (const auto& o : observations) mean += o.time;
  mean /= static_cast<double>(observations.size());
  for (const auto& o : observations) {
    const double predicted = fit.predict(o.processors);
    ss_res += (o.time - predicted) * (o.time - predicted);
    ss_tot += (o.time - mean) * (o.time - mean);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::string classify_scaling(const std::vector<ScalingObservation>& observations) {
  if (observations.size() < 2) return "unknown";
  auto sorted = observations;
  std::sort(sorted.begin(), sorted.end(),
            [](const ScalingObservation& a, const ScalingObservation& b) {
              return a.processors < b.processors;
            });
  const ScalingObservation& base = sorted.front();
  const ScalingObservation& last = sorted.back();
  if (base.time <= 0.0 || last.time <= 0.0) return "unknown";
  const double ratio = static_cast<double>(last.processors) /
                       static_cast<double>(base.processors);
  const double speedup = base.time / last.time;

  // Degrading: more processors made it slower somewhere along the series.
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].time > sorted[i - 1].time * 1.05) return "degrading";
  }
  if (speedup >= 0.9 * ratio) return "linear";
  if (speedup >= 0.5 * ratio) return "sublinear";
  return "saturating";
}

}  // namespace perfdmf::analysis
