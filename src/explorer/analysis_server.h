// PerfExplorer analysis server (paper §5.3, Fig. 3).
//
// "PerfExplorer is designed as a client-server system. The client makes
// requests to an analysis server back end, which is integrated with a
// performance database, using PerfDMF. … the analysis server selects the
// data of interest, gets the relevant profile data and hands it off to an
// analysis application, R. When R is done with the analysis, the results
// are saved to the database, using the PerfDMF API. … The browse requests
// are also processed by the PerfExplorer server."
//
// This module is that server: clients submit AnalysisRequests (by trial
// id), the server pulls the profile through DatabaseAPI, runs the native
// statistics engine (replacing the R process boundary), stores the result
// in the ANALYSIS_RESULT extension table, and serves browse requests.
// submit_async() runs requests on a worker pool, mirroring the detached
// back-end of the paper.
//
// Each worker owns a lightweight Connection over the server's shared
// Database, so requests on different workers — and concurrent browse
// calls from client threads — overlap: the profile loads are read-only
// and execute in parallel under the database's shared-read lock, with
// only the final result insert serializing. Completion is published
// under a mutex and signalled on a condition variable, giving clients a
// happens-before edge between a request finishing and wait_idle() (or a
// counter read) observing it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/database_api.h"
#include "util/thread_pool.h"

namespace perfdmf::explorer {

enum class AnalysisKind {
  kKMeans,        // cluster threads; params: k
  kHierarchical,  // dendrogram + cut; params: k
  kCorrelation,   // metric correlation matrix
  kPca,           // dimension reduction summary
  kDescriptive,   // per-event descriptive statistics for one metric
  kImbalance,     // per-event load imbalance + outlier threads
};

const char* analysis_kind_name(AnalysisKind kind);

struct AnalysisRequest {
  std::int64_t trial_id = -1;
  AnalysisKind kind = AnalysisKind::kDescriptive;
  std::size_t k = 3;          // clusters, for the clustering kinds
  std::string metric_name;    // kDescriptive: which metric (default: first)
  std::uint64_t seed = 99;    // determinism for k-means
};

struct AnalysisResponse {
  std::int64_t result_id = -1;  // row in ANALYSIS_RESULT
  std::string kind;
  std::string summary;   // one-line human synopsis
  std::string content;   // full rendered result (also stored in the DB)
};

class AnalysisServer {
 public:
  /// `workers` sizes the async pool (0 = synchronous submits only).
  explicit AnalysisServer(std::shared_ptr<sqldb::Connection> connection,
                          std::size_t workers = 2);
  ~AnalysisServer();
  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Run the request now on the calling thread. Throws on bad requests.
  AnalysisResponse submit(const AnalysisRequest& request);

  /// Queue the request on the worker pool. When a pending bound is set
  /// (set_max_pending / PERFDMF_ANALYSIS_MAX_PENDING) and that many
  /// requests are already in flight, throws DbError{kOverloaded}
  /// immediately instead of queueing without bound — clients back off
  /// and retry rather than wedging the pool.
  std::future<AnalysisResponse> submit_async(const AnalysisRequest& request);

  /// Bound on in-flight (submitted, not yet completed) requests;
  /// 0 = unbounded. Initial value comes from PERFDMF_ANALYSIS_MAX_PENDING.
  void set_max_pending(std::size_t n);
  std::size_t max_pending() const;

  /// Browse stored results for a trial (the client's result view).
  std::vector<api::DatabaseAPI::AnalysisResult> browse(std::int64_t trial_id);

  /// Block until every request submitted (sync or async) so far has
  /// completed; safe to call from any client thread.
  void wait_idle();
  std::size_t submitted_count() const;
  std::size_t completed_count() const;

  api::DatabaseAPI& api() { return api_; }

 private:
  AnalysisResponse run(api::DatabaseAPI& api, const AnalysisRequest& request);
  AnalysisResponse run_counted(api::DatabaseAPI& api,
                               const AnalysisRequest& request);

  api::DatabaseAPI* acquire_worker_api();
  void release_worker_api(api::DatabaseAPI* api);

  api::DatabaseAPI api_;  // serves submit() and browse() on caller threads
  std::unique_ptr<util::ThreadPool> pool_;

  // One DatabaseAPI (with its own Connection over the shared Database)
  // per worker; handed out to tasks so requests never share a handle.
  std::vector<std::unique_ptr<api::DatabaseAPI>> worker_apis_;
  std::vector<api::DatabaseAPI*> idle_apis_;  // guarded by state_mutex_

  mutable std::mutex state_mutex_;
  std::condition_variable idle_cv_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t max_pending_ = 0;  // 0 = unbounded
};

}  // namespace perfdmf::explorer
