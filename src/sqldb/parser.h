// Recursive-descent parser for the SQL subset (see ast.h).
#pragma once

#include <string_view>

#include "sqldb/ast.h"

namespace perfdmf::sqldb {

/// Parse exactly one statement (a trailing ';' is allowed). Throws
/// ParseError on malformed input or trailing tokens.
Statement parse_statement(std::string_view sql);

}  // namespace perfdmf::sqldb
