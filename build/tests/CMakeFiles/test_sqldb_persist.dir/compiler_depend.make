# Empty compiler generated dependencies file for test_sqldb_persist.
# This may be replaced when dependencies are built.
