#include "io/psrun_format.h"

#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace perfdmf::io {

namespace {
constexpr double kSecondsToMicros = 1e6;
constexpr const char* kWholeProgramEvent = "Entire application";
}

void PsrunDataSource::parse_into(const std::string& content,
                                 profile::TrialData& trial) {
  xml::XmlParser parser(content);
  xml::XmlEvent root = parser.expect_start("hwpcreport");

  std::int32_t rank = 0;
  double wallclock_seconds = -1.0;
  std::vector<std::pair<std::string, double>> counters;

  // Walk the subtree; only the elements we model are interpreted.
  int depth = 1;
  while (depth > 0) {
    xml::XmlEvent event = parser.next();
    switch (event.type) {
      case xml::XmlEventType::kStartElement:
        if (event.name == "rank") {
          rank = static_cast<std::int32_t>(util::parse_int_or_throw(
              util::trim(parser.read_text_until_end("rank")), "psrun rank"));
        } else if (event.name == "wallclock") {
          wallclock_seconds = util::parse_double_or_throw(
              util::trim(parser.read_text_until_end("wallclock")),
              "psrun wallclock");
        } else if (event.name == "hwpcevent") {
          auto name_it = event.attrs.find("name");
          if (name_it == event.attrs.end()) {
            throw perfdmf::ParseError("psrun: hwpcevent without name attribute");
          }
          const double value = util::parse_double_or_throw(
              util::trim(parser.read_text_until_end("hwpcevent")),
              "psrun hwpcevent value");
          counters.emplace_back(name_it->second, value);
        } else {
          ++depth;
        }
        break;
      case xml::XmlEventType::kEndElement:
        --depth;
        break;
      case xml::XmlEventType::kText:
        break;
      case xml::XmlEventType::kEndDocument:
        throw perfdmf::ParseError("psrun: document ended inside <hwpcreport>");
    }
  }

  const std::size_t event = trial.intern_event(kWholeProgramEvent);
  const std::size_t thread = trial.intern_thread({rank, 0, 0});
  if (wallclock_seconds >= 0.0) {
    const std::size_t metric = trial.intern_metric("TIME");
    profile::IntervalDataPoint point;
    point.inclusive = wallclock_seconds * kSecondsToMicros;
    point.exclusive = point.inclusive;
    point.num_calls = 1.0;
    trial.set_interval_data(event, thread, metric, point);
  }
  for (const auto& [name, value] : counters) {
    const std::size_t metric = trial.intern_metric(name);
    profile::IntervalDataPoint point;
    point.inclusive = value;
    point.exclusive = value;
    point.num_calls = 1.0;
    trial.set_interval_data(event, thread, metric, point);
  }
}

profile::TrialData PsrunDataSource::parse(const std::string& content) {
  profile::TrialData trial;
  parse_into(content, trial);
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData PsrunDataSource::load() {
  profile::TrialData trial = parse(util::read_file(file_));
  trial.trial().name = file_.filename().string();
  return trial;
}

std::string render_psrun_report(const profile::TrialData& trial,
                                std::size_t thread_index) {
  if (thread_index >= trial.threads().size()) {
    throw perfdmf::InvalidArgument("psrun writer: bad thread index");
  }
  auto event = trial.find_event(kWholeProgramEvent);
  if (!event) {
    throw perfdmf::InvalidArgument(
        "psrun writer: trial has no 'Entire application' event");
  }
  xml::XmlWriter writer;
  writer.declaration();
  writer.start_element("hwpcreport");
  writer.attribute("class", "PAPI");
  writer.attribute("mode", "count");
  writer.start_element("executableinfo");
  writer.element_with_text("name", trial.trial().name.empty()
                                       ? "synthetic"
                                       : trial.trial().name);
  writer.end_element();
  writer.start_element("machineinfo");
  writer.element_with_text("processes",
                           std::to_string(trial.threads().size()));
  writer.end_element();
  writer.start_element("processinfo");
  writer.element_with_text("rank",
                           std::to_string(trial.threads()[thread_index].node));
  writer.end_element();

  auto time_metric = trial.find_metric("TIME");
  if (time_metric) {
    if (const profile::IntervalDataPoint* p =
            trial.interval_data(*event, thread_index, *time_metric)) {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.9g", p->inclusive / kSecondsToMicros);
      writer.start_element("wallclock");
      writer.attribute("units", "seconds");
      writer.text(buffer);
      writer.end_element();
    }
  }
  writer.start_element("hwpceventlist");
  for (std::size_t m = 0; m < trial.metrics().size(); ++m) {
    if (time_metric && m == *time_metric) continue;
    const profile::IntervalDataPoint* p =
        trial.interval_data(*event, thread_index, m);
    if (p == nullptr) continue;
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", p->inclusive);
    writer.start_element("hwpcevent");
    writer.attribute("name", trial.metrics()[m].name);
    writer.attribute("derived", "no");
    writer.text(buffer);
    writer.end_element();
  }
  writer.end_element();  // hwpceventlist
  writer.end_element();  // hwpcreport
  return writer.str();
}

}  // namespace perfdmf::io
