// E5 — abstract API vs direct SQL (paper §4): the data-management API
// "abstracts query and analysis operation into a more programmatic,
// non-SQL, form ... intended to complement the SQL interface, which is
// directly accessible by analysis tools".
//
// Shape to reproduce: both interfaces return identical results over the
// same archive; the abstraction costs little relative to raw SQL; and
// selective (filtered) queries beat loading whole trials, which is the
// rationale for the database-only access method.
#include <cstdio>

#include "api/database_session.h"
#include "io/synth.h"
#include "util/timer.h"

using namespace perfdmf;

int main() {
  io::synth::TrialSpec spec;
  spec.nodes = 512;
  spec.event_count = 64;
  auto data = io::synth::generate_trial(spec);

  api::DatabaseSession session;
  const std::int64_t trial_id = session.save_trial(data, "app", "runs");
  auto& connection = session.api().connection();
  const std::size_t total_rows = 512u * 64u;

  std::printf("E5: API vs direct SQL over one %zu-row trial\n\n", total_rows);
  std::printf("%-44s %10s %10s\n", "operation", "rows", "time(ms)");

  util::WallTimer timer;

  // --- full trial through the API ---------------------------------------
  timer.reset();
  auto api_rows = session.get_interval_data();
  const double api_full_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "API: get_interval_data (full trial)",
              api_rows.size(), api_full_ms);

  // --- full trial through raw SQL ----------------------------------------
  timer.reset();
  auto rs = connection.execute(
      "SELECT e.name, p.node, p.inclusive, p.exclusive"
      " FROM interval_event e JOIN interval_location_profile p"
      " ON p.interval_event = e.id WHERE e.trial = ?",
      {sqldb::Value(trial_id)});
  const double sql_full_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "SQL: equivalent join", rs.row_count(),
              sql_full_ms);

  // --- selective query: one node ----------------------------------------
  session.set_node(17);
  timer.reset();
  auto node_rows = session.get_interval_data();
  const double api_node_ms = timer.millis();
  session.clear_node();
  std::printf("%-44s %10zu %10.2f\n", "API: node 17 only (selective access)",
              node_rows.size(), api_node_ms);

  // --- selective query: one event, SQL aggregate -------------------------
  auto events = session.get_interval_events();
  timer.reset();
  auto aggregate = session.api().aggregate_interval_column(
      trial_id, events[0].id, "exclusive");
  const double aggregate_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "API: min/mean/max/stddev of one event",
              aggregate.count, aggregate_ms);

  timer.reset();
  auto rs2 = connection.execute(
      "SELECT MIN(exclusive), AVG(exclusive), MAX(exclusive),"
      " STDDEV(exclusive) FROM interval_location_profile WHERE"
      " interval_event = ?",
      {sqldb::Value(events[0].id)});
  const double sql_aggregate_ms = timer.millis();
  std::printf("%-44s %10zu %10.2f\n", "SQL: equivalent aggregate",
              rs2.row_count(), sql_aggregate_ms);

  // --- equivalence check --------------------------------------------------
  rs2 = connection.execute(
      "SELECT MIN(exclusive), AVG(exclusive), MAX(exclusive)"
      " FROM interval_location_profile WHERE interval_event = ?",
      {sqldb::Value(events[0].id)});
  rs2.next();
  const bool equivalent =
      api_rows.size() == rs.row_count() &&
      std::abs(rs2.get_double(1) - aggregate.minimum) < 1e-9 &&
      std::abs(rs2.get_double(2) - aggregate.mean) < 1e-9 &&
      std::abs(rs2.get_double(3) - aggregate.maximum) < 1e-9;
  std::printf("\nAPI and SQL results identical: %s\n",
              equivalent ? "yes" : "NO (bug!)");
  std::printf("selective node query touched %.1f%% of the rows\n",
              100.0 * node_rows.size() / total_rows);
  return equivalent ? 0 : 1;
}
