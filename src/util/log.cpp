#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace perfdmf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::string line = "[perfdmf ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  // One fwrite call keeps concurrent lines from interleaving mid-line.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace perfdmf::util
