# Empty dependencies file for perfdmf_profile.
# This may be replaced when dependencies are built.
