#include "sqldb/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "sqldb/database.h"
#include "sqldb/statement_context.h"
#include "sqldb/system_tables.h"
#include "telemetry/span.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

namespace {

// Flat per-entry estimates for memory-budget accounting. Exact sizes
// don't matter: the budget exists to bound the growth of operator state,
// so a conservative flat cost per retained entry/value is enough.
constexpr std::uint64_t kHashEntryBytes = 64;  // bucket + key + index slot
constexpr std::uint64_t kValueBytes = 48;      // one stored Value, amortized

/// Collects per-operator runtime stats (EXPLAIN ANALYZE) and emits
/// operator events onto the trace timeline. Inactive — zero clock reads —
/// unless the statement runs under EXPLAIN ANALYZE or its span is traced.
/// Timing uses the steady clock directly so EXPLAIN ANALYZE stays exact
/// in telemetry-off builds.
struct OpRecorder {
  ExplainInfo* explain = nullptr;  // non-null only when collecting op stats
  bool traced = false;             // current statement span is on the timeline

  static OpRecorder make(ExplainInfo* explain) {
    OpRecorder rec;
    rec.explain = explain != nullptr && explain->analyze ? explain : nullptr;
    const telemetry::Span* span = telemetry::Span::current();
    rec.traced = span != nullptr && span->trace_armed();
    return rec;
  }

  bool active() const { return explain != nullptr || traced; }

  std::chrono::steady_clock::time_point begin() const {
    return active() ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point{};
  }

  void record(std::string label, std::chrono::steady_clock::time_point start,
              std::uint64_t rows_in, std::uint64_t rows_out,
              std::uint64_t entries = 0, std::uint64_t mem_bytes = 0,
              bool degraded = false) {
    if (!active()) return;
    const auto end = std::chrono::steady_clock::now();
    if (traced) telemetry::trace_emit(label, "operator", start, end);
    if (explain == nullptr) return;
    OperatorStats op;
    op.label = std::move(label);
    op.rows_in = rows_in;
    op.rows_out = rows_out;
    op.micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count());
    op.entries = entries;
    op.mem_bytes = mem_bytes;
    op.degraded = degraded;
    explain->ops.push_back(std::move(op));
  }
};

// ------------------------------------------------------------ planning

/// A simple index-usable predicate: column (by resolved index) op constant.
struct IndexPredicate {
  std::size_t column = 0;
  std::string op;  // "=", "<", "<=", ">", ">="
  Value value;
};

bool is_constant_expr(const Expr& e) {
  return e.kind == ExprKind::kLiteral || e.kind == ExprKind::kPlaceholder;
}

Value const_value(const Expr& e, const Params& params) {
  if (e.kind == ExprKind::kLiteral) return e.literal;
  if (e.placeholder_index >= params.size()) {
    throw DbError("missing bind parameter " + std::to_string(e.placeholder_index + 1));
  }
  return params[e.placeholder_index];
}

/// Walk the AND-conjunction tree of a bound WHERE clause collecting
/// predicates an index can serve. `max_column` restricts to base-table
/// columns (resolved indexes below it).
void collect_index_predicates(const Expr& e, const Params& params,
                              std::size_t max_column,
                              std::vector<IndexPredicate>& out) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    collect_index_predicates(*e.children[0], params, max_column, out);
    collect_index_predicates(*e.children[1], params, max_column, out);
    return;
  }
  if (e.kind == ExprKind::kBetween && !e.negated &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[0]->resolved_index < max_column &&
      is_constant_expr(*e.children[1]) && is_constant_expr(*e.children[2])) {
    out.push_back({e.children[0]->resolved_index, ">=",
                   const_value(*e.children[1], params)});
    out.push_back({e.children[0]->resolved_index, "<=",
                   const_value(*e.children[2], params)});
    return;
  }
  if (e.kind != ExprKind::kBinary) return;
  static const char* kOps[] = {"=", "<", "<=", ">", ">="};
  bool usable = false;
  for (const char* op : kOps) {
    if (e.op == op) usable = true;
  }
  if (!usable) return;
  const Expr* lhs = e.children[0].get();
  const Expr* rhs = e.children[1].get();
  std::string op = e.op;
  if (lhs->kind != ExprKind::kColumnRef && rhs->kind == ExprKind::kColumnRef) {
    std::swap(lhs, rhs);  // constant op column -> column (flipped op) constant
    if (op == "<") op = ">";
    else if (op == "<=") op = ">=";
    else if (op == ">") op = "<";
    else if (op == ">=") op = "<=";
  }
  if (lhs->kind == ExprKind::kColumnRef && lhs->resolved_index < max_column &&
      is_constant_expr(*rhs)) {
    out.push_back({lhs->resolved_index, op, const_value(*rhs, params)});
  }
}

/// Split an AND-conjunction tree into its conjuncts (pointers into the
/// tree). A non-AND expression is a single conjunct.
void split_conjuncts(Expr& e, std::vector<Expr*>& out) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    split_conjuncts(*e.children[0], out);
    split_conjuncts(*e.children[1], out);
    return;
  }
  out.push_back(&e);
}

/// The access path chosen for one table: how candidate rows are fetched.
/// Candidates are a superset of the qualifying rows except for
/// kUniqueIndexEq/kIndexEq/kIndexRange over the selecting predicate, and
/// every caller re-evaluates its predicate(s) per candidate regardless.
struct AccessPath {
  enum class Kind { kScan, kIndexEq, kUniqueIndexEq, kIndexRange };
  Kind kind = Kind::kScan;
  std::size_t column = 0;
  Value eq_value;                 // kIndexEq / kUniqueIndexEq
  std::optional<Value> lo, hi;    // kIndexRange
  bool lo_inclusive = true;
  bool hi_inclusive = true;
};

/// Pick the best index-served predicate: unique-index equality (pins at
/// most one row) over non-unique equality over a range. Strict bounds
/// stay strict so the index fetches exactly the qualifying keys.
AccessPath choose_access_path(const Table& table,
                              const std::vector<IndexPredicate>& predicates) {
  AccessPath path;
  for (const auto& p : predicates) {
    if (p.op == "=" && table.has_unique_index(p.column)) {
      path.kind = AccessPath::Kind::kUniqueIndexEq;
      path.column = p.column;
      path.eq_value = p.value;
      return path;
    }
  }
  for (const auto& p : predicates) {
    if (p.op == "=" && table.has_index(p.column)) {
      path.kind = AccessPath::Kind::kIndexEq;
      path.column = p.column;
      path.eq_value = p.value;
      return path;
    }
  }
  for (const auto& p : predicates) {
    if (!table.has_index(p.column)) continue;
    std::optional<Value> lo, hi;
    bool lo_inclusive = true;
    bool hi_inclusive = true;
    for (const auto& q : predicates) {
      if (q.column != p.column) continue;
      if (q.op == ">" || q.op == ">=") {
        const bool inclusive = (q.op == ">=");
        const int c = lo ? q.value.compare(*lo) : 1;
        if (!lo || c > 0 || (c == 0 && lo_inclusive && !inclusive)) {
          lo = q.value;
          lo_inclusive = inclusive;
        }
      } else if (q.op == "<" || q.op == "<=") {
        const bool inclusive = (q.op == "<=");
        const int c = hi ? q.value.compare(*hi) : -1;
        if (!hi || c < 0 || (c == 0 && hi_inclusive && !inclusive)) {
          hi = q.value;
          hi_inclusive = inclusive;
        }
      }
    }
    if (lo || hi) {
      path.kind = AccessPath::Kind::kIndexRange;
      path.column = p.column;
      path.lo = std::move(lo);
      path.hi = std::move(hi);
      path.lo_inclusive = lo_inclusive;
      path.hi_inclusive = hi_inclusive;
      return path;
    }
  }
  return path;  // scan
}

std::vector<RowId> fetch_access_path(const Table& table, const AccessPath& path,
                                     const ReadView& view) {
  switch (path.kind) {
    case AccessPath::Kind::kUniqueIndexEq:
    case AccessPath::Kind::kIndexEq:
      if (auto hits = table.index_equal(path.column, path.eq_value)) return *hits;
      break;
    case AccessPath::Kind::kIndexRange:
      if (auto hits = table.index_range(path.column, path.lo, path.hi,
                                        path.lo_inclusive, path.hi_inclusive)) {
        return *hits;
      }
      break;
    case AccessPath::Kind::kScan:
      break;
  }
  std::vector<RowId> all;
  all.reserve(table.live_row_count());
  table.scan(view, [&](RowId id, const Row&) { all.push_back(id); });
  return all;
}

std::string describe_access_path(const Table& table, const AccessPath& path) {
  auto column_name = [&](std::size_t c) {
    return table.schema().columns()[c].name;
  };
  switch (path.kind) {
    case AccessPath::Kind::kUniqueIndexEq:
      return "unique-index-eq(" + column_name(path.column) + ")";
    case AccessPath::Kind::kIndexEq:
      return "index-eq(" + column_name(path.column) + ")";
    case AccessPath::Kind::kIndexRange:
      return "index-range(" + column_name(path.column) + ")";
    case AccessPath::Kind::kScan:
      break;
  }
  return "scan";
}

}  // namespace

std::vector<RowId> collect_candidates(const Table& table, const Expr* bound_where,
                                      const Params& params, const ReadView& view) {
  std::vector<IndexPredicate> predicates;
  if (bound_where != nullptr) {
    collect_index_predicates(*bound_where, params, table.schema().columns().size(),
                             predicates);
  }
  return fetch_access_path(table, choose_access_path(table, predicates), view);
}

namespace {

// ------------------------------------------------------- aggregation

struct Accumulator {
  const Expr* node = nullptr;  // the aggregate call in the tree
  std::int64_t count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;
  std::int64_t int_sum = 0;
  bool all_int = true;
  bool any = false;
  Value min;
  Value max;
  std::set<Value> distinct;  // for COUNT(DISTINCT x)

  void add(const Value& v) {
    if (v.is_null()) return;
    any = true;
    ++count;
    if (node->distinct) distinct.insert(v);
    if (v.type() == ValueType::kInt) {
      int_sum += v.as_int();
    } else {
      all_int = false;
    }
    if (v.type() == ValueType::kInt || v.type() == ValueType::kReal) {
      const double d = v.as_real();
      sum += d;
      sum_squares += d * d;
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
  }

  Value result() const {
    const std::string& name = node->function_name;
    if (name == "COUNT") {
      return Value(node->distinct ? static_cast<std::int64_t>(distinct.size())
                                  : count);
    }
    if (!any) return Value();  // SUM/AVG/MIN/MAX/STDDEV over no rows is NULL
    if (name == "SUM") return all_int ? Value(int_sum) : Value(sum);
    if (name == "AVG") return Value(sum / static_cast<double>(count));
    if (name == "MIN") return min;
    if (name == "MAX") return max;
    if (name == "STDDEV" || name == "VARIANCE") {
      if (count < 2) return Value();
      const double n = static_cast<double>(count);
      const double variance = (sum_squares - sum * sum / n) / (n - 1.0);
      const double clamped = variance < 0.0 ? 0.0 : variance;  // fp noise
      return Value(name == "VARIANCE" ? clamped : std::sqrt(clamped));
    }
    throw DbError("unknown aggregate " + name);
  }
};

/// RAII: rewrite aggregate nodes to literals for one evaluation, restore.
class AggregateRewrite {
 public:
  AggregateRewrite(const std::vector<Expr*>& nodes, const std::vector<Value>& values) {
    nodes_ = nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->kind = ExprKind::kLiteral;
      nodes[i]->literal = values[i];
    }
  }
  ~AggregateRewrite() {
    for (Expr* node : nodes_) node->kind = ExprKind::kFunction;
  }

 private:
  std::vector<Expr*> nodes_;
};

std::size_t row_hash(const Row& row) {
  std::size_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const Value& v : row) {
    h ^= v.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool rows_equal(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].compare(b[i]) != 0) return false;
  }
  return true;
}

struct RowHasher {
  std::size_t operator()(const Row& r) const { return row_hash(r); }
};
struct RowEqual {
  bool operator()(const Row& a, const Row& b) const { return rows_equal(a, b); }
};

/// Open-addressing hash of group keys. Entries (key + representative row
/// + inline accumulators) live in a vector in first-seen order, which is
/// also the output order; the slot array holds entry indexes (+1, 0 means
/// empty) probed linearly, so rehashing only moves 4-byte slots.
struct GroupEntry {
  Row key;
  std::size_t hash = 0;
  const Row* rep = nullptr;  // first member (bare column refs, HAVING)
  std::vector<Accumulator> accumulators;
};

class GroupHashTable {
 public:
  GroupHashTable() : slots_(64, 0), mask_(63) {}

  /// Find the entry for `key`, inserting a new one (with accumulators
  /// from `make_entry`) when absent.
  template <typename MakeEntry>
  GroupEntry& find_or_insert(Row&& key, MakeEntry&& make_entry) {
    if ((entries_.size() + 1) * 4 >= slots_.size() * 3) grow();  // ~0.75 load
    const std::size_t h = row_hash(key);
    std::size_t i = h & mask_;
    for (;;) {
      const std::uint32_t s = slots_[i];
      if (s == 0) {
        entries_.push_back(make_entry(std::move(key), h));
        slots_[i] = static_cast<std::uint32_t>(entries_.size());
        return entries_.back();
      }
      GroupEntry& e = entries_[s - 1];
      if (e.hash == h && rows_equal(e.key, key)) return e;
      i = (i + 1) & mask_;
    }
  }

  std::vector<GroupEntry>& entries() { return entries_; }

 private:
  void grow() {
    slots_.assign(slots_.size() * 2, 0);
    mask_ = slots_.size() - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = entries_[e].hash & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<std::uint32_t>(e + 1);
    }
  }

  std::vector<std::uint32_t> slots_;  // entry index + 1; 0 = empty
  std::size_t mask_;
  std::vector<GroupEntry> entries_;   // insertion (= output) order
};

struct WorkingSet {
  std::vector<BoundColumn> layout;
  std::vector<Row> rows;
  /// Tables materialized from views for the duration of this query.
  std::vector<std::unique_ptr<Table>> owned_tables;
};

/// Resolve a FROM/JOIN name: a system table snapshotted from the telemetry
/// registry, a real table directly, or a view materialized into a temporary
/// untyped table by executing its stored SELECT. A depth guard catches
/// self-referential view chains.
Table& resolve_table(Database& db, const std::string& name, WorkingSet& ws) {
  if (is_system_table_name(name)) {
    ws.owned_tables.push_back(materialize_system_table(name, &db));
    return *ws.owned_tables.back();
  }
  if (!db.has_view(name)) return db.table(name);

  thread_local int view_depth = 0;
  if (view_depth > 16) {
    throw DbError("view expansion too deep (cycle?) at " + name);
  }
  ++view_depth;
  ResultSetData data;
  try {
    // Views were validated placeholder-free at CREATE VIEW time.
    data = db.execute(db.view_sql(name), {});
  } catch (...) {
    --view_depth;
    throw;
  }
  --view_depth;

  TableSchema schema(name);
  for (const auto& column : data.column_names) {
    ColumnDef def;
    def.name = column;  // untyped: values stored as produced
    def.type = ValueType::kNull;
    schema.add_column(std::move(def));
  }
  auto materialized = std::make_unique<Table>(std::move(schema));
  for (auto& row : data.rows) materialized->insert(std::move(row));
  ws.owned_tables.push_back(std::move(materialized));
  return *ws.owned_tables.back();
}

/// FROM + JOIN + WHERE: produce the working rows and the column layout.
WorkingSet build_working_set(Database& db, SelectStatement& stmt,
                             const Params& params, ExplainInfo* explain,
                             OpRecorder& rec) {
  const ExecutorTuning tuning = db.executor_tuning();
  StatementContext* ctx = StatementContext::current();
  // The statement's MVCC snapshot: pinned once, used for every row
  // resolution below, so the whole SELECT sees one consistent state no
  // matter what commits concurrently.
  const ReadView view = db.read_view();
  WorkingSet ws;
  if (!stmt.from) {
    if (explain) explain->add("from: none");
    ws.rows.emplace_back();  // one empty row: SELECT 1+1
    if (stmt.where) {
      bind_expr(*stmt.where, ws.layout);
      std::vector<Row> kept;
      for (auto& row : ws.rows) {
        if (is_truthy(eval_expr(*stmt.where, row, params))) kept.push_back(row);
      }
      ws.rows = std::move(kept);
    }
    return ws;
  }

  Table& base = resolve_table(db, stmt.from->table, ws);
  const std::string base_alias = util::to_lower(stmt.from->alias);
  for (const auto& column : base.schema().columns()) {
    ws.layout.push_back({base_alias, column.name});
  }
  // Predicate push-down. Without joins the whole WHERE binds against the
  // base layout and drives index selection. With joins, each AND-conjunct
  // that references only base columns is bound, used for index selection,
  // and applied before the join (sound under three-valued logic: a row on
  // which any conjunct is not truthy cannot satisfy the full conjunction).
  const Expr* base_where = nullptr;
  std::vector<Expr*> pushed;
  AccessPath path;
  {
    telemetry::PhaseTimer plan_phase(telemetry::Phase::kPlan);
    if (stmt.where) {
      if (stmt.joins.empty()) {
        bind_expr(*stmt.where, ws.layout);
        base_where = stmt.where.get();
      } else {
        std::vector<Expr*> conjuncts;
        split_conjuncts(*stmt.where, conjuncts);
        for (Expr* conjunct : conjuncts) {
          try {
            bind_expr(*conjunct, ws.layout);
            pushed.push_back(conjunct);
          } catch (const DbError&) {
            // References a joined table's columns; evaluated post-join.
          }
        }
      }
    }

    // Index selection over everything known about the base table (the whole
    // WHERE, or the pushed conjuncts — all of them are ANDed).
    std::vector<IndexPredicate> predicates;
    if (base_where != nullptr) {
      collect_index_predicates(*base_where, params,
                               base.schema().columns().size(), predicates);
    } else {
      for (const Expr* conjunct : pushed) {
        collect_index_predicates(*conjunct, params,
                                 base.schema().columns().size(), predicates);
      }
    }
    path = choose_access_path(base, predicates);
  }
  if (explain) {
    explain->add("from " + base_alias + ": " + describe_access_path(base, path));
  }
  const auto from_start = rec.begin();
  const std::vector<RowId> candidates = fetch_access_path(base, path, view);

  ws.rows.reserve(candidates.size());
  for (RowId id : candidates) {
    if (ctx != nullptr) ctx->poll();
    const Row* row = base.fetch(id, view);
    if (row == nullptr) continue;
    bool keep = true;
    for (const Expr* conjunct : pushed) {
      if (!is_truthy(eval_expr(*conjunct, *row, params))) {
        keep = false;
        break;
      }
    }
    if (keep) ws.rows.push_back(*row);
  }
  rec.record("from " + base_alias, from_start, candidates.size(),
             ws.rows.size());

  // Joins. An equi-join conjunct (existing_col = right_col) in the ON
  // clause selects a build/probe hash join built on the smaller side;
  // without one (or with hash joins disabled) the join falls back to an
  // index-nested-loop when the right side has an index on its key, and a
  // plain nested loop otherwise. NULL keys never hash-match (SQL '='),
  // and the non-equi remainder of the ON clause is evaluated per pair.
  for (auto& join : stmt.joins) {
    const auto join_start = rec.begin();
    const std::uint64_t join_rows_in = ws.rows.size();
    std::uint64_t join_entries = 0;   // hash-build entries (0 on fallback)
    std::uint64_t join_mem = 0;       // peak bytes charged by the build
    bool join_degraded = false;       // hash build abandoned under pressure
    Table& right = resolve_table(db, join.table.table, ws);
    const std::string right_alias = util::to_lower(join.table.alias);
    std::vector<BoundColumn> new_layout = ws.layout;
    for (const auto& column : right.schema().columns()) {
      new_layout.push_back({right_alias, column.name});
    }
    bind_expr(*join.on, new_layout);

    // Find one equi-join conjunct across the boundary; the rest of the ON
    // conjunction becomes a residual filter.
    std::vector<Expr*> on_conjuncts;
    split_conjuncts(*join.on, on_conjuncts);
    std::size_t left_key = static_cast<std::size_t>(-1);
    std::size_t right_key = static_cast<std::size_t>(-1);
    const Expr* equi = nullptr;
    for (const Expr* c : on_conjuncts) {
      if (c->kind != ExprKind::kBinary || c->op != "=" ||
          c->children[0]->kind != ExprKind::kColumnRef ||
          c->children[1]->kind != ExprKind::kColumnRef) {
        continue;
      }
      const std::size_t a = c->children[0]->resolved_index;
      const std::size_t b = c->children[1]->resolved_index;
      if (a < ws.layout.size() && b >= ws.layout.size()) {
        left_key = a;
        right_key = b - ws.layout.size();
        equi = c;
        break;
      }
      if (b < ws.layout.size() && a >= ws.layout.size()) {
        left_key = b;
        right_key = a - ws.layout.size();
        equi = c;
        break;
      }
    }
    std::vector<const Expr*> residual;
    for (const Expr* c : on_conjuncts) {
      if (c != equi) residual.push_back(c);
    }
    auto passes_residual = [&](const Row& combined) {
      for (const Expr* c : residual) {
        if (!is_truthy(eval_expr(*c, combined, params))) return false;
      }
      return true;
    };

    const std::size_t right_width = right.schema().columns().size();
    std::vector<Row> joined;

    bool hash_join = equi != nullptr && tuning.hash_join;
    if (hash_join) {
      // The build table charges the statement's memory budget as it
      // grows; a soft breach abandons the hash strategy (the partially
      // built state is discarded and released) and the join falls
      // through to the nested-loop path below.
      ScopedMemCharge mem(ctx);
      bool degraded = false;
      const bool build_left = ws.rows.size() < right.live_row_count();
      if (explain) {
        explain->add("join " + right_alias + ": hash build=" +
                     (build_left ? std::string("left") : std::string("right")));
      }
      if (build_left) {
        // Build on the (smaller) left side, stream the right side through
        // it once. Matches are buffered per left row so the output keeps
        // the nested-loop's left-major order (and LEFT OUTER padding
        // still sees per-left-row match state).
        std::unordered_map<Value, std::vector<std::size_t>, ValueHash> table;
        table.reserve(ws.rows.size());
        for (std::size_t i = 0; i < ws.rows.size(); ++i) {
          if (ctx != nullptr) ctx->poll();
          const Value& key = ws.rows[i][left_key];
          if (key.is_null()) continue;
          if (!mem.charge(kHashEntryBytes)) {
            degraded = true;
            break;
          }
          table[key].push_back(i);
        }
        join_entries = table.size();
        if (!degraded) {
          std::vector<std::vector<Row>> matches(ws.rows.size());
          right.scan(view, [&](RowId, const Row& right_row) {
            if (ctx != nullptr) ctx->poll();
            const Value& key = right_row[right_key];
            if (key.is_null()) return;
            auto it = table.find(key);
            if (it == table.end()) return;
            for (std::size_t i : it->second) {
              Row combined = ws.rows[i];
              combined.insert(combined.end(), right_row.begin(), right_row.end());
              if (passes_residual(combined)) matches[i].push_back(std::move(combined));
            }
          });
          for (std::size_t i = 0; i < ws.rows.size(); ++i) {
            if (ctx != nullptr) ctx->poll();
            if (matches[i].empty()) {
              if (join.left_outer) {
                Row combined = ws.rows[i];
                combined.resize(combined.size() + right_width);  // NULL padding
                joined.push_back(std::move(combined));
              }
              continue;
            }
            for (auto& row : matches[i]) joined.push_back(std::move(row));
          }
        }
      } else {
        // Build on the right side, probe with each left row in order.
        std::unordered_map<Value, std::vector<const Row*>, ValueHash> table;
        table.reserve(right.live_row_count());
        right.scan(view, [&](RowId, const Row& right_row) {
          if (degraded) return;
          if (ctx != nullptr) ctx->poll();
          const Value& key = right_row[right_key];
          if (key.is_null()) return;
          if (!mem.charge(kHashEntryBytes)) {
            degraded = true;
            return;
          }
          table[key].push_back(&right_row);
        });
        join_entries = table.size();
        if (!degraded) {
          for (const auto& left_row : ws.rows) {
            if (ctx != nullptr) ctx->poll();
            bool matched = false;
            const Value& key = left_row[left_key];
            if (!key.is_null()) {
              auto it = table.find(key);
              if (it != table.end()) {
                for (const Row* right_row : it->second) {
                  Row combined = left_row;
                  combined.insert(combined.end(), right_row->begin(),
                                  right_row->end());
                  if (passes_residual(combined)) {
                    joined.push_back(std::move(combined));
                    matched = true;
                  }
                }
              }
            }
            if (!matched && join.left_outer) {
              Row combined = left_row;
              combined.resize(combined.size() + right_width);
              joined.push_back(std::move(combined));
            }
          }
        }
      }
      join_mem = mem.charged();
      join_degraded = degraded;
      if (degraded) {
        if (ctx != nullptr) ctx->note_mem_degraded();
        if (explain) explain->add("join " + right_alias + ": mem-degraded");
        joined.clear();
        hash_join = false;
      }
    }
    if (!hash_join) {
      const bool use_index =
          right_key != static_cast<std::size_t>(-1) && right.has_index(right_key);
      if (explain) {
        explain->add("join " + right_alias + ": " +
                     (use_index ? "index-nested-loop" : "nested-loop"));
      }
      const Expr& on = *join.on;
      for (const auto& left_row : ws.rows) {
        if (ctx != nullptr) ctx->poll();
        bool matched = false;
        auto try_pair = [&](const Row& right_row) {
          Row combined = left_row;
          combined.insert(combined.end(), right_row.begin(), right_row.end());
          if (is_truthy(eval_expr(on, combined, params))) {
            joined.push_back(std::move(combined));
            matched = true;
          }
        };
        if (use_index) {
          auto hits = right.index_equal(right_key, left_row[left_key]);
          for (RowId id : *hits) {
            if (const Row* right_row = right.fetch(id, view)) {
              try_pair(*right_row);
            }
          }
        } else {
          right.scan(view, [&](RowId, const Row& right_row) {
            if (ctx != nullptr) ctx->poll();
            try_pair(right_row);
          });
        }
        if (!matched && join.left_outer) {
          Row combined = left_row;
          combined.resize(combined.size() + right_width);  // NULL padding
          joined.push_back(std::move(combined));
        }
      }
    }
    ws.rows = std::move(joined);
    ws.layout = std::move(new_layout);
    rec.record("join " + right_alias, join_start, join_rows_in, ws.rows.size(),
               join_entries, join_mem, join_degraded);
  }

  // Full WHERE over the working rows: post-join re-evaluation (pushed
  // conjuncts were partial), or the full predicate over index candidates
  // (a superset) in the single-table case.
  if (stmt.where) {
    const auto filter_start = rec.begin();
    const std::uint64_t filter_rows_in = ws.rows.size();
    if (!stmt.joins.empty()) bind_expr(*stmt.where, ws.layout);
    std::vector<Row> kept;
    kept.reserve(ws.rows.size());
    for (auto& row : ws.rows) {
      if (ctx != nullptr) ctx->poll();
      if (is_truthy(eval_expr(*stmt.where, row, params))) {
        kept.push_back(std::move(row));
      }
    }
    ws.rows = std::move(kept);
    rec.record("filter", filter_start, filter_rows_in, ws.rows.size());
  }
  return ws;
}

std::string default_column_name(const Expr* expr, std::size_t position) {
  if (expr == nullptr) return "col" + std::to_string(position);
  if (expr->kind == ExprKind::kColumnRef) return expr->column_name;
  if (expr->kind == ExprKind::kFunction) {
    return util::to_lower(expr->function_name);
  }
  return "col" + std::to_string(position);
}

/// Evaluate a LIMIT/OFFSET operand (integer literal or placeholder).
std::size_t eval_limit_operand(const Expr& e, const Params& params,
                               const char* clause) {
  static const Row kNoRow;
  const Value v = eval_expr(e, kNoRow, params);
  if (v.type() != ValueType::kInt || v.as_int() < 0) {
    throw DbError(std::string(clause) + " must be a non-negative integer, got " +
                  (v.is_null() ? std::string("NULL") : v.to_string()));
  }
  return static_cast<std::size_t>(v.as_int());
}

}  // namespace

ResultSetData execute_select(Database& db, SelectStatement& stmt,
                             const Params& params, ExplainInfo* explain) {
  const ExecutorTuning tuning = db.executor_tuning();
  StatementContext* ctx = StatementContext::current();

  // Evaluate LIMIT/OFFSET up front: negative (or non-integer) operands are
  // errors, and a known bound enables the Top-K path below.
  std::optional<std::size_t> limit_count;
  std::optional<std::size_t> offset_count;
  if (stmt.limit) limit_count = eval_limit_operand(*stmt.limit, params, "LIMIT");
  if (stmt.offset) offset_count = eval_limit_operand(*stmt.offset, params, "OFFSET");

  OpRecorder rec = OpRecorder::make(explain);
  WorkingSet ws = build_working_set(db, stmt, params, explain, rec);

  // Expand '*' items into one column ref per working column.
  std::vector<const Expr*> output_exprs;  // parallel to output columns
  std::vector<ExprPtr> expanded;          // owns the expansion
  ResultSetData result;
  for (std::size_t i = 0; i < stmt.items.size(); ++i) {
    SelectItem& item = stmt.items[i];
    if (item.expr == nullptr) {
      for (std::size_t c = 0; c < ws.layout.size(); ++c) {
        auto ref = make_column(ws.layout[c].qualifier, ws.layout[c].name);
        ref->resolved_index = c;
        result.column_names.push_back(ws.layout[c].name);
        output_exprs.push_back(ref.get());
        expanded.push_back(std::move(ref));
      }
      continue;
    }
    bind_expr(*item.expr, ws.layout);
    result.column_names.push_back(
        item.alias.empty() ? default_column_name(item.expr.get(), i) : item.alias);
    output_exprs.push_back(item.expr.get());
  }

  // Detect aggregation.
  std::vector<Expr*> aggregate_nodes;
  for (const Expr* e : output_exprs) {
    auto found = find_aggregates(*const_cast<Expr*>(e));
    aggregate_nodes.insert(aggregate_nodes.end(), found.begin(), found.end());
  }
  if (stmt.having) {
    bind_expr(*stmt.having, ws.layout);
    auto found = find_aggregates(*stmt.having);
    aggregate_nodes.insert(aggregate_nodes.end(), found.begin(), found.end());
  }
  const bool aggregated = !aggregate_nodes.empty() || !stmt.group_by.empty();

  // Pre-compute ORDER BY keys alongside each output row so sorting works
  // uniformly for plain and aggregated queries. `seq` is the production
  // order; using it as the final tie-break makes both the full sort and
  // the Top-K heap reproduce std::stable_sort's ordering.
  struct OutputRow {
    Row values;
    Row sort_keys;
    std::size_t seq = 0;
  };
  std::vector<OutputRow> output;

  auto output_less = [&](const OutputRow& a, const OutputRow& b) {
    for (std::size_t k = 0; k < stmt.order_by.size(); ++k) {
      int c = a.sort_keys[k].compare(b.sort_keys[k]);
      if (stmt.order_by[k].descending) c = -c;
      if (c != 0) return c < 0;
    }
    return a.seq < b.seq;
  };

  // ORDER BY + LIMIT runs as a bounded Top-K heap: only the best
  // limit+offset rows are retained, so a top-10 query over 1M rows never
  // materializes the full sort.
  bool use_topk =
      tuning.top_k && !stmt.order_by.empty() && limit_count.has_value();
  const std::size_t keep =
      use_topk ? *limit_count + offset_count.value_or(0) : 0;

  // The heap's footprint is known up front (`keep` entries of values +
  // sort keys), so the budget check happens before any row is emitted;
  // a breach degrades to the plain full sort.
  ScopedMemCharge topk_mem(ctx);
  bool topk_degraded = false;
  if (use_topk && keep > 0) {
    const std::uint64_t estimate =
        static_cast<std::uint64_t>(keep) *
        (output_exprs.size() + stmt.order_by.size()) * kValueBytes;
    if (!topk_mem.charge(estimate)) {
      use_topk = false;
      topk_degraded = true;
      if (ctx != nullptr) ctx->note_mem_degraded();
      if (explain) explain->add("order-by: top-k mem-degraded");
    }
  }

  std::unordered_set<Row, RowHasher, RowEqual> distinct_seen;
  std::size_t next_seq = 0;
  auto emit = [&](OutputRow&& out) {
    if (stmt.distinct && !distinct_seen.insert(out.values).second) return;
    out.seq = next_seq++;
    if (!use_topk) {
      output.push_back(std::move(out));
      return;
    }
    if (keep == 0) return;  // LIMIT 0
    if (output.size() < keep) {
      output.push_back(std::move(out));
      std::push_heap(output.begin(), output.end(), output_less);
      return;
    }
    // Heap front is the worst retained row; replace it when beaten.
    if (output_less(out, output.front())) {
      std::pop_heap(output.begin(), output.end(), output_less);
      output.back() = std::move(out);
      std::push_heap(output.begin(), output.end(), output_less);
    }
  };

  auto order_key_for = [&](const Row& working_row, const Row& produced,
                           const OrderItem& item) -> Value {
    // 1) positional: ORDER BY 2
    if (item.expr->kind == ExprKind::kLiteral &&
        item.expr->literal.type() == ValueType::kInt) {
      const std::int64_t pos = item.expr->literal.as_int();
      if (pos < 1 || pos > static_cast<std::int64_t>(produced.size())) {
        throw DbError("ORDER BY position out of range");
      }
      return produced[static_cast<std::size_t>(pos - 1)];
    }
    // 2) alias of an output column
    if (item.expr->kind == ExprKind::kColumnRef && item.expr->table_qualifier.empty()) {
      for (std::size_t c = 0; c < result.column_names.size(); ++c) {
        if (util::iequals(result.column_names[c], item.expr->column_name)) {
          return produced[c];
        }
      }
    }
    // 3) arbitrary expression over the working row (plain queries only)
    if (aggregated) {
      throw DbError("ORDER BY over aggregated queries must reference output "
                    "columns by alias or position");
    }
    bind_expr(*item.expr, ws.layout);
    return eval_expr(*item.expr, working_row, params);
  };

  const auto produce_start = rec.begin();
  const std::uint64_t produce_rows_in = ws.rows.size();
  std::uint64_t group_entries = 0;  // groups materialized (either strategy)
  std::uint64_t group_mem = 0;      // bytes charged by the hash strategy
  bool group_degraded = false;      // hash grouping fell back to ordered map

  if (!aggregated) {
    if (!use_topk) output.reserve(ws.rows.size());
    for (const auto& row : ws.rows) {
      if (ctx != nullptr) ctx->poll();
      OutputRow out;
      out.values.reserve(output_exprs.size());
      for (const Expr* e : output_exprs) {
        out.values.push_back(eval_expr(*e, row, params));
      }
      out.sort_keys.reserve(stmt.order_by.size());
      for (const auto& item : stmt.order_by) {
        out.sort_keys.push_back(order_key_for(row, out.values, item));
      }
      emit(std::move(out));
    }
  } else {
    for (auto& g : stmt.group_by) bind_expr(*g, ws.layout);

    auto make_accumulators = [&]() {
      std::vector<Accumulator> accumulators(aggregate_nodes.size());
      for (std::size_t a = 0; a < aggregate_nodes.size(); ++a) {
        accumulators[a].node = aggregate_nodes[a];
      }
      return accumulators;
    };
    auto accumulate = [&](std::vector<Accumulator>& accumulators, const Row& row) {
      for (std::size_t a = 0; a < aggregate_nodes.size(); ++a) {
        Expr* node = aggregate_nodes[a];
        if (node->children.size() == 1 &&
            node->children[0]->kind == ExprKind::kStar) {
          ++accumulators[a].count;
          accumulators[a].any = true;
        } else {
          accumulators[a].add(eval_expr(*node->children[0], row, params));
        }
      }
    };
    auto group_key = [&](const Row& row) {
      Row key;
      key.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        key.push_back(eval_expr(*g, row, params));
      }
      return key;
    };
    // HAVING + projection for one finished group; the representative row
    // serves bare column references.
    auto finish_group = [&](const Row* rep, const std::vector<Accumulator>& accumulators) {
      std::vector<Value> aggregate_values;
      aggregate_values.reserve(accumulators.size());
      for (const auto& acc : accumulators) aggregate_values.push_back(acc.result());

      static const Row kEmptyRow;
      const Row& rep_row = rep != nullptr ? *rep : kEmptyRow;

      AggregateRewrite rewrite(aggregate_nodes, aggregate_values);
      if (stmt.having && !is_truthy(eval_expr(*stmt.having, rep_row, params))) {
        return;
      }
      OutputRow out;
      out.values.reserve(output_exprs.size());
      for (const Expr* e : output_exprs) {
        out.values.push_back(eval_expr(*e, rep_row, params));
      }
      out.sort_keys.reserve(stmt.order_by.size());
      for (const auto& item : stmt.order_by) {
        out.sort_keys.push_back(order_key_for(rep_row, out.values, item));
      }
      emit(std::move(out));
    };

    bool hash_group_by = tuning.hash_group_by;
    if (hash_group_by) {
      // Single pass: group keys hash into an open-addressing table whose
      // entries carry the accumulators inline. Groups come out in
      // first-seen order. Each new group charges the statement's memory
      // budget; a soft breach discards the table and degrades to the
      // ordered-map fallback below (which re-reads ws.rows — it is a
      // two-pass strategy anyway).
      ScopedMemCharge mem(ctx);
      bool degraded = false;
      GroupHashTable groups;
      for (const auto& row : ws.rows) {
        if (ctx != nullptr) ctx->poll();
        bool inserted = false;
        GroupEntry& entry = groups.find_or_insert(
            group_key(row), [&](Row&& key, std::size_t hash) {
              inserted = true;
              GroupEntry e;
              e.key = std::move(key);
              e.hash = hash;
              e.rep = &row;
              e.accumulators = make_accumulators();
              return e;
            });
        if (inserted &&
            !mem.charge(kHashEntryBytes +
                        (entry.key.size() + entry.accumulators.size()) *
                            kValueBytes)) {
          degraded = true;
          break;
        }
        accumulate(entry.accumulators, row);
      }
      group_mem = mem.charged();
      group_degraded = degraded;
      if (degraded) {
        if (ctx != nullptr) ctx->note_mem_degraded();
        if (explain) explain->add("group-by: mem-degraded");
        hash_group_by = false;
      } else {
        if (groups.entries().empty() && stmt.group_by.empty()) {
          // Aggregate over zero rows: one output row.
          GroupEntry e;
          e.accumulators = make_accumulators();
          groups.entries().push_back(std::move(e));
        }
        if (explain) {
          explain->add("group-by: hash groups=" +
                       std::to_string(groups.entries().size()));
        }
        group_entries = groups.entries().size();
        for (const auto& entry : groups.entries()) {
          if (ctx != nullptr) ctx->poll();
          finish_group(entry.rep, entry.accumulators);
        }
      }
    }
    if (!hash_group_by) {
      // Fallback: ordered map of group keys (two passes, key-sorted
      // output), kept for parity testing and as the memory-degraded
      // strategy.
      std::map<Row, std::vector<const Row*>> groups;
      for (const auto& row : ws.rows) {
        if (ctx != nullptr) ctx->poll();
        groups[group_key(row)].push_back(&row);
      }
      if (groups.empty() && stmt.group_by.empty()) {
        groups[Row{}] = {};  // aggregate over zero rows: one output row
      }
      if (explain) {
        explain->add("group-by: ordered groups=" + std::to_string(groups.size()));
      }
      group_entries = groups.size();
      for (auto& [key, members] : groups) {
        if (ctx != nullptr) ctx->poll();
        std::vector<Accumulator> accumulators = make_accumulators();
        for (const Row* row : members) accumulate(accumulators, *row);
        finish_group(members.empty() ? nullptr : members.front(), accumulators);
      }
    }
  }

  if (aggregated) {
    rec.record("group-by", produce_start, produce_rows_in, next_seq,
               group_entries, group_mem, group_degraded);
  } else {
    rec.record("project", produce_start, produce_rows_in, next_seq);
  }

  if (!stmt.order_by.empty()) {
    // rows_out < rows_in happens only on the Top-K path, which already
    // dropped beaten rows at emit time; the sort itself is row-preserving.
    const auto sort_start = rec.begin();
    if (use_topk) {
      std::sort_heap(output.begin(), output.end(), output_less);
      if (explain) {
        explain->add("order-by: top-k(" + std::to_string(keep) + ")");
      }
    } else {
      // `seq` tie-break makes the plain sort stable.
      std::sort(output.begin(), output.end(), output_less);
      if (explain) explain->add("order-by: sort");
    }
    rec.record("order-by", sort_start, next_seq, output.size(), 0,
               topk_mem.charged(), topk_degraded);
  }

  const auto limit_start = rec.begin();
  std::size_t begin = 0;
  std::size_t end = output.size();
  if (offset_count) begin = std::min(end, *offset_count);
  if (limit_count) end = std::min(end, begin + *limit_count);

  result.rows.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    result.rows.push_back(std::move(output[i].values));
  }
  if (limit_count || offset_count) {
    rec.record("limit", limit_start, output.size(), result.rows.size());
  }
  return result;
}

ResultSetData execute_explain(Database& db, SelectStatement& stmt,
                              const Params& params, bool analyze) {
  ExplainInfo info;
  info.analyze = analyze;
  execute_select(db, stmt, params, &info);
  if (analyze) {
    for (const auto& op : info.ops) {
      std::string line = "analyze " + op.label +
                         ": rows_in=" + std::to_string(op.rows_in) +
                         " rows_out=" + std::to_string(op.rows_out) +
                         " time_us=" + std::to_string(op.micros);
      if (op.entries != 0) line += " entries=" + std::to_string(op.entries);
      if (op.mem_bytes != 0) {
        line += " mem_bytes=" + std::to_string(op.mem_bytes);
      }
      if (op.degraded) line += " degraded";
      info.add(std::move(line));
    }
    // Pin the annotated plan into the statement's span and force it into
    // the slow-query ring, so PERFDMF_SLOW_QUERIES keeps the operator
    // breakdown of every EXPLAIN ANALYZE run.
    if (telemetry::Span* span = telemetry::Span::current()) {
      std::string plan;
      for (const auto& line : info.lines) {
        if (!plan.empty()) plan += '\n';
        plan += line;
      }
      span->set_plan(std::move(plan));
      span->force_trace();
    }
  }
  ResultSetData out;
  out.column_names = {"plan"};
  out.rows.reserve(info.lines.size());
  for (auto& line : info.lines) {
    out.rows.push_back({Value(std::move(line))});
  }
  return out;
}

}  // namespace perfdmf::sqldb
