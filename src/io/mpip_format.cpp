#include "io/mpip_format.h"

#include <cstdio>
#include <map>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::io {

namespace {
constexpr double kSecondsToMicros = 1e6;
constexpr double kMillisToMicros = 1e3;
}

profile::TrialData MpiPDataSource::parse(const std::string& content) {
  profile::TrialData trial;
  const std::size_t metric = trial.intern_metric("TIME");
  const auto lines = util::split_lines(content);

  if (lines.empty() || !util::starts_with(lines[0], "@ mpiP")) {
    throw perfdmf::ParseError("mpiP: missing '@ mpiP' header");
  }

  const std::size_t app_event = trial.intern_event("Application", "application");

  std::size_t i = 0;
  // ---- MPI Time section --------------------------------------------------
  while (i < lines.size() && !util::contains(lines[i], "@--- MPI Time")) ++i;
  if (i == lines.size()) {
    throw perfdmf::ParseError("mpiP: no '@--- MPI Time' section");
  }
  // Skip the section rule and the "Task AppTime MPITime MPI%" header.
  for (++i; i < lines.size(); ++i) {
    const std::string line = std::string(util::trim(lines[i]));
    if (line.empty() || line[0] == '-') continue;
    if (util::starts_with(line, "Task")) continue;
    if (line[0] == '@') break;  // next section
    auto fields = util::split_ws(line);
    if (fields.size() < 3) continue;
    if (fields[0] == "*") continue;  // aggregate row
    const std::int64_t task = util::parse_int_or_throw(fields[0], "mpiP task");
    const double app_time =
        util::parse_double_or_throw(fields[1], "mpiP AppTime") * kSecondsToMicros;
    const std::size_t thread = trial.intern_thread(
        {static_cast<std::int32_t>(task), 0, 0});
    profile::IntervalDataPoint point;
    point.inclusive = app_time;
    point.exclusive = app_time;  // reduced below as callsites are parsed
    point.num_calls = 1.0;
    trial.set_interval_data(app_event, thread, metric, point);
  }

  // ---- Callsite Time statistics ------------------------------------------
  while (i < lines.size() &&
         !util::contains(lines[i], "@--- Callsite Time statistics")) {
    ++i;
  }
  if (i < lines.size()) {
    for (++i; i < lines.size(); ++i) {
      const std::string line = std::string(util::trim(lines[i]));
      if (line.empty() || line[0] == '-') continue;
      if (util::starts_with(line, "Name")) continue;  // column header
      if (line[0] == '@') break;
      // Name Site Rank Count Max Mean Min App% MPI%
      auto fields = util::split_ws(line);
      if (fields.size() < 7) continue;
      if (fields[2] == "*") continue;  // per-callsite aggregate row
      const std::string& op = fields[0];
      const std::int64_t site = util::parse_int_or_throw(fields[1], "mpiP site");
      const std::int64_t rank = util::parse_int_or_throw(fields[2], "mpiP rank");
      const double count = util::parse_double_or_throw(fields[3], "mpiP count");
      const double mean_ms = util::parse_double_or_throw(fields[5], "mpiP mean");

      const std::size_t thread = trial.intern_thread(
          {static_cast<std::int32_t>(rank), 0, 0});
      const std::string event_name = "MPI_" + op + "() [site " +
                                     std::to_string(site) + "]";
      const std::size_t event = trial.intern_event(event_name, "MPI");
      profile::IntervalDataPoint point;
      point.exclusive = count * mean_ms * kMillisToMicros;
      point.inclusive = point.exclusive;  // MPI leaves: inclusive == exclusive
      point.num_calls = count;
      trial.set_interval_data(event, thread, metric, point);

      // Subtract MPI time from the Application's exclusive time.
      if (const profile::IntervalDataPoint* app =
              trial.interval_data(app_event, thread, metric)) {
        profile::IntervalDataPoint updated = *app;
        updated.exclusive -= point.exclusive;
        if (updated.exclusive < 0.0) updated.exclusive = 0.0;
        updated.num_subrs += 1.0;
        trial.set_interval_data(app_event, thread, metric, updated);
      }
    }
  }

  // ---- Callsite Message Sent statistics (optional) -----------------------
  // Name Site Rank Count Max Mean Min Sum  -> atomic events (bytes).
  while (i < lines.size() &&
         !util::contains(lines[i], "@--- Callsite Message Sent statistics")) {
    ++i;
  }
  if (i < lines.size()) {
    for (++i; i < lines.size(); ++i) {
      const std::string line = std::string(util::trim(lines[i]));
      if (line.empty() || line[0] == '-') continue;
      if (util::starts_with(line, "Name")) continue;
      if (line[0] == '@') break;
      auto fields = util::split_ws(line);
      if (fields.size() < 8) continue;
      if (fields[2] == "*") continue;
      const std::string& op = fields[0];
      const std::int64_t site = util::parse_int_or_throw(fields[1], "mpiP site");
      const std::int64_t rank = util::parse_int_or_throw(fields[2], "mpiP rank");
      profile::AtomicDataPoint point;
      point.sample_count = util::parse_double_or_throw(fields[3], "mpiP count");
      point.maximum = util::parse_double_or_throw(fields[4], "mpiP max");
      point.mean = util::parse_double_or_throw(fields[5], "mpiP mean");
      point.minimum = util::parse_double_or_throw(fields[6], "mpiP min");
      // Report carries no variance; leave std_dev at 0.
      const std::size_t thread =
          trial.intern_thread({static_cast<std::int32_t>(rank), 0, 0});
      const std::size_t atomic = trial.intern_atomic_event(
          "Message size: " + op + " [site " + std::to_string(site) + "]",
          "MPI_BYTES");
      trial.set_atomic_data(atomic, thread, point);
    }
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData MpiPDataSource::load() {
  profile::TrialData trial = parse(util::read_file(file_));
  trial.trial().name = file_.filename().string();
  return trial;
}

std::string render_mpip_report(const profile::TrialData& trial) {
  auto metric = trial.find_metric("TIME");
  if (!metric) throw perfdmf::InvalidArgument("mpiP writer needs a TIME metric");
  auto app_event = trial.find_event("Application");
  if (!app_event) {
    throw perfdmf::InvalidArgument("mpiP writer needs an 'Application' event");
  }

  std::string out = "@ mpiP\n";
  out += "@ Command : synthetic (perfdmf workload generator)\n";
  out += "@ Version : 2.8\n";
  out += "@ MPIP Build date : " "Jan  1 2005" "\n\n";

  out += "---------------------------------------------------------------\n";
  out += "@--- MPI Time (seconds) ---------------------------------------\n";
  out += "---------------------------------------------------------------\n";
  out += "Task    AppTime    MPITime     MPI%\n";
  double total_app = 0.0;
  double total_mpi = 0.0;
  for (std::size_t t = 0; t < trial.threads().size(); ++t) {
    const profile::IntervalDataPoint* app =
        trial.interval_data(*app_event, t, *metric);
    if (app == nullptr) continue;
    const double app_seconds = app->inclusive / kSecondsToMicros;
    const double mpi_seconds =
        (app->inclusive - app->exclusive) / kSecondsToMicros;
    total_app += app_seconds;
    total_mpi += mpi_seconds;
    char line[160];
    std::snprintf(line, sizeof line, "%4d %10.4g %10.4g %8.2f\n",
                  trial.threads()[t].node, app_seconds, mpi_seconds,
                  app_seconds > 0.0 ? 100.0 * mpi_seconds / app_seconds : 0.0);
    out += line;
  }
  char star[160];
  std::snprintf(star, sizeof star, "   * %10.4g %10.4g %8.2f\n", total_app,
                total_mpi, total_app > 0.0 ? 100.0 * total_mpi / total_app : 0.0);
  out += star;
  out += "\n";

  out += "---------------------------------------------------------------\n";
  out += "@--- Callsite Time statistics (all, milliseconds) -------------\n";
  out += "---------------------------------------------------------------\n";
  out += "Name              Site Rank   Count        Max       Mean        Min"
         "   App%   MPI%\n";
  for (std::size_t e = 0; e < trial.events().size(); ++e) {
    const std::string& name = trial.events()[e].name;
    // Expect "MPI_<op>() [site <id>]".
    if (!util::starts_with(name, "MPI_")) continue;
    const std::size_t paren = name.find("()");
    const std::size_t site_at = name.find("[site ");
    if (paren == std::string::npos || site_at == std::string::npos) continue;
    const std::string op = name.substr(4, paren - 4);
    const std::string site =
        name.substr(site_at + 6, name.size() - site_at - 7);
    for (std::size_t t = 0; t < trial.threads().size(); ++t) {
      const profile::IntervalDataPoint* p = trial.interval_data(e, t, *metric);
      if (p == nullptr) continue;
      const double mean_ms =
          p->num_calls > 0.0 ? p->exclusive / kMillisToMicros / p->num_calls : 0.0;
      char line[256];
      std::snprintf(line, sizeof line,
                    "%-16s %5s %4d %7.0f %10.4g %10.4g %10.4g %6.2f %6.2f\n",
                    op.c_str(), site.c_str(), trial.threads()[t].node,
                    p->num_calls, mean_ms, mean_ms, mean_ms, 0.0, 0.0);
      out += line;
    }
  }
  // Message-size statistics from atomic events named by the importer's
  // convention ("Message size: <op> [site <id>]").
  bool any_bytes = false;
  for (const auto& atomic : trial.atomic_events()) {
    if (util::starts_with(atomic.name, "Message size: ")) any_bytes = true;
  }
  if (any_bytes) {
    out += "\n";
    out += "---------------------------------------------------------------\n";
    out += "@--- Callsite Message Sent statistics (all, sent bytes) -------\n";
    out += "---------------------------------------------------------------\n";
    out += "Name              Site Rank   Count        Max       Mean        Min"
           "        Sum\n";
    for (std::size_t a = 0; a < trial.atomic_events().size(); ++a) {
      const std::string& name = trial.atomic_events()[a].name;
      if (!util::starts_with(name, "Message size: ")) continue;
      const std::size_t site_at = name.find("[site ");
      if (site_at == std::string::npos) continue;
      const std::string op = name.substr(14, site_at - 15);
      const std::string site =
          name.substr(site_at + 6, name.size() - site_at - 7);
      for (std::size_t t = 0; t < trial.threads().size(); ++t) {
        const profile::AtomicDataPoint* p = trial.atomic_data(a, t);
        if (p == nullptr) continue;
        char line[256];
        std::snprintf(line, sizeof line,
                      "%-16s %5s %4d %7.0f %10.4g %10.4g %10.4g %10.4g\n",
                      op.c_str(), site.c_str(), trial.threads()[t].node,
                      p->sample_count, p->maximum, p->mean, p->minimum,
                      p->sample_count * p->mean);
        out += line;
      }
    }
  }
  out += "\n@--- End of Report --------------------------------------------\n";
  return out;
}

}  // namespace perfdmf::io
