// CSV/TSV text export — the toolkit's plain-text output path for feeding
// spreadsheets and external statistics packages (the paper's PerfExplorer
// hands profile data to R; a delimited dump is the standard bridge).
#pragma once

#include <string>

#include "profile/trial_data.h"

namespace perfdmf::io {

struct CsvOptions {
  char separator = ',';
  /// Include the derived percentage / per-call columns.
  bool include_derived_fields = true;
};

/// One row per (event, thread, metric) data point:
/// event,group,node,context,thread,metric,inclusive,exclusive,[...],calls,subrs
std::string export_interval_csv(const profile::TrialData& trial,
                                const CsvOptions& options = {});

/// One row per (atomic event, thread):
/// event,node,context,thread,samples,min,max,mean,stddev
std::string export_atomic_csv(const profile::TrialData& trial,
                              const CsvOptions& options = {});

/// RFC-4180 quoting: wraps in quotes when the field contains the
/// separator, a quote, or a newline; embedded quotes are doubled.
std::string csv_escape(const std::string& field, char separator);

}  // namespace perfdmf::io
