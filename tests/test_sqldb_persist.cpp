// Persistence tests: WAL encoding, replay, snapshot, crash recovery.
#include <gtest/gtest.h>

#include "sqldb/connection.h"
#include "sqldb/wal.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf::sqldb;
namespace u = perfdmf::util;

TEST(ValueEncoding, RoundTripsEveryType) {
  for (const Value& v :
       {Value(), Value(std::int64_t{-42}), Value(3.14159),
        Value("text with\nnewline and spaces"), Value(std::string())}) {
    const std::string encoded = encode_value(v);
    std::size_t pos = 0;
    const Value decoded = decode_value(encoded, pos);
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(ValueEncoding, RealPrecisionPreserved) {
  const Value v(0.1234567890123456789);
  std::size_t pos = 0;
  EXPECT_DOUBLE_EQ(decode_value(encode_value(v), pos).as_real(), v.as_real());
}

TEST(ValueEncoding, TruncatedInputThrows) {
  std::size_t pos = 0;
  EXPECT_THROW(decode_value("T 100 short\n", pos), perfdmf::ParseError);
  pos = 0;
  EXPECT_THROW(decode_value("I", pos), perfdmf::ParseError);
  pos = 0;
  EXPECT_THROW(decode_value("Z 1\n", pos), perfdmf::ParseError);
}

TEST(Wal, AppendAndReplay) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  wal.append("INSERT INTO t VALUES (?)", {Value(std::int64_t{1})});
  wal.append("INSERT INTO t VALUES (?, ?)", {Value("x"), Value()});

  std::vector<std::pair<std::string, Params>> seen;
  wal.replay([&](const std::string& sql, const Params& params) {
    seen.emplace_back(sql, params);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "INSERT INTO t VALUES (?)");
  EXPECT_EQ(seen[0].second[0], Value(std::int64_t{1}));
  EXPECT_EQ(seen[1].second[1], Value());
}

TEST(Wal, TornTailIsDiscarded) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  wal.append("SELECT 1", {});
  // Simulate a crash mid-append.
  u::append_file(dir.path() / "wal.log", "S 999\nincomplete...");
  std::size_t replayed = 0;
  wal.replay([&](const std::string&, const Params&) { ++replayed; });
  EXPECT_EQ(replayed, 1u);
}

TEST(Wal, ResetTruncates) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  wal.append("SELECT 1", {});
  wal.reset();
  std::size_t replayed = 0;
  wal.replay([&](const std::string&, const Params&) { ++replayed; });
  EXPECT_EQ(replayed, 0u);
}

TEST(Persistence, DataSurvivesReopen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE kv (id INTEGER PRIMARY KEY, k TEXT, v REAL)");
    conn.execute_update("INSERT INTO kv (k, v) VALUES ('a', 1.5), ('b', 2.5)");
  }  // destructor checkpoints
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT v FROM kv WHERE k = 'b'");
    ASSERT_TRUE(rs.next());
    EXPECT_DOUBLE_EQ(rs.get_double(1), 2.5);
  }
}

TEST(Persistence, WalReplayWithoutCheckpoint) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (10)");
    // Simulate a crash: copy WAL aside, reopen from WAL only.
    // (No checkpoint call; the destructor would checkpoint, so instead we
    // verify the WAL alone can rebuild by reading it directly.)
    std::size_t records = 0;
    Wal wal(db_dir / "wal.log");
    wal.replay([&](const std::string&, const Params&) { ++records; });
    EXPECT_EQ(records, 2u);  // CREATE + INSERT
  }
}

TEST(Persistence, UpdatesAndDeletesSurviveReopen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1), (2), (3)");
    conn.execute_update("UPDATE t SET x = 20 WHERE x = 2");
    conn.execute_update("DELETE FROM t WHERE x = 1");
  }
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT x FROM t ORDER BY x");
    ASSERT_EQ(rs.row_count(), 2u);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 3);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 20);
  }
}

TEST(Persistence, RolledBackTransactionNotReplayed) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.begin();
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.rollback();
    conn.begin();
    conn.execute_update("INSERT INTO t (x) VALUES (2)");
    conn.commit();
  }
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT x FROM t");
    ASSERT_EQ(rs.row_count(), 1u);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
  }
}

TEST(Persistence, CheckpointTruncatesWalAndKeepsData) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  Connection conn(db_dir);
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
  conn.execute_update("INSERT INTO t (x) VALUES (7)");
  conn.checkpoint();
  EXPECT_TRUE(u::read_file(db_dir / "wal.log").empty());
  auto rs = conn.execute("SELECT x FROM t");
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_int(1), 7);
}

TEST(Persistence, AutoIncrementContinuesAfterReopen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1), (2)");
    conn.execute_update("DELETE FROM t WHERE id = 2");
    conn.checkpoint();
  }
  {
    Connection conn(db_dir);
    conn.execute_update("INSERT INTO t (x) VALUES (3)");
    auto rs = conn.execute("SELECT MAX(id) FROM t");
    rs.next();
    // Must not reuse id 2's slot number... id continues from the high mark.
    EXPECT_GE(rs.get_int(1), 3);
  }
}

TEST(Persistence, SchemaDetailsSurviveSnapshot) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE parent (id INTEGER PRIMARY KEY, name TEXT NOT NULL)");
    conn.execute_update(
        "CREATE TABLE child (id INTEGER PRIMARY KEY, p INTEGER,"
        " note TEXT DEFAULT 'none',"
        " FOREIGN KEY (p) REFERENCES parent (id))");
    conn.execute_update("INSERT INTO parent (name) VALUES ('a')");
    conn.checkpoint();
  }
  {
    Connection conn(db_dir);
    // FK still enforced after reload.
    EXPECT_THROW(conn.execute_update("INSERT INTO child (p) VALUES (99)"),
                 perfdmf::DbError);
    // DEFAULT still applied.
    conn.execute_update("INSERT INTO child (p) VALUES (1)");
    auto rs = conn.execute("SELECT note FROM child");
    rs.next();
    EXPECT_EQ(rs.get_string(1), "none");
    // NOT NULL still enforced.
    EXPECT_THROW(conn.execute_update("INSERT INTO parent (name) VALUES (NULL)"),
                 perfdmf::DbError);
  }
}

TEST(Persistence, InMemoryDatabaseHasNoFiles) {
  Connection conn;  // in-memory
  conn.execute_update("CREATE TABLE t (x INTEGER)");
  conn.execute_update("INSERT INTO t VALUES (1)");
  EXPECT_NO_THROW(conn.checkpoint());  // no-op, must not throw
}

TEST(Persistence, AlterTableSurvivesWalReplayAndSnapshot) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.execute_update("ALTER TABLE t ADD COLUMN note TEXT DEFAULT 'n/a'");
    conn.execute_update("INSERT INTO t (x, note) VALUES (2, 'hello')");
  }
  {
    // First reopen: recovered from WAL replay (destructor checkpointed,
    // but exercise another write + reopen to cover the snapshot path too).
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT note FROM t ORDER BY id");
    ASSERT_EQ(rs.row_count(), 2u);
    rs.next();
    EXPECT_EQ(rs.get_string(1), "n/a");
    rs.next();
    EXPECT_EQ(rs.get_string(1), "hello");
    conn.execute_update("ALTER TABLE t DROP COLUMN note");
  }
  {
    Connection conn(db_dir);
    EXPECT_THROW(conn.execute("SELECT note FROM t"), perfdmf::DbError);
    auto rs = conn.execute("SELECT COUNT(*) FROM t");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
  }
}

TEST(Persistence, CorruptedSnapshotIsRejected) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY)");
    conn.checkpoint();
  }
  // Damage the snapshot header.
  const auto snapshot = db_dir / "snapshot.pdb";
  std::string content = u::read_file(snapshot);
  content[0] = 'X';
  u::write_file(snapshot, content);
  EXPECT_THROW(Connection bad(db_dir), perfdmf::ParseError);
}

TEST(Persistence, TruncatedSnapshotIsRejected) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)");
    conn.execute_update("INSERT INTO t (s) VALUES ('abcdefghij')");
    conn.checkpoint();
  }
  const auto snapshot = db_dir / "snapshot.pdb";
  const std::string content = u::read_file(snapshot);
  u::write_file(snapshot, content.substr(0, content.size() / 2));
  EXPECT_THROW(Connection bad(db_dir), perfdmf::ParseError);
}

TEST(Persistence, IndexesRebuiltAfterReload) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v REAL)");
    conn.execute_update("CREATE INDEX idx_k ON t (k)");
    auto stmt = conn.prepare("INSERT INTO t (k, v) VALUES (?, ?)");
    conn.begin();
    for (int i = 0; i < 500; ++i) {
      stmt.set_int(1, i % 10);
      stmt.set_double(2, i);
      stmt.execute_update();
    }
    conn.commit();
  }
  {
    Connection conn(db_dir);
    // Index-served query must return the same multiset as a full check.
    auto rs = conn.execute("SELECT COUNT(*) FROM t WHERE k = 3");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 50);
    // Uniqueness of the PK is still enforced after recovery.
    EXPECT_THROW(conn.execute_update("INSERT INTO t (id, k, v) VALUES (1, 0, 0)"),
                 perfdmf::DbError);
  }
}

TEST(Persistence, ViewsSurviveReopenViaSnapshotAndWal) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1), (2), (3)");
    conn.execute_update("CREATE VIEW big AS SELECT x FROM t WHERE x >= 2");
    conn.checkpoint();  // view now lives in the snapshot
    conn.execute_update(
        "CREATE VIEW small AS SELECT x FROM t WHERE x < 2");  // in the WAL
  }
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT COUNT(*) FROM big");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
    auto rs2 = conn.execute("SELECT COUNT(*) FROM small");
    rs2.next();
    EXPECT_EQ(rs2.get_int(1), 1);
    EXPECT_EQ(conn.get_meta_data().get_views().size(), 2u);
  }
}
