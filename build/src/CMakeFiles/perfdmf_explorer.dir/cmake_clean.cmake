file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_explorer.dir/explorer/analysis_server.cpp.o"
  "CMakeFiles/perfdmf_explorer.dir/explorer/analysis_server.cpp.o.d"
  "libperfdmf_explorer.a"
  "libperfdmf_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
