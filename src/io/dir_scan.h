// Directory scanning with prefix/suffix filtering (paper §4): profiling
// tools that write one file per process or thread are imported by parsing
// a directory of files, or the subset starting with a prefix or ending
// with a suffix.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace perfdmf::io {

struct ScanFilter {
  std::string prefix;  // empty = no constraint
  std::string suffix;  // empty = no constraint
};

/// Regular files in `dir` whose basename satisfies `filter`, sorted by name.
std::vector<std::filesystem::path> scan_directory(const std::filesystem::path& dir,
                                                  const ScanFilter& filter = {});

}  // namespace perfdmf::io
