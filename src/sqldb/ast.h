// Abstract syntax tree for the SQL subset the engine executes.
//
// The subset is what PerfDMF's schema bootstrap, bulk loading, and the
// query/analysis API generate: CREATE/DROP/ALTER TABLE, CREATE INDEX,
// INSERT (multi-row, with placeholders), SELECT with joins, WHERE,
// GROUP BY + aggregates, HAVING, ORDER BY, LIMIT, UPDATE, DELETE, and
// transaction control.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sqldb/schema.h"
#include "sqldb/value.h"

namespace perfdmf::sqldb {

// ---------------------------------------------------------------- exprs

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kPlaceholder,  // '?', bound at execution time
  kUnary,        // -, NOT
  kBinary,       // arithmetic, comparison, AND/OR, LIKE, ||
  kFunction,     // scalar or aggregate call
  kIsNull,       // IS NULL / IS NOT NULL
  kInList,       // expr IN (e1, e2, ...)
  kBetween,      // expr BETWEEN lo AND hi
  kStar,         // '*' inside COUNT(*)
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                    // kLiteral
  std::string table_qualifier;      // kColumnRef (may be empty)
  std::string column_name;          // kColumnRef
  std::size_t placeholder_index = 0;  // kPlaceholder (0-based)
  std::string op;                   // kUnary / kBinary operator spelling
  std::string function_name;        // kFunction (upper-cased)
  bool negated = false;             // IS NOT NULL, NOT IN, NOT BETWEEN, NOT LIKE
  bool distinct = false;            // COUNT(DISTINCT x)
  std::vector<std::unique_ptr<Expr>> children;

  // Resolved by the executor before evaluation: index into the working
  // row for kColumnRef. SIZE_MAX means unresolved.
  std::size_t resolved_index = static_cast<std::size_t>(-1);
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr make_literal(Value v);
ExprPtr make_column(std::string qualifier, std::string name);

// ----------------------------------------------------------- statements

enum class StatementKind {
  kCreateTable,
  kDropTable,
  kCreateView,
  kDropView,
  kAlterAddColumn,
  kAlterDropColumn,
  kCreateIndex,
  kInsert,
  kSelect,
  kExplain,  // EXPLAIN SELECT ...: runs the select, returns the plan
  kUpdate,
  kDelete,
  kBegin,
  kCommit,
  kRollback,
};

struct SelectItem {
  ExprPtr expr;        // null means bare '*'
  std::string alias;   // output column name override
};

struct TableRef {
  std::string table;
  std::string alias;   // empty -> table name
};

struct JoinClause {
  TableRef table;
  ExprPtr on;          // join condition
  bool left_outer = false;  // LEFT [OUTER] JOIN: unmatched left rows kept,
                            // right columns NULL-padded
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<TableRef> from;            // SELECT without FROM is allowed
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  /// LIMIT/OFFSET accept an integer literal (possibly negative — rejected
  /// at execution time) or a '?' placeholder; null means absent.
  ExprPtr limit;
  ExprPtr offset;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;        // empty -> all columns in order
  std::vector<std::vector<ExprPtr>> rows;  // VALUES tuples
  /// INSERT INTO t (...) SELECT ... — when set, `rows` is empty and the
  /// select's result feeds the insert.
  std::unique_ptr<SelectStatement> select;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;
};

struct CreateTableStatement {
  bool if_not_exists = false;
  TableSchema schema;
};

struct DropTableStatement {
  bool if_exists = false;
  std::string table;
};

struct AlterColumnStatement {
  std::string table;
  ColumnDef column;        // for ADD
  std::string column_name;  // for DROP
};

struct CreateIndexStatement {
  bool unique = false;
  std::string name;
  std::string table;
  std::string column;
};

struct CreateViewStatement {
  std::string name;
  std::string select_sql;  // the raw SELECT text, re-parsed on use
};

struct DropViewStatement {
  bool if_exists = false;
  std::string name;
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement del;
  CreateTableStatement create_table;
  DropTableStatement drop_table;
  AlterColumnStatement alter;
  CreateIndexStatement create_index;
  CreateViewStatement create_view;
  DropViewStatement drop_view;
  /// EXPLAIN ANALYZE (kind == kExplain only): execute the statement and
  /// annotate the plan with per-operator runtime stats.
  bool analyze = false;
  /// Number of '?' placeholders in the statement.
  std::size_t placeholder_count = 0;
};

}  // namespace perfdmf::sqldb
