// Minimal leveled logger. The framework is a library: logging defaults to
// warnings-only on stderr and is globally adjustable by embedding tools,
// or at startup via the PERFDMF_LOG_LEVEL environment variable
// (debug|info|warn|error|off). Each line carries an ISO-8601 UTC
// timestamp, the thread id, and the level.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace perfdmf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a level name ("debug", "INFO", ...). nullopt on unknown input.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Current UTC wall-clock time as "YYYY-MM-DDTHH:MM:SS.mmmZ".
std::string iso8601_now();

/// Printable id of the calling thread (stable for the thread's lifetime).
std::string current_thread_id();

/// Emit one log line if `level` is enabled. Thread-safe (single write call).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace perfdmf::util
