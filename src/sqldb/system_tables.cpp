#include "sqldb/system_tables.h"

#include <cctype>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace perfdmf::sqldb {

namespace {

std::string upper(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

ColumnDef column(std::string name, ValueType type) {
  ColumnDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

TableSchema make_metrics_schema() {
  TableSchema schema{std::string(kMetricsTableName)};
  schema.add_column(column("name", ValueType::kText));
  schema.add_column(column("kind", ValueType::kText));
  schema.add_column(column("value", ValueType::kReal));
  // Histogram-only fields; NULL for counters and gauges.
  schema.add_column(column("count", ValueType::kInt));
  schema.add_column(column("sum", ValueType::kReal));
  schema.add_column(column("p50", ValueType::kReal));
  schema.add_column(column("p95", ValueType::kReal));
  schema.add_column(column("p99", ValueType::kReal));
  return schema;
}

TableSchema make_slow_queries_schema() {
  TableSchema schema{std::string(kSlowQueriesTableName)};
  schema.add_column(column("id", ValueType::kInt));
  schema.add_column(column("started_at", ValueType::kText));
  schema.add_column(column("thread", ValueType::kText));
  schema.add_column(column("sql", ValueType::kText));
  schema.add_column(column("plan", ValueType::kText));
  schema.add_column(column("total_ms", ValueType::kReal));
  schema.add_column(column("outcome", ValueType::kText));
  schema.add_column(column("parse_ms", ValueType::kReal));
  schema.add_column(column("plan_ms", ValueType::kReal));
  schema.add_column(column("lock_wait_ms", ValueType::kReal));
  schema.add_column(column("execute_ms", ValueType::kReal));
  schema.add_column(column("fsync_ms", ValueType::kReal));
  return schema;
}

std::unique_ptr<Table> materialize_metrics() {
  auto table = std::make_unique<Table>(make_metrics_schema());
  for (const auto& s : telemetry::MetricsRegistry::instance().snapshot()) {
    const bool histogram = s.kind == telemetry::MetricSample::Kind::kHistogram;
    Row row;
    row.reserve(8);
    row.emplace_back(s.name);
    row.emplace_back(std::string(telemetry::metric_kind_name(s.kind)));
    row.emplace_back(s.value);
    row.push_back(histogram ? Value(s.count) : Value::null());
    row.push_back(histogram ? Value(s.sum) : Value::null());
    row.push_back(histogram ? Value(s.p50) : Value::null());
    row.push_back(histogram ? Value(s.p95) : Value::null());
    row.push_back(histogram ? Value(s.p99) : Value::null());
    table->insert(std::move(row));
  }
  return table;
}

std::unique_ptr<Table> materialize_slow_queries() {
  auto table = std::make_unique<Table>(make_slow_queries_schema());
  for (const auto& t : telemetry::TraceRing::instance().snapshot()) {
    Row row;
    row.reserve(12);
    row.emplace_back(static_cast<std::int64_t>(t.id));
    row.emplace_back(t.started_at);
    row.emplace_back(t.thread);
    row.emplace_back(t.sql);
    row.emplace_back(t.plan);
    row.emplace_back(t.total_ms);
    row.emplace_back(t.outcome);
    using telemetry::Phase;
    for (const Phase p : {Phase::kParse, Phase::kPlan, Phase::kLockWait,
                          Phase::kExecute, Phase::kFsync}) {
      row.emplace_back(t.phase_ms[static_cast<std::size_t>(p)]);
    }
    table->insert(std::move(row));
  }
  return table;
}

}  // namespace

bool is_system_table_name(std::string_view name) {
  const std::string u = upper(name);
  return u == kMetricsTableName || u == kSlowQueriesTableName;
}

std::vector<std::string> system_table_names() {
  return {std::string(kMetricsTableName), std::string(kSlowQueriesTableName)};
}

const TableSchema& system_table_schema(std::string_view name) {
  static const TableSchema metrics = make_metrics_schema();
  static const TableSchema slow = make_slow_queries_schema();
  const std::string u = upper(name);
  if (u == kMetricsTableName) return metrics;
  if (u == kSlowQueriesTableName) return slow;
  throw DbError("not a system table: " + std::string(name));
}

std::unique_ptr<Table> materialize_system_table(std::string_view name) {
  const std::string u = upper(name);
  if (u == kMetricsTableName) return materialize_metrics();
  if (u == kSlowQueriesTableName) return materialize_slow_queries();
  throw DbError("not a system table: " + std::string(name));
}

}  // namespace perfdmf::sqldb
