#include "sqldb/table.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/error.h"

namespace perfdmf::sqldb {

namespace {

// Resolve a version's begin mark. Returns the commit timestamp, kTsAborted,
// or kTsPending (in which case `token_out` names the owning write unit).
// Committed outcomes are cached so settled versions stop touching the stamp.
std::uint64_t begin_ts_of(const RowVersion* v, std::uint64_t& token_out) {
  const std::uint64_t cached = v->begin_cache.load(std::memory_order_acquire);
  if (cached != kTsPending) return cached;
  const std::uint64_t ts = v->begin_stamp->ts.load(std::memory_order_acquire);
  if (ts == kTsPending) {
    token_out = v->begin_stamp->token;
    return kTsPending;
  }
  const_cast<RowVersion*>(v)->begin_cache.store(ts, std::memory_order_relaxed);
  return ts;
}

// Resolve a version's end mark. Returns 0 (never deleted), kTsAborted
// (delete rolled back — alive), kTsPending (delete in flight; `token_out`
// names the deleter), or the delete's commit timestamp.
std::uint64_t end_ts_of(const RowVersion* v, std::uint64_t& token_out) {
  CommitStamp* s = v->end_stamp.load(std::memory_order_acquire);
  if (!s) return v->end_cache.load(std::memory_order_acquire);
  const std::uint64_t ts = s->ts.load(std::memory_order_acquire);
  if (ts == kTsPending) {
    token_out = s->token;
    return kTsPending;
  }
  if (ts != kTsAborted) {
    const_cast<RowVersion*>(v)->end_cache.store(ts, std::memory_order_relaxed);
  }
  return ts;
}

}  // namespace

const RowVersion* Table::resolve_visible(const RowVersion* head,
                                         const ReadView& view) {
  for (const RowVersion* v = head; v; v = v->older) {
    std::uint64_t begin_token = 0;
    const std::uint64_t b = begin_ts_of(v, begin_token);
    if (b == kTsAborted) continue;
    if (b == kTsPending) {
      // A foreign pending version: skip to the committed one below it.
      if (view.token == 0 || begin_token != view.token) continue;
    } else if (b > view.ts) {
      continue;  // committed after this snapshot
    }
    std::uint64_t end_token = 0;
    const std::uint64_t e = end_ts_of(v, end_token);
    if (e == 0 || e == kTsAborted) return v;
    if (e == kTsPending) {
      // A foreign in-flight delete hasn't committed, so the row is still
      // visible; our own pending delete hides the row from ourselves.
      return (view.token != 0 && end_token == view.token) ? nullptr : v;
    }
    // Committed delete: visible only to snapshots older than the delete.
    return e > view.ts ? v : nullptr;
  }
  return nullptr;
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  // The primary key always gets a unique index: PerfDMF point lookups
  // (trial by id, event by id) must not scan.
  if (auto pk = schema_.primary_key_index()) {
    create_index(*pk, /*unique=*/true);
  }
}

Table::~Table() {
  for (auto& slot : slots_) {
    free_chain(slot.head.load(std::memory_order_relaxed));
  }
}

void Table::free_chain(RowVersion* head) {
  while (head) {
    RowVersion* older = head->older;
    delete head;
    head = older;
  }
}

Row Table::normalize(Row row) const {
  const auto& columns = schema_.columns();
  if (row.size() != columns.size()) {
    throw DbError("table " + schema_.name() + " expects " +
                  std::to_string(columns.size()) + " values, got " +
                  std::to_string(row.size()));
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    row[i] = coerce_for_column(columns[i], row[i], schema_.name());
  }
  return row;
}

Row Table::prepare_insert(Row row) {
  // Auto-increment: fill a NULL primary key before validation (normalize
  // would reject the NULL), and track the high-water mark.
  if (auto pk = schema_.primary_key_index()) {
    const ColumnDef& pk_col = schema_.columns()[*pk];
    if (row.size() == schema_.columns().size() && pk_col.auto_increment &&
        row[*pk].is_null()) {
      row[*pk] = Value(next_auto_.load(std::memory_order_relaxed));
    }
  }
  row = normalize(std::move(row));
  if (auto pk = schema_.primary_key_index()) {
    if (row[*pk].is_null()) {
      throw DbError("NULL primary key in table " + schema_.name());
    }
    if (schema_.columns()[*pk].type == ValueType::kInt) {
      bump_auto_increment(row[*pk].as_int() + 1);
    }
  }
  return row;
}

void Table::check_unique_locked(const Row& row, std::optional<RowId> self,
                                const ReadView& view) const {
  for (const auto& [column, index] : indexes_) {
    if (!index.unique) continue;
    const Value& key = row[column];
    if (key.is_null()) continue;
    auto [lo, hi] = index.entries.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      if (self && it->second == *self) continue;
      if (it->second >= slots_.size()) continue;
      const RowVersion* v = resolve_visible(
          slots_[it->second].head.load(std::memory_order_relaxed), view);
      if (v && v->data[column].compare(key) == 0) {
        throw DbError("unique constraint violated on " + schema_.name() + "." +
                      schema_.columns()[column].name + " = " + key.to_string());
      }
    }
  }
}

RowId Table::allocate_slot_locked() {
  // Reuse a committed-deleted slot when one is available: the old chain is
  // kept underneath the new version so snapshots that predate the delete
  // still resolve the old row. Candidates whose delete is still in flight
  // go back on the list; candidates whose delete rolled back are dropped
  // (a later delete re-queues them).
  RowId keep[8];
  std::size_t kept = 0;
  std::optional<RowId> chosen;
  for (int tries = 0; tries < 8 && !free_slots_.empty(); ++tries) {
    const RowId id = free_slots_.back();
    free_slots_.pop_back();
    if (id >= slots_.size()) continue;  // compacted away by vacuum
    const RowVersion* head = slots_[id].head.load(std::memory_order_relaxed);
    const RowVersion* visible = resolve_visible(head, ReadView::latest());
    if (!visible) {
      chosen = id;
      break;
    }
    std::uint64_t end_token = 0;
    if (end_ts_of(visible, end_token) == kTsPending && kept < 8) {
      keep[kept++] = id;
    }
  }
  for (std::size_t i = 0; i < kept; ++i) free_slots_.push_back(keep[i]);
  if (chosen) {
    static auto& reused =
        telemetry::MetricsRegistry::instance().counter("mvcc.slots_reused");
    reused.add();
    return *chosen;
  }
  slots_.emplace_back();
  slot_high_.store(slots_.size(), std::memory_order_release);
  return slots_.size() - 1;
}

RowId Table::insert(Row row, CommitStamp* stamp, const ReadView& view) {
  row = prepare_insert(std::move(row));
  std::unique_lock lk(latch_);
  check_unique_locked(row, std::nullopt, view);
  const RowId id = allocate_slot_locked();
  RowVersion* old_head = slots_[id].head.load(std::memory_order_relaxed);
  auto* v = new RowVersion(std::move(row), stamp, old_head);
  index_add(id, v->data);
  slots_[id].head.store(v, std::memory_order_release);
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  if (stamp) {
    stamp->table = this;
    ++stamp->live_delta;
  }
  static auto& installed =
      telemetry::MetricsRegistry::instance().counter("mvcc.versions_installed");
  installed.add();
  return id;
}

void Table::update(RowId id, Row row, CommitStamp* stamp,
                   const ReadView& view) {
  row = normalize(std::move(row));
  std::unique_lock lk(latch_);
  RowVersion* head = id < slots_.size()
                         ? slots_[id].head.load(std::memory_order_relaxed)
                         : nullptr;
  auto* cur = const_cast<RowVersion*>(resolve_visible(head, view));
  if (!cur) throw DbError("update of dead row in " + schema_.name());
  check_unique_locked(row, id, view);
  auto* v = new RowVersion(std::move(row), stamp, head);
  index_add(id, v->data);
  cur->end_stamp.store(stamp, std::memory_order_release);
  slots_[id].head.store(v, std::memory_order_release);
  if (stamp) stamp->table = this;  // live delta unchanged
  static auto& installed =
      telemetry::MetricsRegistry::instance().counter("mvcc.versions_installed");
  installed.add();
}

void Table::erase(RowId id, CommitStamp* stamp, const ReadView& view) {
  std::unique_lock lk(latch_);
  RowVersion* head = id < slots_.size()
                         ? slots_[id].head.load(std::memory_order_relaxed)
                         : nullptr;
  auto* cur = const_cast<RowVersion*>(resolve_visible(head, view));
  if (!cur) throw DbError("delete of dead row in " + schema_.name());
  cur->end_stamp.store(stamp, std::memory_order_release);
  live_rows_.fetch_add(-1, std::memory_order_relaxed);
  if (stamp) {
    stamp->table = this;
    --stamp->live_delta;
  }
  free_slots_.push_back(id);
}

const Row* Table::fetch(RowId id, const ReadView& view) const {
  const RowVersion* head = nullptr;
  {
    std::shared_lock lk(latch_);
    if (id >= slots_.size()) return nullptr;
    head = slots_[id].head.load(std::memory_order_acquire);
  }
  const RowVersion* v = resolve_visible(head, view);
  return v ? &v->data : nullptr;
}

const Row& Table::row(RowId id, const ReadView& view) const {
  const Row* r = fetch(id, view);
  if (!r) throw DbError("access to dead row in " + schema_.name());
  return *r;
}

bool Table::collect_batch(
    RowId& next, std::vector<std::pair<RowId, const RowVersion*>>& out) const {
  constexpr std::size_t kBatch = 1024;
  out.clear();
  std::shared_lock lk(latch_);
  const std::size_t n = slots_.size();
  while (next < n && out.size() < kBatch) {
    const RowVersion* head = slots_[next].head.load(std::memory_order_acquire);
    if (head) out.emplace_back(next, head);
    ++next;
  }
  return !out.empty();
}

// --- Legacy stamp-less mutations (external exclusion required) ------------

void Table::update(RowId id, Row row) {
  row = normalize(std::move(row));
  std::unique_lock lk(latch_);
  RowVersion* head = id < slots_.size()
                         ? slots_[id].head.load(std::memory_order_relaxed)
                         : nullptr;
  auto* cur = const_cast<RowVersion*>(resolve_visible(head, ReadView::latest()));
  if (!cur) throw DbError("update of dead row in " + schema_.name());
  check_unique_locked(row, id, ReadView::latest());
  // In-place replacement: drop the exact old entries, swap the data, add
  // the new keys.
  for (auto& [column, index] : indexes_) {
    auto [lo, hi] = index.entries.equal_range(cur->data[column]);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        index.entries.erase(it);
        break;
      }
    }
  }
  cur->data = std::move(row);
  index_add(id, cur->data);
}

void Table::erase(RowId id) {
  std::unique_lock lk(latch_);
  RowVersion* head = id < slots_.size()
                         ? slots_[id].head.load(std::memory_order_relaxed)
                         : nullptr;
  if (!resolve_visible(head, ReadView::latest())) {
    throw DbError("delete of dead row in " + schema_.name());
  }
  // Hard delete: remove every index entry the chain contributed and free it.
  for (const RowVersion* v = head; v; v = v->older) {
    for (auto& [column, index] : indexes_) {
      auto [lo, hi] = index.entries.equal_range(v->data[column]);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == id) {
          index.entries.erase(it);
          break;
        }
      }
    }
  }
  slots_[id].head.store(nullptr, std::memory_order_release);
  free_chain(head);
  live_rows_.fetch_add(-1, std::memory_order_relaxed);
  free_slots_.push_back(id);
}

// --- Indexes --------------------------------------------------------------

void Table::create_index(std::size_t column_index, bool unique) {
  if (column_index >= schema_.columns().size()) {
    throw DbError("index column out of range in " + schema_.name());
  }
  std::unique_lock lk(latch_);
  auto [it, inserted] = indexes_.try_emplace(column_index);
  if (!inserted) {
    it->second.unique = it->second.unique || unique;
    return;
  }
  it->second.unique = unique;
  // Index every non-aborted version so a writer creating an index
  // mid-transaction can look up its own pending rows.
  for (RowId id = 0; id < slots_.size(); ++id) {
    for (const RowVersion* v = slots_[id].head.load(std::memory_order_relaxed);
         v; v = v->older) {
      std::uint64_t token = 0;
      if (begin_ts_of(v, token) == kTsAborted) continue;
      index_add_one(it->second, v->data[column_index], id);
    }
  }
}

bool Table::has_index(std::size_t column_index) const {
  std::shared_lock lk(latch_);
  return indexes_.count(column_index) > 0;
}

bool Table::has_unique_index(std::size_t column_index) const {
  std::shared_lock lk(latch_);
  auto it = indexes_.find(column_index);
  return it != indexes_.end() && it->second.unique;
}

std::optional<std::vector<RowId>> Table::index_equal(std::size_t column_index,
                                                     const Value& key) const {
  std::shared_lock lk(latch_);
  auto it = indexes_.find(column_index);
  if (it == indexes_.end()) return std::nullopt;
  std::vector<RowId> out;
  auto [lo, hi] = it->second.entries.equal_range(key);
  for (auto e = lo; e != hi; ++e) out.push_back(e->second);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<std::vector<RowId>> Table::index_range(
    std::size_t column_index, const std::optional<Value>& lo,
    const std::optional<Value>& hi, bool lo_inclusive,
    bool hi_inclusive) const {
  std::shared_lock lk(latch_);
  auto it = indexes_.find(column_index);
  if (it == indexes_.end()) return std::nullopt;
  const auto& entries = it->second.entries;
  // Exclusive bounds flip lower_bound/upper_bound so a strict inequality
  // fetches exactly the qualifying keys instead of over-fetching the
  // boundary key's rows.
  auto begin = lo ? (lo_inclusive ? entries.lower_bound(*lo)
                                  : entries.upper_bound(*lo))
                  : entries.begin();
  auto end = hi ? (hi_inclusive ? entries.upper_bound(*hi)
                                : entries.lower_bound(*hi))
                : entries.end();
  if (lo && hi) {
    // Contradictory bounds (lo above hi) would put `begin` past `end`;
    // the iteration below must not run in that case.
    const int c = lo->compare(*hi);
    if (c > 0 || (c == 0 && !(lo_inclusive && hi_inclusive))) {
      return std::vector<RowId>{};
    }
  }
  std::vector<RowId> out;
  for (auto e = begin; e != end; ++e) {
    if (e->first.is_null()) continue;  // NULLs never match range predicates
    out.push_back(e->second);
  }
  // A slot can appear under several keys in the range (one per version);
  // deduplicate so callers never see the same row twice.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Table::bump_auto_increment(std::int64_t at_least) {
  std::int64_t cur = next_auto_.load(std::memory_order_relaxed);
  while (at_least > cur && !next_auto_.compare_exchange_weak(
                               cur, at_least, std::memory_order_relaxed)) {
  }
}

// --- Schema evolution (full exclusion) ------------------------------------

void Table::add_column(ColumnDef column) {
  if (column.primary_key) {
    throw DbError("cannot add a primary key column to existing table " +
                  schema_.name());
  }
  if (column.not_null && column.default_value.is_null()) {
    throw DbError("added NOT NULL column '" + column.name +
                  "' requires a DEFAULT value");
  }
  const Value fill = column.default_value;
  std::unique_lock lk(latch_);
  schema_.add_column(std::move(column));
  for (auto& slot : slots_) {
    for (RowVersion* v = slot.head.load(std::memory_order_relaxed); v;
         v = v->older) {
      v->data.push_back(fill);
    }
  }
}

void Table::drop_column(const std::string& name) {
  const std::size_t index = schema_.column_index_or_throw(name);
  std::unique_lock lk(latch_);
  if (indexes_.count(index)) {
    throw DbError("cannot drop indexed column '" + name + "'");
  }
  schema_.drop_column(name);
  // Shift index keys above the removed column down by one.
  std::map<std::size_t, Index> remapped;
  for (auto& [col, idx] : indexes_) {
    remapped.emplace(col > index ? col - 1 : col, std::move(idx));
  }
  indexes_ = std::move(remapped);
  for (auto& slot : slots_) {
    for (RowVersion* v = slot.head.load(std::memory_order_relaxed); v;
         v = v->older) {
      v->data.erase(v->data.begin() + static_cast<std::ptrdiff_t>(index));
    }
  }
}

void Table::index_add(RowId id, const Row& row) {
  for (auto& [column, index] : indexes_) {
    index_add_one(index, row[column], id);
  }
}

void Table::index_add_one(Index& index, const Value& key, RowId id) {
  // One entry per (key, slot) pair: a second version with the same key
  // would only produce duplicate candidates.
  auto [lo, hi] = index.entries.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) return;
  }
  index.entries.emplace(key, id);
}

// --- Vacuum ---------------------------------------------------------------

std::size_t Table::vacuum() {
  std::unique_lock lk(latch_);
  std::size_t reclaimed = 0;
  std::int64_t live = 0;
  free_slots_.clear();
  for (auto& [column, index] : indexes_) index.entries.clear();
  for (RowId id = 0; id < slots_.size(); ++id) {
    RowVersion* head = slots_[id].head.load(std::memory_order_relaxed);
    // The newest committed version decides the slot's fate: alive rows keep
    // exactly that version, committed-deleted rows free the whole slot.
    RowVersion* survivor = nullptr;
    for (RowVersion* v = head; v; v = v->older) {
      std::uint64_t token = 0;
      const std::uint64_t b = begin_ts_of(v, token);
      if (b == kTsAborted || b == kTsPending) continue;
      std::uint64_t end_token = 0;
      const std::uint64_t e = end_ts_of(v, end_token);
      if (e == 0 || e == kTsAborted) survivor = v;
      break;
    }
    for (RowVersion* v = head; v;) {
      RowVersion* older = v->older;
      if (v != survivor) {
        delete v;
        ++reclaimed;
      }
      v = older;
    }
    if (survivor) {
      // Fold the resolved outcome into the caches and drop the stamps
      // (the database frees them after every table has been vacuumed).
      survivor->begin_stamp = nullptr;
      survivor->end_stamp.store(nullptr, std::memory_order_relaxed);
      survivor->end_cache.store(0, std::memory_order_relaxed);
      survivor->older = nullptr;
      slots_[id].head.store(survivor, std::memory_order_relaxed);
      index_add(id, survivor->data);
      ++live;
    } else {
      slots_[id].head.store(nullptr, std::memory_order_relaxed);
      free_slots_.push_back(id);
    }
  }
  while (!slots_.empty() &&
         slots_.back().head.load(std::memory_order_relaxed) == nullptr) {
    slots_.pop_back();
  }
  slot_high_.store(slots_.size(), std::memory_order_release);
  free_slots_.erase(std::remove_if(free_slots_.begin(), free_slots_.end(),
                                   [&](RowId id) { return id >= slots_.size(); }),
                    free_slots_.end());
  live_rows_.store(live, std::memory_order_relaxed);
  static auto& reclaimed_counter = telemetry::MetricsRegistry::instance()
                                       .counter("mvcc.gc_versions_reclaimed");
  reclaimed_counter.add(reclaimed);
  return reclaimed;
}

}  // namespace perfdmf::sqldb
