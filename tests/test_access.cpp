// Tests for the access-authorization layer (paper §5.1: shared
// repository with per-user policies).
#include <gtest/gtest.h>

#include "api/access_control.h"
#include "io/synth.h"

using namespace perfdmf;
using namespace perfdmf::api;

namespace {

class AccessTest : public ::testing::Test {
 protected:
  AccessTest() : connection(std::make_shared<sqldb::Connection>()) {
    // Seed the shared archive with two applications as an administrator.
    DatabaseSession admin(connection);
    io::synth::TrialSpec spec;
    spec.nodes = 2;
    spec.event_count = 3;
    sppm_trial = admin.save_trial(io::synth::generate_trial(spec), "sppm", "runs");
    spec.seed = 9;
    secret_trial =
        admin.save_trial(io::synth::generate_trial(spec), "classified", "runs");
  }

  AccessPolicy typical_policy() const {
    AccessPolicy policy;
    policy.grant("alice", "*", Permission::kWrite);       // admin
    policy.grant("bob", "sppm", Permission::kRead);       // analyst
    policy.grant("carol", "*", Permission::kRead);        // auditor
    policy.grant("carol", "classified", Permission::kNone);
    return policy;
  }

  std::shared_ptr<sqldb::Connection> connection;
  std::int64_t sppm_trial = -1;
  std::int64_t secret_trial = -1;
};

TEST_F(AccessTest, PolicyResolutionOrder) {
  auto policy = typical_policy();
  EXPECT_EQ(policy.permission_for("alice", "anything"), Permission::kWrite);
  EXPECT_EQ(policy.permission_for("bob", "sppm"), Permission::kRead);
  EXPECT_EQ(policy.permission_for("bob", "classified"), Permission::kNone);
  // Exact rule beats the wildcard.
  EXPECT_EQ(policy.permission_for("carol", "classified"), Permission::kNone);
  EXPECT_EQ(policy.permission_for("carol", "sppm"), Permission::kRead);
  EXPECT_EQ(policy.permission_for("stranger", "sppm"), Permission::kNone);
}

TEST_F(AccessTest, DefaultPermissionApplies) {
  AccessPolicy open_policy;
  open_policy.set_default(Permission::kRead);
  EXPECT_EQ(open_policy.permission_for("anyone", "sppm"), Permission::kRead);
}

TEST_F(AccessTest, ApplicationListIsFiltered) {
  AuthorizedSession bob(connection, typical_policy(), "bob");
  auto apps = bob.get_application_list();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].name, "sppm");

  AuthorizedSession alice(connection, typical_policy(), "alice");
  EXPECT_EQ(alice.get_application_list().size(), 2u);

  AuthorizedSession stranger(connection, typical_policy(), "mallory");
  EXPECT_TRUE(stranger.get_application_list().empty());
}

TEST_F(AccessTest, ReadersCanLoadAllowedTrials) {
  AuthorizedSession bob(connection, typical_policy(), "bob");
  auto data = bob.load_trial(sppm_trial);
  EXPECT_GT(data.interval_point_count(), 0u);
  EXPECT_THROW(bob.load_trial(secret_trial), AccessDenied);
}

TEST_F(AccessTest, ReadersCannotWriteOrDelete) {
  AuthorizedSession bob(connection, typical_policy(), "bob");
  io::synth::TrialSpec spec;
  EXPECT_THROW(bob.save_trial(io::synth::generate_trial(spec), "sppm", "runs"),
               AccessDenied);
  EXPECT_THROW(bob.delete_trial(sppm_trial), AccessDenied);
}

TEST_F(AccessTest, WritersCanStoreAndDelete) {
  AuthorizedSession alice(connection, typical_policy(), "alice");
  io::synth::TrialSpec spec;
  spec.seed = 33;
  const std::int64_t id =
      alice.save_trial(io::synth::generate_trial(spec), "sppm", "runs");
  EXPECT_GT(id, 0);
  EXPECT_NO_THROW(alice.delete_trial(id));
}

TEST_F(AccessTest, BrowsingScopedByApplication) {
  AuthorizedSession bob(connection, typical_policy(), "bob");
  auto experiments = bob.get_experiment_list("sppm");
  ASSERT_EQ(experiments.size(), 1u);
  auto trials = bob.get_trial_list("sppm", experiments[0].id);
  EXPECT_EQ(trials.size(), 1u);
  EXPECT_THROW(bob.get_experiment_list("classified"), AccessDenied);
}

TEST_F(AccessTest, CannotLaunderExperimentThroughAllowedApplication) {
  // bob may read sppm; he must not fetch classified's trials by passing
  // classified's experiment id with sppm's name.
  AuthorizedSession bob(connection, typical_policy(), "bob");
  DatabaseSession admin(connection);
  auto secret_app = admin.api().find_application("classified");
  auto experiments = admin.api().list_experiments(secret_app->id);
  ASSERT_EQ(experiments.size(), 1u);
  EXPECT_THROW(bob.get_trial_list("sppm", experiments[0].id), AccessDenied);
}

TEST_F(AccessTest, WildcardWriteDoesNotLeakAcrossUsers) {
  AuthorizedSession stranger(connection, typical_policy(), "mallory");
  EXPECT_THROW(stranger.load_trial(sppm_trial), AccessDenied);
  io::synth::TrialSpec spec;
  EXPECT_THROW(
      stranger.save_trial(io::synth::generate_trial(spec), "newapp", "e"),
      AccessDenied);
}

}  // namespace
