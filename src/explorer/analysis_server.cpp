#include "explorer/analysis_server.h"

#include <cstdio>
#include <cstdlib>

#include "analysis/correlation.h"
#include "analysis/imbalance.h"
#include "analysis/hierarchical.h"
#include "analysis/kmeans.h"
#include "analysis/pca.h"
#include "analysis/stats.h"
#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/timer.h"

namespace perfdmf::explorer {

namespace {
telemetry::Gauge& queue_depth_gauge() {
  static telemetry::Gauge& g =
      telemetry::MetricsRegistry::instance().gauge("explorer.queue.depth");
  return g;
}

telemetry::Counter& shed_counter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("explorer.requests_shed");
  return c;
}

std::size_t max_pending_from_env() {
  const char* raw = std::getenv("PERFDMF_ANALYSIS_MAX_PENDING");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  return (end != raw && v > 0) ? static_cast<std::size_t>(v) : 0;
}
}  // namespace

const char* analysis_kind_name(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kKMeans: return "kmeans";
    case AnalysisKind::kHierarchical: return "hierarchical";
    case AnalysisKind::kCorrelation: return "correlation";
    case AnalysisKind::kPca: return "pca";
    case AnalysisKind::kDescriptive: return "descriptive";
    case AnalysisKind::kImbalance: return "imbalance";
  }
  return "?";
}

AnalysisServer::AnalysisServer(std::shared_ptr<sqldb::Connection> connection,
                               std::size_t workers)
    : api_(std::move(connection)) {
  max_pending_ = max_pending_from_env();
  if (workers > 0) {
    // Per-worker connections over the shared database: requests on
    // different workers read in parallel under the shared-read lock.
    worker_apis_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_apis_.push_back(std::make_unique<api::DatabaseAPI>(
          std::make_shared<sqldb::Connection>(
              api_.connection_ptr()->database_ptr())));
      idle_apis_.push_back(worker_apis_.back().get());
    }
    pool_ = std::make_unique<util::ThreadPool>(workers);
  }
}

AnalysisServer::~AnalysisServer() {
  // Drain outstanding requests before the worker APIs are torn down.
  if (pool_) pool_->wait_idle();
}

AnalysisResponse AnalysisServer::submit(const AnalysisRequest& request) {
  {
    std::lock_guard lock(state_mutex_);
    ++submitted_;
  }
  queue_depth_gauge().add(1);
  return run_counted(api_, request);
}

std::future<AnalysisResponse> AnalysisServer::submit_async(
    const AnalysisRequest& request) {
  if (!pool_) {
    {
      std::lock_guard lock(state_mutex_);
      ++submitted_;
    }
    queue_depth_gauge().add(1);
    // Degenerate synchronous mode: fulfill immediately.
    std::promise<AnalysisResponse> promise;
    try {
      promise.set_value(run_counted(api_, request));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    return promise.get_future();
  }
  {
    // Backpressure: shed instead of queueing without bound. The check
    // and the slot claim (++submitted_) happen under the same lock that
    // counts completions, so the in-flight count can't race past the
    // bound.
    std::lock_guard lock(state_mutex_);
    if (max_pending_ > 0 && submitted_ - completed_ >= max_pending_) {
      shed_counter().add();
      throw DbError("analysis server overloaded: " +
                        std::to_string(submitted_ - completed_) +
                        " requests pending (max " +
                        std::to_string(max_pending_) + ")",
                    DbError::Kind::kOverloaded);
    }
    ++submitted_;
  }
  queue_depth_gauge().add(1);
  auto task = std::make_shared<std::packaged_task<AnalysisResponse()>>(
      [this, request] {
        api::DatabaseAPI* worker = acquire_worker_api();
        try {
          AnalysisResponse response = run_counted(*worker, request);
          release_worker_api(worker);
          return response;
        } catch (...) {
          release_worker_api(worker);
          throw;
        }
      });
  auto future = task->get_future();
  // The request was counted before enqueueing (the task may complete
  // before we could count it afterwards); roll the count back if the
  // enqueue itself fails — a submitted_ with no matching completion
  // would wedge every later wait_idle().
  try {
    pool_->submit([task] { (*task)(); });
  } catch (...) {
    {
      std::lock_guard lock(state_mutex_);
      --submitted_;
      idle_cv_.notify_all();
    }
    queue_depth_gauge().add(-1);
    throw;
  }
  return future;
}

std::vector<api::DatabaseAPI::AnalysisResult> AnalysisServer::browse(
    std::int64_t trial_id) {
  return api_.list_analysis_results(trial_id);
}

void AnalysisServer::wait_idle() {
  std::unique_lock lock(state_mutex_);
  idle_cv_.wait(lock, [this] { return completed_ == submitted_; });
}

void AnalysisServer::set_max_pending(std::size_t n) {
  std::lock_guard lock(state_mutex_);
  max_pending_ = n;
}

std::size_t AnalysisServer::max_pending() const {
  std::lock_guard lock(state_mutex_);
  return max_pending_;
}

std::size_t AnalysisServer::submitted_count() const {
  std::lock_guard lock(state_mutex_);
  return submitted_;
}

std::size_t AnalysisServer::completed_count() const {
  std::lock_guard lock(state_mutex_);
  return completed_;
}

api::DatabaseAPI* AnalysisServer::acquire_worker_api() {
  std::lock_guard lock(state_mutex_);
  // Never empty: the pool bounds concurrency to the number of APIs.
  api::DatabaseAPI* api = idle_apis_.back();
  idle_apis_.pop_back();
  return api;
}

void AnalysisServer::release_worker_api(api::DatabaseAPI* api) {
  std::lock_guard lock(state_mutex_);
  idle_apis_.push_back(api);
}

AnalysisResponse AnalysisServer::run_counted(api::DatabaseAPI& api,
                                             const AnalysisRequest& request) {
  auto& registry = telemetry::MetricsRegistry::instance();
  static auto& requests = registry.counter("explorer.requests");
  static auto& failures = registry.counter("explorer.request_failures");
  static auto& request_micros = registry.histogram("explorer.request_micros");
  requests.add();
  util::WallTimer request_timer;
  // Count completion for failures too; otherwise wait_idle() would hang
  // after a rejected request.
  try {
    AnalysisResponse response = run(api, request);
    {
      std::lock_guard lock(state_mutex_);
      ++completed_;
      idle_cv_.notify_all();
    }
    queue_depth_gauge().add(-1);
    request_micros.record(
        static_cast<std::uint64_t>(request_timer.seconds() * 1e6));
    return response;
  } catch (...) {
    {
      std::lock_guard lock(state_mutex_);
      ++completed_;
      idle_cv_.notify_all();
    }
    queue_depth_gauge().add(-1);
    failures.add();
    request_micros.record(
        static_cast<std::uint64_t>(request_timer.seconds() * 1e6));
    throw;
  }
}

AnalysisResponse AnalysisServer::run(api::DatabaseAPI& api,
                                     const AnalysisRequest& request) {
  if (!api.get_trial(request.trial_id)) {
    throw InvalidArgument("analysis request for unknown trial " +
                          std::to_string(request.trial_id));
  }
  // "the analysis server selects the data of interest, gets the relevant
  // profile data" — one full load per request; requests are independent.
  profile::TrialData trial = api.load_trial(request.trial_id);

  AnalysisResponse response;
  response.kind = analysis_kind_name(request.kind);
  char line[256];

  switch (request.kind) {
    case AnalysisKind::kKMeans: {
      auto features = analysis::thread_features(trial);
      analysis::KMeansOptions options;
      options.k = request.k;
      options.seed = request.seed;
      auto result = analysis::kmeans(features.values, features.rows,
                                     features.cols, options);
      std::snprintf(line, sizeof line,
                    "k=%zu threads=%zu inertia=%.4f iterations=%zu",
                    result.centroids.size(), features.rows, result.inertia,
                    result.iterations);
      response.summary = line;
      response.content = response.summary + "\nsizes:";
      for (std::size_t s : result.cluster_sizes) {
        response.content += " " + std::to_string(s);
      }
      response.content += "\nassignment:";
      for (std::size_t a : result.assignment) {
        response.content += " " + std::to_string(a);
      }
      break;
    }
    case AnalysisKind::kHierarchical: {
      auto features = analysis::thread_features(trial);
      auto tree = analysis::hierarchical_cluster(features.values, features.rows,
                                                 features.cols);
      auto assignment = tree.cut(request.k);
      std::snprintf(line, sizeof line, "k=%zu threads=%zu merges=%zu",
                    request.k, features.rows, tree.merges.size());
      response.summary = line;
      response.content = response.summary + "\nassignment:";
      for (std::size_t a : assignment) {
        response.content += " " + std::to_string(a);
      }
      break;
    }
    case AnalysisKind::kCorrelation: {
      auto matrix = analysis::correlate_metrics(trial);
      auto strong = analysis::strong_correlations(matrix, 0.8);
      std::snprintf(line, sizeof line, "metrics=%zu strong_pairs=%zu",
                    matrix.metric_names.size(), strong.size());
      response.summary = line;
      response.content = analysis::format_correlation_matrix(matrix);
      break;
    }
    case AnalysisKind::kPca: {
      auto features = analysis::thread_features(trial);
      auto result =
          analysis::pca(features.values, features.rows, features.cols, 2);
      double cumulative = 0.0;
      std::size_t needed = 0;
      for (double ratio : result.explained_variance_ratio) {
        cumulative += ratio;
        ++needed;
        if (cumulative >= 0.95) break;
      }
      std::snprintf(line, sizeof line,
                    "dims=%zu components_for_95pct=%zu top_ratio=%.4f",
                    features.cols, needed,
                    result.explained_variance_ratio.empty()
                        ? 0.0
                        : result.explained_variance_ratio[0]);
      response.summary = line;
      response.content = response.summary;
      break;
    }
    case AnalysisKind::kDescriptive: {
      auto metric = request.metric_name.empty()
                        ? std::optional<std::size_t>(0)
                        : trial.find_metric(request.metric_name);
      if (!metric || trial.metrics().empty()) {
        throw InvalidArgument("descriptive analysis: no such metric '" +
                              request.metric_name + "'");
      }
      response.content = "event\tcount\tmin\tmean\tmax\tstddev\n";
      std::size_t events_summarized = 0;
      for (std::size_t e = 0; e < trial.events().size(); ++e) {
        std::vector<double> values;
        for (std::size_t t = 0; t < trial.threads().size(); ++t) {
          const auto* p = trial.interval_data(e, t, *metric);
          if (p != nullptr) values.push_back(p->exclusive);
        }
        if (values.empty()) continue;
        ++events_summarized;
        auto d = analysis::describe(values);
        std::snprintf(line, sizeof line, "%s\t%zu\t%.6g\t%.6g\t%.6g\t%.6g\n",
                      trial.events()[e].name.c_str(), d.count, d.minimum,
                      d.mean, d.maximum, d.std_dev);
        response.content += line;
      }
      std::snprintf(line, sizeof line, "events=%zu threads=%zu",
                    events_summarized, trial.threads().size());
      response.summary = line;
      break;
    }
    case AnalysisKind::kImbalance: {
      const std::string metric =
          request.metric_name.empty() && !trial.metrics().empty()
              ? trial.metrics()[0].name
              : request.metric_name;
      auto rows = analysis::compute_imbalance(trial, metric);
      auto outliers = analysis::find_outlier_threads(trial, metric);
      std::snprintf(line, sizeof line,
                    "events=%zu worst_imbalance=%.1f%% outliers=%zu",
                    rows.size(), rows.empty() ? 0.0 : rows.front().imbalance_pct,
                    outliers.size());
      response.summary = line;
      response.content = analysis::format_imbalance_table(rows);
      for (const auto& outlier : outliers) {
        std::snprintf(line, sizeof line, "outlier %s z=%+.2f total=%.4g\n",
                      profile::to_string(outlier.thread).c_str(),
                      outlier.z_score, outlier.total);
        response.content += line;
      }
      break;
    }
  }

  // "the results are saved to the database, using the PerfDMF API."
  response.result_id = api.save_analysis_result(
      request.trial_id, response.summary, response.kind, response.content);
  return response;
}

}  // namespace perfdmf::explorer
