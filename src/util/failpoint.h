// Failpoints: named fault-injection sites for crash-safety testing.
//
// Production code marks the spots where durability can go wrong —
// WAL appends, snapshot renames, fsyncs — with a named site, e.g.
// `failpoint::evaluate("wal.commit")`. Tests (or the PERFDMF_FAILPOINTS
// environment variable) arm a site with an action and a countdown; the
// Nth evaluation fires it. When no failpoint is armed the check is one
// relaxed atomic load, so sites are free to sit on hot paths.
//
// Actions:
//   kError      throw IoError before the operation (clean IO failure)
//   kShortWrite write only the first `arg` bytes, then _exit — a torn
//               write followed by a process crash (IO sites only)
//   kAbort      _exit immediately (crash before the operation)
//   kDelay      sleep `arg` milliseconds, then proceed (race widening)
//
// A fired failpoint disarms itself (one-shot); re-arm for repetition.
// Site names follow `<component>.<operation>`, e.g. "wal.append",
// "snapshot.install", "util.write_file".
//
// Environment syntax (sites separated by ';'):
//   PERFDMF_FAILPOINTS="wal.commit=short:3:17;snapshot.install=abort"
//   each entry: <name>=<error|short|abort|delay>[:<countdown>[:<arg>]]
#pragma once

#include <optional>
#include <string>

namespace perfdmf::util {

enum class FailAction { kError, kShortWrite, kAbort, kDelay };

struct FailpointHit {
  FailAction action;
  int arg;  // kShortWrite: bytes to keep; kDelay: milliseconds
};

namespace failpoint {

/// Exit status used by kAbort/kShortWrite so a crash harness can tell
/// an injected crash from a genuine one.
constexpr int kCrashExitCode = 87;

/// Arm `name`: fires on the `countdown`-th evaluation (1 = next).
void enable(const std::string& name, FailAction action, int countdown = 1,
            int arg = 0);
void disable(const std::string& name);
/// Disarm every failpoint (test teardown).
void clear_all();

/// Raw check-and-consume: returns the hit if `name` fires now. Does not
/// act on it. Most call sites want evaluate() instead.
std::optional<FailpointHit> hit(const char* name);

/// Evaluate `name` and act: kError throws IoError, kAbort calls _exit,
/// kDelay sleeps then returns nullopt. kShortWrite is returned for the
/// IO site to apply (write `arg` bytes, then _exit). Returns nullopt
/// when nothing fires.
std::optional<FailpointHit> evaluate(const char* name);

}  // namespace failpoint
}  // namespace perfdmf::util
