# Empty dependencies file for perfdmf_util.
# This may be replaced when dependencies are built.
