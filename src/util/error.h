// Exception hierarchy for PerfDMF-C++.
//
// All framework errors derive from perfdmf::Error so callers can catch one
// base type at an API boundary. Subclasses mark which subsystem failed.
#pragma once

#include <stdexcept>
#include <string>

namespace perfdmf {

/// Base class for every error thrown by the framework.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input file or string (profile formats, XML, SQL text).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Database engine failures: constraint violations, unknown tables, etc.
class DbError : public Error {
 public:
  explicit DbError(const std::string& what) : Error("db error: " + what) {}
};

/// Filesystem / OS-level failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// A caller violated an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

}  // namespace perfdmf
