#include "io/tau_format.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace perfdmf::io {

namespace {

/// Parse `profile.N.C.T` -> ThreadId. Returns false for other names.
bool parse_profile_filename(const std::string& name, profile::ThreadId& out) {
  if (!util::starts_with(name, "profile.")) return false;
  auto parts = util::split(name.substr(8), '.');
  if (parts.size() != 3) return false;
  auto n = util::parse_int(parts[0]);
  auto c = util::parse_int(parts[1]);
  auto t = util::parse_int(parts[2]);
  if (!n || !c || !t) return false;
  out.node = static_cast<std::int32_t>(*n);
  out.context = static_cast<std::int32_t>(*c);
  out.thread = static_cast<std::int32_t>(*t);
  return true;
}

/// Read a leading quoted name; returns the rest of the line after it.
std::string parse_quoted(const std::string& line, std::string& name,
                         std::string_view what) {
  if (line.empty() || line[0] != '"') {
    throw perfdmf::ParseError("TAU: expected quoted " + std::string(what) +
                              " in line: " + line);
  }
  const std::size_t close = line.find('"', 1);
  if (close == std::string::npos) {
    throw perfdmf::ParseError("TAU: unterminated quoted name: " + line);
  }
  name = line.substr(1, close - 1);
  return line.substr(close + 1);
}

/// Parse TAU's metadata XML block into the trial's flexible fields.
/// Grammar: <metadata><attribute><name>..</name><value>..</value>
/// </attribute>*</metadata>. Malformed blocks are ignored (metadata is
/// advisory; a bad block must not fail the profile import).
void parse_metadata_block(const std::string& xml_text,
                          perfdmf::profile::TrialData& trial) {
  try {
    perfdmf::xml::XmlParser parser(xml_text);
    parser.expect_start("metadata");
    for (;;) {
      const auto& peeked = parser.peek();
      if (peeked.type != perfdmf::xml::XmlEventType::kStartElement ||
          peeked.name != "attribute") {
        break;
      }
      parser.expect_start("attribute");
      parser.expect_start("name");
      const std::string name = parser.read_text_until_end("name");
      parser.expect_start("value");
      const std::string value = parser.read_text_until_end("value");
      parser.expect_end("attribute");
      if (!name.empty()) trial.trial().fields[name] = value;
    }
  } catch (const perfdmf::ParseError&) {
    // best effort only
  }
}

/// Extract GROUP="..." from a line tail; empty when absent.
std::string parse_group(const std::string& tail) {
  const std::size_t at = tail.find("GROUP=\"");
  if (at == std::string::npos) return "";
  const std::size_t start = at + 7;
  const std::size_t close = tail.find('"', start);
  if (close == std::string::npos) return "";
  return tail.substr(start, close - start);
}

}  // namespace

void TauDataSource::parse_file(const std::string& content,
                               const profile::ThreadId& thread,
                               profile::TrialData& trial) {
  const auto lines = util::split_lines(content);
  if (lines.empty()) throw perfdmf::ParseError("TAU: empty profile file");

  // Header: "<n> templated_functions[_MULTI_<METRIC>]"
  auto header = util::split_ws_limit(lines[0], 2);
  if (header.size() != 2) {
    throw perfdmf::ParseError("TAU: bad header line: " + lines[0]);
  }
  const std::int64_t n_functions =
      util::parse_int_or_throw(header[0], "TAU function count");
  std::string metric_name = "TIME";
  static constexpr std::string_view kMultiTag = "templated_functions_MULTI_";
  if (util::starts_with(header[1], kMultiTag)) {
    metric_name = header[1].substr(kMultiTag.size());
  } else if (!util::starts_with(header[1], "templated_functions")) {
    throw perfdmf::ParseError("TAU: unrecognized header: " + lines[0]);
  }
  const std::size_t metric = trial.intern_metric(metric_name);
  const std::size_t thread_index = trial.intern_thread(thread);

  std::size_t line_no = 1;
  // Optional column comment line; may carry TAU's metadata XML block
  // ("# Name Calls ... # <metadata><attribute>...</attribute></metadata>"),
  // which lands in the trial's flexible metadata fields.
  if (line_no < lines.size() && util::starts_with(lines[line_no], "#")) {
    const std::string& header_line = lines[line_no];
    const std::size_t meta_at = header_line.find("<metadata>");
    if (meta_at != std::string::npos) {
      parse_metadata_block(header_line.substr(meta_at), trial);
    }
    ++line_no;
  }

  for (std::int64_t f = 0; f < n_functions; ++f, ++line_no) {
    if (line_no >= lines.size()) {
      throw perfdmf::ParseError("TAU: file ends before all functions read");
    }
    const std::string& line = lines[line_no];
    std::string name;
    std::string tail = parse_quoted(line, name, "function name");
    auto fields = util::split_ws_limit(tail, 6);
    if (fields.size() < 5) {
      throw perfdmf::ParseError("TAU: short function line: " + line);
    }
    profile::IntervalDataPoint point;
    point.num_calls = util::parse_double_or_throw(fields[0], "calls");
    point.num_subrs = util::parse_double_or_throw(fields[1], "subrs");
    point.exclusive = util::parse_double_or_throw(fields[2], "exclusive");
    point.inclusive = util::parse_double_or_throw(fields[3], "inclusive");
    const std::string group = fields.size() >= 6 ? parse_group(fields[5]) : "";
    const std::size_t event = trial.intern_event(name, group);
    trial.set_interval_data(event, thread_index, metric, point);
  }

  // "<m> aggregates" (ignored) then optionally "<k> userevents".
  while (line_no < lines.size()) {
    const std::string line = std::string(util::trim(lines[line_no]));
    if (line.empty() || line[0] == '#') {
      ++line_no;
      continue;
    }
    auto parts = util::split_ws_limit(line, 2);
    if (parts.size() == 2 && parts[1] == "aggregates") {
      const std::int64_t n_aggregates =
          util::parse_int_or_throw(parts[0], "aggregate count");
      ++line_no;
      line_no += static_cast<std::size_t>(n_aggregates);  // not modeled
      continue;
    }
    if (parts.size() == 2 && parts[1] == "userevents") {
      const std::int64_t n_userevents =
          util::parse_int_or_throw(parts[0], "userevent count");
      ++line_no;
      if (line_no < lines.size() && util::starts_with(lines[line_no], "#")) {
        ++line_no;
      }
      for (std::int64_t u = 0; u < n_userevents; ++u, ++line_no) {
        if (line_no >= lines.size()) {
          throw perfdmf::ParseError("TAU: file ends before all userevents read");
        }
        std::string name;
        std::string tail = parse_quoted(lines[line_no], name, "userevent name");
        auto fields = util::split_ws(tail);
        if (fields.size() < 5) {
          throw perfdmf::ParseError("TAU: short userevent line: " + lines[line_no]);
        }
        profile::AtomicDataPoint point;
        point.sample_count = util::parse_double_or_throw(fields[0], "numevents");
        point.maximum = util::parse_double_or_throw(fields[1], "max");
        point.minimum = util::parse_double_or_throw(fields[2], "min");
        point.mean = util::parse_double_or_throw(fields[3], "mean");
        const double sum_squares =
            util::parse_double_or_throw(fields[4], "sumsqr");
        // TAU stores the sum of squares; convert to population std dev.
        if (point.sample_count > 0.0) {
          const double variance =
              sum_squares / point.sample_count - point.mean * point.mean;
          point.std_dev = variance > 0.0 ? std::sqrt(variance) : 0.0;
        }
        const std::size_t atomic = trial.intern_atomic_event(name);
        trial.set_atomic_data(atomic, thread_index, point);
      }
      continue;
    }
    throw perfdmf::ParseError("TAU: unexpected trailer line: " + line);
  }
}

TauDataSource::TauDataSource(std::filesystem::path directory, ScanFilter filter)
    : directory_(std::move(directory)), filter_(std::move(filter)) {}

profile::TrialData TauDataSource::load() {
  namespace fs = std::filesystem;
  profile::TrialData trial;
  trial.trial().name = directory_.filename().string();

  // Collect (path, thread) work items across flat and MULTI__ layouts.
  struct Item {
    fs::path path;
    profile::ThreadId thread;
  };
  std::vector<Item> items;
  auto collect_from = [&](const fs::path& dir) {
    for (const auto& path : scan_directory(dir, filter_)) {
      profile::ThreadId thread;
      if (parse_profile_filename(path.filename().string(), thread)) {
        items.push_back({path, thread});
      }
    }
  };
  bool found_multi = false;
  if (fs::is_directory(directory_)) {
    for (const auto& entry : fs::directory_iterator(directory_)) {
      if (entry.is_directory() &&
          util::starts_with(entry.path().filename().string(), "MULTI__")) {
        found_multi = true;
        collect_from(entry.path());
      }
    }
    if (!found_multi) collect_from(directory_);
  } else {
    throw perfdmf::IoError("TAU: not a directory: " + directory_.string());
  }
  if (items.empty()) {
    throw perfdmf::ParseError("TAU: no profile.N.C.T files under " +
                              directory_.string());
  }

  // Read file contents in parallel (I/O bound), parse serially
  // (TrialData interning is single-writer by design).
  std::vector<std::string> contents(items.size());
  util::default_pool().parallel_for(0, items.size(), [&](std::size_t i) {
    contents[i] = util::read_file(items[i].path);
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    parse_file(contents[i], items[i].thread, trial);
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

void write_tau_profiles(const profile::TrialData& trial,
                        const std::filesystem::path& directory) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const auto& metrics = trial.metrics();
  const bool multi = metrics.size() > 1;

  for (std::size_t m = 0; m < metrics.size(); ++m) {
    fs::path dir = directory;
    if (multi) {
      dir /= "MULTI__" + metrics[m].name;
      fs::create_directories(dir);
    }
    for (std::size_t t = 0; t < trial.threads().size(); ++t) {
      const profile::ThreadId& thread = trial.threads()[t];
      // Gather this thread+metric's events.
      std::string body;
      std::size_t n_functions = 0;
      for (std::size_t e = 0; e < trial.events().size(); ++e) {
        const profile::IntervalDataPoint* p = trial.interval_data(e, t, m);
        if (p == nullptr) continue;
        char line[512];
        std::snprintf(line, sizeof line, "%.17g %.17g %.17g %.17g 0 GROUP=\"%s\"\n",
                      p->num_calls, p->num_subrs, p->exclusive, p->inclusive,
                      trial.events()[e].group.c_str());
        body += "\"" + trial.events()[e].name + "\" " + line;
        ++n_functions;
      }
      std::string out = std::to_string(n_functions) +
                        " templated_functions_MULTI_" + metrics[m].name + "\n";
      out += "# Name Calls Subrs Excl Incl ProfileCalls #";
      if (!trial.trial().fields.empty()) {
        // TAU metadata block: trial attributes ride along in the header.
        xml::XmlWriter metadata(0);
        metadata.start_element("metadata");
        for (const auto& [name, value] : trial.trial().fields) {
          metadata.start_element("attribute");
          metadata.element_with_text("name", name);
          metadata.element_with_text("value", value);
          metadata.end_element();
        }
        metadata.end_element();
        out += " " + metadata.str();
      }
      out += "\n";
      out += body;
      out += "0 aggregates\n";
      // User events only in the first metric file (they are metric-free).
      std::string user_body;
      std::size_t n_userevents = 0;
      if (m == 0) {
        for (std::size_t a = 0; a < trial.atomic_events().size(); ++a) {
          const profile::AtomicDataPoint* p = trial.atomic_data(a, t);
          if (p == nullptr) continue;
          const double sum_squares =
              p->sample_count * (p->std_dev * p->std_dev + p->mean * p->mean);
          char line[256];
          std::snprintf(line, sizeof line, "%.17g %.17g %.17g %.17g %.17g\n",
                        p->sample_count, p->maximum, p->minimum, p->mean,
                        sum_squares);
          user_body += "\"" + trial.atomic_events()[a].name + "\" " + line;
          ++n_userevents;
        }
      }
      out += std::to_string(n_userevents) + " userevents\n";
      if (n_userevents > 0) {
        out += "# eventname numevents max min mean sumsqr\n";
        out += user_body;
      }
      char filename[64];
      std::snprintf(filename, sizeof filename, "profile.%d.%d.%d", thread.node,
                    thread.context, thread.thread);
      // Atomic (tmp + rename) so a reader scanning the directory never
      // sees a half-written profile; no fsync — exported profiles are
      // regeneratable bulk output.
      util::write_file_atomic(dir / filename, out, /*sync=*/false);
    }
  }
}

}  // namespace perfdmf::io
