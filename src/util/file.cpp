#include "util/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>

#include "util/error.h"
#include "util/failpoint.h"

namespace perfdmf::util {

namespace {

/// RAII fd so error paths can't leak descriptors.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// Write all of `content` to `fd`, retrying partial writes; throws
/// IoError (with errno) when the kernel refuses bytes. The failpoint
/// lets tests inject a torn write followed by a process crash.
void write_fd_all(int fd, std::string_view content,
                  const std::filesystem::path& path, const char* site) {
  if (auto fp = failpoint::evaluate(site)) {
    // Injected torn write: persist a prefix, then die like a crash.
    const auto keep = std::min(content.size(), static_cast<std::size_t>(
                                                   std::max(fp->arg, 0)));
    std::size_t done = 0;
    while (done < keep) {
      const ::ssize_t n = ::write(fd, content.data() + done, keep - done);
      if (n <= 0) break;
      done += static_cast<std::size_t>(n);
    }
    ::_exit(failpoint::kCrashExitCode);
  }
  std::size_t done = 0;
  while (done < content.size()) {
    const ::ssize_t n = ::write(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("write failed: " + path.string() + ": " +
                        std::strerror(errno),
                    errno);
    }
    if (n == 0) {
      throw IoError("short write: " + path.string());
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_fd(int fd, const std::filesystem::path& path) {
  if (::fsync(fd) != 0) {
    throw IoError("fsync failed: " + path.string() + ": " + std::strerror(errno),
                  errno);
  }
}

void write_file_fd(const std::filesystem::path& path, std::string_view content,
                   bool sync) {
  Fd out;
  out.fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (out.fd < 0) {
    throw IoError("cannot open file for writing: " + path.string() + ": " +
                      std::strerror(errno),
                  errno);
  }
  write_fd_all(out.fd, content, path, "util.write_file");
  if (sync) fsync_fd(out.fd, path);
}

}  // namespace

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file for reading: " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw IoError("read failed: " + path.string());
  return std::move(out).str();
}

void write_file(const std::filesystem::path& path, std::string_view content) {
  write_file_fd(path, content, /*sync=*/false);
}

void write_file_durable(const std::filesystem::path& path,
                        std::string_view content) {
  write_file_fd(path, content, /*sync=*/true);
}

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content, bool sync) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  write_file_fd(tmp, content, sync);
  failpoint::evaluate("util.rename");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw IoError("rename " + tmp.string() + " -> " + path.string() +
                      " failed: " + ec.message(),
                  ec.value());
  }
  if (sync) fsync_dir(path.parent_path());
}

void fsync_dir(const std::filesystem::path& dir) {
  const std::filesystem::path target = dir.empty() ? "." : dir;
  Fd d;
  d.fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (d.fd < 0) return;   // e.g. permissions; rename durability is best effort
  ::fsync(d.fd);          // some filesystems reject directory fsync: ignore
}

void append_file(const std::filesystem::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw IoError("cannot open file for appending: " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) throw IoError("append failed: " + path.string());
}

std::vector<std::filesystem::path> list_files(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) throw IoError("not a directory: " + dir.string());
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::filesystem::path make_temp_dir(const std::string& prefix) {
  namespace fs = std::filesystem;
  static std::mt19937_64 rng{std::random_device{}()};
  const fs::path root = fs::temp_directory_path();
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate = root / (prefix + "-" + std::to_string(rng()));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) return candidate;
  }
  throw IoError("could not create temporary directory under " + root.string());
}

ScopedTempDir::ScopedTempDir(const std::string& prefix)
    : path_(make_temp_dir(prefix)) {}

ScopedTempDir::~ScopedTempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort in a destructor
  }
}

ScopedTempDir::ScopedTempDir(ScopedTempDir&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

}  // namespace perfdmf::util
