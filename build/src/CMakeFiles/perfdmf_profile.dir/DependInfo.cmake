
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/callpath.cpp" "src/CMakeFiles/perfdmf_profile.dir/profile/callpath.cpp.o" "gcc" "src/CMakeFiles/perfdmf_profile.dir/profile/callpath.cpp.o.d"
  "/root/repo/src/profile/data_model.cpp" "src/CMakeFiles/perfdmf_profile.dir/profile/data_model.cpp.o" "gcc" "src/CMakeFiles/perfdmf_profile.dir/profile/data_model.cpp.o.d"
  "/root/repo/src/profile/derived.cpp" "src/CMakeFiles/perfdmf_profile.dir/profile/derived.cpp.o" "gcc" "src/CMakeFiles/perfdmf_profile.dir/profile/derived.cpp.o.d"
  "/root/repo/src/profile/summary.cpp" "src/CMakeFiles/perfdmf_profile.dir/profile/summary.cpp.o" "gcc" "src/CMakeFiles/perfdmf_profile.dir/profile/summary.cpp.o.d"
  "/root/repo/src/profile/trial_data.cpp" "src/CMakeFiles/perfdmf_profile.dir/profile/trial_data.cpp.o" "gcc" "src/CMakeFiles/perfdmf_profile.dir/profile/trial_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/perfdmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
