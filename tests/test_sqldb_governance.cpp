// Resource governance: statement deadlines, cooperative cancellation,
// memory budgets with degrade-to-fallback, admission control, and the
// degraded read-only mode entered when the disk fills.
//
// The contract under test (DESIGN.md "Resource governance"):
//
//   - a statement that blows its deadline or is cancelled from another
//     thread unwinds promptly with a *typed* DbError, its effects rolled
//     back, and the connection stays usable;
//   - an operator that crosses the soft memory budget degrades to the
//     PR 4 fallback strategy and produces identical results; crossing
//     the hard cap fails the statement cleanly (kMemBudget), never the
//     process;
//   - admission control sheds work beyond the configured concurrency
//     with kOverloaded instead of queueing without bound;
//   - persistent ENOSPC turns the database read-only: reads keep
//     serving, writes fail fast, and recovery (probe) restores writes
//     with zero committed transactions lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/connection.h"
#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/file.h"

using namespace perfdmf::sqldb;
using perfdmf::DbError;
namespace u = perfdmf::util;
namespace fp = perfdmf::util::failpoint;

namespace {

constexpr int kEnospc = 28;  // ENOSPC, spelled out: the injected errno

std::uint64_t counter_value(const char* name) {
  return perfdmf::telemetry::MetricsRegistry::instance().counter(name).value();
}

// With -DPERFDMF_TELEMETRY=OFF counters freeze at zero (the kill switch
// compiles recording to nothing), so delta assertions only hold when
// telemetry is compiled in. The behavior under test still runs either way.
void expect_counter_bumped(const char* name, std::uint64_t before) {
  if (perfdmf::telemetry::compiled_in()) {
    EXPECT_GT(counter_value(name), before) << name;
  }
}

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Two tables whose non-equi join is quadratic: big enough that a
/// 10 ms deadline interrupts it mid-flight on any machine.
void load_join_tables(Connection& conn, int rows) {
  conn.execute_update("CREATE TABLE lhs (id INTEGER PRIMARY KEY, v INTEGER)");
  conn.execute_update("CREATE TABLE rhs (id INTEGER PRIMARY KEY, v INTEGER)");
  for (const char* table : {"lhs", "rhs"}) {
    auto stmt = conn.prepare(std::string("INSERT INTO ") + table +
                             " (v) VALUES (?)");
    conn.begin();
    for (int i = 0; i < rows; ++i) {
      stmt.set_int(1, i);
      stmt.execute_update();
    }
    conn.commit();
  }
}

constexpr const char* kSlowJoin =
    "SELECT COUNT(*) FROM lhs a JOIN rhs b ON a.v < b.v";

/// EXPLAIN output flattened to one newline-joined string.
std::string explain(Connection& conn, const std::string& sql) {
  auto rs = conn.execute("EXPLAIN " + sql);
  std::string out;
  while (rs.next()) out += rs.get_string(1) + "\n";
  return out;
}

std::vector<std::vector<std::string>> dump(Connection& conn,
                                           const std::string& sql) {
  auto rs = conn.execute(sql);
  std::vector<std::vector<std::string>> rows;
  while (rs.next()) {
    std::vector<std::string> row;
    for (std::size_t c = 1; c <= rs.column_count(); ++c) {
      row.push_back(rs.is_null(c) ? "<null>" : rs.get_string(c));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::int64_t scalar(Connection& conn, const std::string& sql) {
  auto rs = conn.execute(sql);
  EXPECT_TRUE(rs.next()) << sql;
  return rs.get_int(1);
}

// Failpoints and admission configs are process/database-global state;
// never leak one into the next test.
class Governance : public ::testing::Test {
 protected:
  void TearDown() override { fp::clear_all(); }
};

}  // namespace

// ----------------------------------------------- deadlines and cancel

TEST_F(Governance, StatementTimeoutKillsLongJoinPromptly) {
  Connection conn;
  load_join_tables(conn, 3000);  // 9M nested-loop iterations

  conn.set_statement_timeout_ms(10);
  const auto start = std::chrono::steady_clock::now();
  try {
    conn.execute(kSlowJoin);
    FAIL() << "join finished under a 10 ms deadline";
  } catch (const DbError& e) {
    EXPECT_EQ(e.kind(), DbError::Kind::kTimeout) << e.what();
  }
  // "Promptly": row-batch polling fires within a stride of the deadline,
  // nowhere near the seconds the full join takes.
  EXPECT_LT(elapsed_ms(start), 2000);

  // The connection survives its killed statement.
  conn.set_statement_timeout_ms(0);
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM lhs"), 3000);
}

TEST_F(Governance, KilledDmlRollsBackCompletely) {
  Connection conn;
  load_join_tables(conn, 3000);

  const std::int64_t sum_before = scalar(conn, "SELECT SUM(v) FROM lhs");
  // A pending cancel is delivered at the UPDATE's row-loop poll — well
  // past the first rows, so a non-transactional engine would leave a
  // partially updated table behind.
  conn.cancel();
  try {
    conn.execute_update("UPDATE lhs SET v = v + 1000000");
    FAIL() << "UPDATE outran a pending cancel over 3000 rows";
  } catch (const DbError& e) {
    EXPECT_EQ(e.kind(), DbError::Kind::kCancelled) << e.what();
  }
  // No partial update survives: the statement rolled back whole.
  EXPECT_EQ(scalar(conn, "SELECT SUM(v) FROM lhs"), sum_before);
}

TEST_F(Governance, CancelFromAnotherThreadUnwindsAndConnectionSurvives) {
  Connection conn;
  load_join_tables(conn, 3000);
  const std::uint64_t cancellations_before = counter_value("gov.cancellations");

  std::thread killer([&conn] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    conn.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  try {
    conn.execute(kSlowJoin);
    FAIL() << "join outran the cancel";
  } catch (const DbError& e) {
    EXPECT_EQ(e.kind(), DbError::Kind::kCancelled) << e.what();
  }
  killer.join();
  EXPECT_LT(elapsed_ms(start), 2000);
  expect_counter_bumped("gov.cancellations", cancellations_before);

  // Delivery consumed the flag: the next statement runs normally.
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM rhs"), 3000);
}

TEST_F(Governance, PendingCancelKillsTheNextStatement) {
  Connection conn;
  load_join_tables(conn, 3000);

  conn.cancel();  // no statement in flight: the next one dies
  EXPECT_THROW(conn.execute(kSlowJoin), DbError);
  // ...and only that one; the flag was consumed.
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM lhs"), 3000);
}

TEST_F(Governance, ClearCancelWithdrawsAnUndeliveredCancel) {
  Connection conn;
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  conn.execute_update("INSERT INTO t (v) VALUES (1)");
  conn.cancel();
  conn.clear_cancel();
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);
}

TEST_F(Governance, KilledQueryIsTracedWithItsOutcome) {
  Connection conn;
  load_join_tables(conn, 3000);
  conn.set_statement_timeout_ms(10);
  EXPECT_THROW(conn.execute(kSlowJoin), DbError);
  conn.set_statement_timeout_ms(0);

  // Killed statements reach PERFDMF_SLOW_QUERIES regardless of the slow
  // threshold, tagged with how they ended. The ring is empty when the
  // telemetry kill switch compiles recording out.
  if (perfdmf::telemetry::compiled_in()) {
    EXPECT_GE(scalar(conn,
                     "SELECT COUNT(*) FROM PERFDMF_SLOW_QUERIES "
                     "WHERE outcome = 'timed_out'"),
              1);
  }
}

// --------------------------------------------------- memory budgets

TEST_F(Governance, MemBudgetDegradesOperatorsWithIdenticalResults) {
  Connection conn;
  conn.execute_update("CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)");
  conn.execute_update(
      "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept INTEGER, v INTEGER)");
  {
    auto d = conn.prepare("INSERT INTO dept (id, name) VALUES (?, ?)");
    auto e = conn.prepare("INSERT INTO emp (dept, v) VALUES (?, ?)");
    conn.begin();
    for (int i = 0; i < 40; ++i) {
      d.set_int(1, i);
      d.set_string(2, "dept-" + std::to_string(i));
      d.execute_update();
    }
    for (int i = 0; i < 600; ++i) {
      e.set_int(1, i % 40);
      e.set_int(2, i);
      e.execute_update();
    }
    conn.commit();
  }
  const std::string q =
      "SELECT d.name, COUNT(*), SUM(e.v) FROM emp e JOIN dept d "
      "ON e.dept = d.id GROUP BY d.name ORDER BY 1";

  const auto unbudgeted = dump(conn, q);
  ASSERT_EQ(unbudgeted.size(), 40u);

  const std::uint64_t degraded_before = counter_value("gov.mem_degraded");
  conn.set_statement_mem_bytes(512);  // far below the hash-table estimates
  const auto budgeted = dump(conn, q);
  EXPECT_EQ(budgeted, unbudgeted);
  expect_counter_bumped("gov.mem_degraded", degraded_before);

  // The degrade decisions are EXPLAIN-visible.
  const std::string plan = explain(conn, q);
  EXPECT_NE(plan.find("mem-degraded"), std::string::npos) << plan;
  conn.set_statement_mem_bytes(0);
}

TEST_F(Governance, TopKDegradesToFullSortBetweenSoftAndHardBudget) {
  Connection conn;
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  {
    auto stmt = conn.prepare("INSERT INTO t (v) VALUES (?)");
    conn.begin();
    for (int i = 0; i < 500; ++i) {
      stmt.set_int(1, (i * 7919) % 500);
      stmt.execute_update();
    }
    conn.commit();
  }
  const std::string q = "SELECT v FROM t ORDER BY v DESC LIMIT 10";
  const auto unbudgeted = dump(conn, q);

  // Top-K pre-charges its heap: ~10 * 2 slots * 48 bytes = 960, between
  // a 512-byte soft budget and the 2048-byte hard cap, so it degrades
  // to the full sort instead of erroring.
  conn.set_statement_mem_bytes(512);
  EXPECT_EQ(dump(conn, q), unbudgeted);
  const std::string plan = explain(conn, q);
  EXPECT_NE(plan.find("top-k mem-degraded"), std::string::npos) << plan;
  conn.set_statement_mem_bytes(0);
}

TEST_F(Governance, HardMemoryCapFailsTheStatementCleanly) {
  Connection conn;
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  {
    auto stmt = conn.prepare("INSERT INTO t (v) VALUES (?)");
    conn.begin();
    for (int i = 0; i < 3000; ++i) {
      stmt.set_int(1, i);
      stmt.execute_update();
    }
    conn.commit();
  }
  // A 2000-entry Top-K heap estimates ~192 KB, past the 1 KB hard cap
  // (4x the 256-byte soft budget) in one charge: clean typed failure.
  conn.set_statement_mem_bytes(256);
  try {
    conn.execute("SELECT v FROM t ORDER BY v DESC LIMIT 2000");
    FAIL() << "statement ignored its hard memory cap";
  } catch (const DbError& e) {
    EXPECT_EQ(e.kind(), DbError::Kind::kMemBudget) << e.what();
  }
  // The statement died, not the connection or the process.
  conn.set_statement_mem_bytes(0);
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 3000);
}

// ------------------------------------------------- admission control

TEST_F(Governance, AdmissionShedsImmediatelyWhenQueueDisabled) {
  auto shared = std::make_shared<Database>();
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  writer.execute_update("INSERT INTO t (v) VALUES (1)");
  shared->governor().configure({/*max_concurrent=*/1, /*max_queue=*/0,
                                /*queue_timeout_ms=*/1000});
  const std::uint64_t rejected_before = counter_value("gov.admission_rejected");

  writer.begin();  // the transaction unit holds the only slot
  std::optional<DbError::Kind> seen;
  std::thread reader([&] {
    Connection conn(shared);
    try {
      conn.execute("SELECT COUNT(*) FROM t");
    } catch (const DbError& e) {
      seen = e.kind();
    }
  });
  reader.join();
  writer.commit();

  ASSERT_TRUE(seen.has_value()) << "statement was admitted past the bound";
  EXPECT_EQ(*seen, DbError::Kind::kOverloaded);
  expect_counter_bumped("gov.admission_rejected", rejected_before);

  // With the slot free again, the same work is admitted.
  Connection conn(shared);
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);
}

TEST_F(Governance, QueuedStatementIsShedAtTheQueueDeadline) {
  auto shared = std::make_shared<Database>();
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  shared->governor().configure({1, 8, /*queue_timeout_ms=*/40});

  writer.begin();
  std::optional<DbError::Kind> seen;
  std::int64_t waited = 0;
  std::thread reader([&] {
    Connection conn(shared);
    const auto start = std::chrono::steady_clock::now();
    try {
      conn.execute("SELECT COUNT(*) FROM t");
    } catch (const DbError& e) {
      seen = e.kind();
      waited = elapsed_ms(start);
    }
  });
  reader.join();
  writer.commit();

  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, DbError::Kind::kOverloaded);
  EXPECT_GE(waited, 35);  // it genuinely queued before being shed
  EXPECT_LT(waited, 2000);
}

TEST_F(Governance, QueuedStatementStillObservesItsOwnDeadline) {
  auto shared = std::make_shared<Database>();
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  shared->governor().configure({1, 8, /*queue_timeout_ms=*/10000});

  writer.begin();
  std::optional<DbError::Kind> seen;
  std::thread reader([&] {
    Connection conn(shared);
    conn.set_statement_timeout_ms(30);
    try {
      conn.execute("SELECT COUNT(*) FROM t");
    } catch (const DbError& e) {
      seen = e.kind();
    }
  });
  reader.join();
  writer.commit();

  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, DbError::Kind::kTimeout)
      << "a queued statement's own 30 ms deadline must beat the 10 s "
         "queue timeout";
}

TEST_F(Governance, AdmissionQueueDrainsInFifoOrder) {
  auto shared = std::make_shared<Database>();
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  shared->governor().configure({1, 16, /*queue_timeout_ms=*/10000});

  writer.begin();  // everyone below queues behind this transaction
  std::mutex order_mutex;
  std::vector<int> completion_order;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      Connection conn(shared);
      conn.execute("SELECT COUNT(*) FROM t");
      std::lock_guard<std::mutex> lock(order_mutex);
      completion_order.push_back(i);
    });
    // Arrival order is the queue order: wait until thread i is queued
    // before launching thread i+1.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (shared->governor().queued() < i + 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(shared->governor().queued(), i + 1) << "thread never queued";
  }
  writer.commit();
  for (auto& t : threads) t.join();

  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2}));
}

// ------------------------------------------------ lock-manager guards

TEST_F(Governance, ExpiredDeadlineOnLockWaitDeliversTimeoutPromptly) {
  // Regression: LockManager::wait_slice used to clamp the remaining
  // deadline straight into try_lock_for, so a deadline that expired
  // before (or during) the lock wait produced a zero-length wait that
  // spun without ever delivering kTimeout. The slice is now floored at
  // 1 ms and an already-expired deadline throws via check_now() before
  // sleeping again.
  auto shared = std::make_shared<Database>();
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");

  writer.begin();  // this thread holds the writer mutex across the test
  std::optional<DbError::Kind> seen;
  std::int64_t waited = 0;
  std::thread blocked([&] {
    Connection conn(shared);
    conn.set_statement_timeout_ms(1);  // expired by the time the lock spins
    const auto start = std::chrono::steady_clock::now();
    try {
      conn.execute_update("INSERT INTO t (v) VALUES (1)");
    } catch (const DbError& e) {
      seen = e.kind();
      waited = elapsed_ms(start);
    }
  });
  blocked.join();  // must return without the writer ever committing
  writer.commit();

  ASSERT_TRUE(seen.has_value()) << "DML outran an open writer transaction";
  EXPECT_EQ(*seen, DbError::Kind::kTimeout);
  EXPECT_LT(waited, 2000);
  // The rejected statement left nothing behind.
  EXPECT_EQ(scalar(writer, "SELECT COUNT(*) FROM t"), 0);
}

TEST_F(Governance, ReleasingAForeignTransactionLockIsRejectedTyped) {
  // Regression: release_transaction() used to unlock unconditionally;
  // COMMIT/ROLLBACK issued from a thread that never ran BEGIN unlocked a
  // mutex it did not own — undefined behaviour. The mismatch is now
  // detected up front and surfaces as a typed DbError, leaving the
  // owner's transaction intact.
  auto shared = std::make_shared<Database>();
  Connection conn(shared);
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");

  // No transaction anywhere: releasing is a caller bug, not UB.
  EXPECT_THROW(shared->locks().release_transaction(), DbError);

  conn.begin();
  conn.execute_update("INSERT INTO t (v) VALUES (1)");
  std::optional<std::string> message;
  std::thread foreign([&] {
    try {
      shared->locks().release_transaction();
    } catch (const DbError& e) {
      message = e.what();
    }
  });
  foreign.join();
  ASSERT_TRUE(message.has_value()) << "foreign release was not rejected";
  EXPECT_NE(message->find("not owned by this thread"), std::string::npos)
      << *message;

  // The guard rejected the release without touching the lock: the owner
  // still holds its transaction and can commit it.
  EXPECT_TRUE(shared->locks().owned_by_this_thread());
  conn.commit();
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);
}

// -------------------------------------- degraded read-only (ENOSPC)

TEST_F(Governance, StickyEnospcEntersReadOnlyAndManualProbeRecovers) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  const std::uint64_t entered_before = counter_value("gov.readonly_entered");
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    conn.execute_update("INSERT INTO t (v) VALUES (1)");  // pre-fault commit

    // "The disk is full": every WAL append and every recovery probe
    // fails with ENOSPC until cleared.
    fp::enable_every("wal.append", perfdmf::util::FailAction::kError, 1,
                     kEnospc);
    fp::enable_every("wal.probe", perfdmf::util::FailAction::kError, 1,
                     kEnospc);

    try {
      conn.execute_update("INSERT INTO t (v) VALUES (2)");
      FAIL() << "write succeeded on a full disk";
    } catch (const DbError& e) {
      EXPECT_EQ(e.kind(), DbError::Kind::kReadOnly) << e.what();
    }
    EXPECT_TRUE(conn.database().read_only());
    EXPECT_FALSE(conn.database().read_only_reason().empty());
    expect_counter_bumped("gov.readonly_entered", entered_before);

    // Reads keep serving — and the failed insert left no partial state.
    EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);

    // Further writes fail fast, typed.
    const auto start = std::chrono::steady_clock::now();
    try {
      conn.execute_update("INSERT INTO t (v) VALUES (3)");
      FAIL() << "write admitted while degraded";
    } catch (const DbError& e) {
      EXPECT_EQ(e.kind(), DbError::Kind::kReadOnly) << e.what();
    }
    EXPECT_LT(elapsed_ms(start), 1000);

    // Space comes back: the probe re-enables writes.
    fp::clear_all();
    EXPECT_TRUE(conn.database().try_exit_read_only());
    EXPECT_FALSE(conn.database().read_only());
    conn.execute_update("INSERT INTO t (v) VALUES (4)");
  }
  // Recovery holds exactly the committed rows: nothing lost, nothing
  // from the rejected writes.
  Connection conn(db_dir);
  const auto rows = dump(conn, "SELECT v FROM t ORDER BY v");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "1");
  EXPECT_EQ(rows[1][0], "4");
}

TEST_F(Governance, ConcurrentReadsKeepServingWhileDegraded) {
  u::ScopedTempDir dir;
  auto shared = std::make_shared<Database>(dir.path() / "db");
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  writer.execute_update("INSERT INTO t (v) VALUES (1)");

  fp::enable_every("wal.append", perfdmf::util::FailAction::kError, 1, kEnospc);
  fp::enable_every("wal.probe", perfdmf::util::FailAction::kError, 1, kEnospc);
  EXPECT_THROW(writer.execute_update("INSERT INTO t (v) VALUES (2)"), DbError);
  ASSERT_TRUE(shared->read_only());

  std::atomic<int> read_failures{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      Connection conn(shared);
      for (int j = 0; j < 50; ++j) {
        auto rs = conn.execute("SELECT COUNT(*) FROM t");
        if (!rs.next() || rs.get_int(1) != 1) read_failures.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_failures.load(), 0);

  fp::clear_all();
  EXPECT_TRUE(shared->try_exit_read_only());
  writer.execute_update("INSERT INTO t (v) VALUES (5)");
}

TEST_F(Governance, AutomaticProbeExitsReadOnlyOnceSpaceReturns) {
  u::ScopedTempDir dir;
  Connection conn(dir.path() / "db");
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");

  fp::enable_every("wal.append", perfdmf::util::FailAction::kError, 1, kEnospc);
  fp::enable_every("wal.probe", perfdmf::util::FailAction::kError, 1, kEnospc);
  EXPECT_THROW(conn.execute_update("INSERT INTO t (v) VALUES (1)"), DbError);
  EXPECT_THROW(conn.execute_update("INSERT INTO t (v) VALUES (2)"), DbError);
  ASSERT_TRUE(conn.database().read_only());

  // Space returns; after the probe interval the next rejected write's
  // automatic probe flips the database back — no manual intervention.
  fp::clear_all();
  const std::uint64_t exited_before = counter_value("gov.readonly_exited");
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  conn.execute_update("INSERT INTO t (v) VALUES (3)");
  EXPECT_FALSE(conn.database().read_only());
  expect_counter_bumped("gov.readonly_exited", exited_before);
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);
}

TEST_F(Governance, EnospcDuringCheckpointDegradesWithoutDataLoss) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    conn.execute_update("INSERT INTO t (v) VALUES (1)");

    fp::enable_every("snapshot.write", perfdmf::util::FailAction::kError, 1,
                     kEnospc);
    fp::enable_every("wal.probe", perfdmf::util::FailAction::kError, 1,
                     kEnospc);
    try {
      conn.checkpoint();
      FAIL() << "checkpoint succeeded on a full disk";
    } catch (const DbError& e) {
      EXPECT_EQ(e.kind(), DbError::Kind::kReadOnly) << e.what();
    }
    EXPECT_TRUE(conn.database().read_only());
    EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);

    fp::clear_all();
    EXPECT_TRUE(conn.database().try_exit_read_only());
    conn.checkpoint();  // and now it goes through
    conn.execute_update("INSERT INTO t (v) VALUES (2)");
  }
  Connection conn(db_dir);
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 2);
}

// A transient ENOSPC (a burst that clears while the write retries) is
// ridden out by the bounded backoff without degrading anything.
TEST_F(Governance, TransientEnospcIsRetriedNotDegraded) {
  u::ScopedTempDir dir;
  Connection conn(dir.path() / "db");
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");

  fp::enable("wal.append", perfdmf::util::FailAction::kError, 1, kEnospc);
  conn.execute_update("INSERT INTO t (v) VALUES (1)");  // retry absorbs it
  EXPECT_FALSE(conn.database().read_only());
  EXPECT_EQ(scalar(conn, "SELECT COUNT(*) FROM t"), 1);
}

// ------------------------------------------------- failpoint modes

using FailpointModes = Governance;

TEST_F(FailpointModes, MalformedSpecWarnsAndReturnsFalse) {
  EXPECT_FALSE(fp::arm_from_spec("no-equals-sign"));
  EXPECT_FALSE(fp::arm_from_spec("=error"));
  EXPECT_FALSE(fp::arm_from_spec("wal.append=frobnicate"));
  EXPECT_FALSE(fp::arm_from_spec("wal.append=error:not-a-number"));
  EXPECT_FALSE(fp::arm_from_spec("wal.append=error:every=0"));
  EXPECT_FALSE(fp::arm_from_spec("wal.append=error:1:2:3"));
  EXPECT_TRUE(fp::list_armed().empty());

  EXPECT_TRUE(fp::arm_from_spec("wal.append=error:every=1:arg=28"));
  EXPECT_TRUE(fp::arm_from_spec("wal.sync=delay:p=0.5:arg=2"));
  EXPECT_TRUE(fp::arm_from_spec("snapshot.install=abort"));
  const auto armed = fp::list_armed();
  ASSERT_EQ(armed.size(), 3u);
  // Sorted by site name; each line round-trips mode and argument.
  EXPECT_EQ(armed[0], "snapshot.install=abort:1:arg=0");
  EXPECT_EQ(armed[1], "wal.append=error:every=1:arg=28");
  EXPECT_EQ(armed[2], "wal.sync=delay:p=0.5:arg=2");
}

TEST_F(FailpointModes, EveryNFiresOnCadenceAndStaysArmed) {
  fp::enable_every("test.site", perfdmf::util::FailAction::kError, 3, 0);
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i) {
    if (fp::hit("test.site")) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
  EXPECT_EQ(fp::list_armed().size(), 1u);  // every-N never disarms itself
}

TEST_F(FailpointModes, OneShotDisarmsAfterFiring) {
  fp::enable("test.site", perfdmf::util::FailAction::kError, 2, 0);
  EXPECT_FALSE(fp::hit("test.site").has_value());
  EXPECT_TRUE(fp::hit("test.site").has_value());
  EXPECT_FALSE(fp::hit("test.site").has_value());
  EXPECT_TRUE(fp::list_armed().empty());
}

TEST_F(FailpointModes, ProbabilityStreamIsDeterministicPerSeed) {
  const auto draw = [](std::uint64_t seed) {
    fp::clear_all();
    fp::set_seed(seed);
    fp::enable_probability("test.site", perfdmf::util::FailAction::kError, 0.5);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(fp::hit("test.site").has_value());
    }
    return pattern;
  };
  const auto a = draw(42);
  const auto b = draw(42);
  const auto c = draw(43);
  EXPECT_EQ(a, b) << "same seed must replay the same schedule";
  EXPECT_NE(a, c) << "different seeds must diverge";
  const int fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 8) << "p=0.5 over 64 draws";
  EXPECT_LT(fires, 56);

  fp::clear_all();
  fp::enable_probability("test.site", perfdmf::util::FailAction::kError, 0.0);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(fp::hit("test.site").has_value());
  fp::enable_probability("test.site", perfdmf::util::FailAction::kError, 1.0);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(fp::hit("test.site").has_value());
}
