// Derived metrics (paper §3.2/§4): analysis tools compute new metrics
// from measured ones — e.g. FLOPs/sec = PAPI_FP_OPS / WALLCLOCK — and
// save them with the profile. The combiner runs per (event, thread) over
// the two operand points; events/threads missing either operand get no
// derived point.
#pragma once

#include <functional>
#include <string>

#include "profile/trial_data.h"

namespace perfdmf::profile {

/// Pointwise combination of two metrics into a new derived metric.
/// Returns the new metric's dense index. Throws InvalidArgument when an
/// operand metric does not exist or `name` already exists.
using PointCombiner =
    std::function<IntervalDataPoint(const IntervalDataPoint& a,
                                    const IntervalDataPoint& b)>;

std::size_t derive_metric(TrialData& trial, const std::string& name,
                          const std::string& metric_a, const std::string& metric_b,
                          const PointCombiner& combine);

/// Convenience: a / b on inclusive and exclusive (0 when denominator is 0);
/// calls/subrs are copied from operand a.
std::size_t derive_ratio(TrialData& trial, const std::string& name,
                         const std::string& numerator,
                         const std::string& denominator);

/// Convenience: a scaled by a constant factor (unit conversions).
std::size_t derive_scaled(TrialData& trial, const std::string& name,
                          const std::string& metric, double factor);

}  // namespace perfdmf::profile
