// Metric correlation analysis — the Ahn & Vetter style study the paper
// reproduces with PerfExplorer (§5.3): relate hardware counter metrics to
// each other across threads to expose, e.g., interesting floating point
// operation behaviour.
#pragma once

#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::analysis {

struct CorrelationMatrix {
  std::vector<std::string> metric_names;
  /// Row-major (metrics x metrics) Pearson coefficients across threads of
  /// the per-thread total exclusive value of each metric.
  std::vector<double> values;

  double at(std::size_t i, std::size_t j) const {
    return values[i * metric_names.size() + j];
  }
};

/// Correlate per-thread totals of every metric (optionally restricted to
/// one event by name; empty = all events summed).
CorrelationMatrix correlate_metrics(const profile::TrialData& trial,
                                    const std::string& event_name = "");

/// Pairs with |r| >= threshold, strongest first (excluding the diagonal).
struct CorrelatedPair {
  std::string metric_a;
  std::string metric_b;
  double r;
};
std::vector<CorrelatedPair> strong_correlations(const CorrelationMatrix& matrix,
                                                double threshold = 0.8);

std::string format_correlation_matrix(const CorrelationMatrix& matrix);

}  // namespace perfdmf::analysis
