#include "sqldb/system_tables.h"

#include <cctype>
#include <chrono>

#include "sqldb/database.h"
#include "sqldb/lock_manager.h"
#include "sqldb/statement_registry.h"
#include "sqldb/wal.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace perfdmf::sqldb {

namespace {

std::string upper(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

ColumnDef column(std::string name, ValueType type) {
  ColumnDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

TableSchema make_metrics_schema() {
  TableSchema schema{std::string(kMetricsTableName)};
  schema.add_column(column("name", ValueType::kText));
  schema.add_column(column("kind", ValueType::kText));
  schema.add_column(column("value", ValueType::kReal));
  // Histogram-only fields; NULL for counters and gauges.
  schema.add_column(column("count", ValueType::kInt));
  schema.add_column(column("sum", ValueType::kReal));
  schema.add_column(column("p50", ValueType::kReal));
  schema.add_column(column("p95", ValueType::kReal));
  schema.add_column(column("p99", ValueType::kReal));
  return schema;
}

TableSchema make_slow_queries_schema() {
  TableSchema schema{std::string(kSlowQueriesTableName)};
  schema.add_column(column("id", ValueType::kInt));
  schema.add_column(column("started_at", ValueType::kText));
  schema.add_column(column("thread", ValueType::kText));
  schema.add_column(column("sql", ValueType::kText));
  schema.add_column(column("plan", ValueType::kText));
  schema.add_column(column("total_ms", ValueType::kReal));
  schema.add_column(column("outcome", ValueType::kText));
  schema.add_column(column("parse_ms", ValueType::kReal));
  schema.add_column(column("plan_ms", ValueType::kReal));
  schema.add_column(column("admission_ms", ValueType::kReal));
  schema.add_column(column("lock_wait_ms", ValueType::kReal));
  schema.add_column(column("execute_ms", ValueType::kReal));
  schema.add_column(column("fsync_ms", ValueType::kReal));
  return schema;
}

TableSchema make_statements_schema() {
  TableSchema schema{std::string(kStatementsTableName)};
  schema.add_column(column("id", ValueType::kInt));
  schema.add_column(column("thread", ValueType::kText));
  schema.add_column(column("sql", ValueType::kText));
  schema.add_column(column("phase", ValueType::kText));
  schema.add_column(column("elapsed_ms", ValueType::kReal));
  // NULL when the statement runs without a deadline.
  schema.add_column(column("deadline_remaining_ms", ValueType::kReal));
  schema.add_column(column("rows", ValueType::kInt));
  schema.add_column(column("cancel_requested", ValueType::kInt));
  return schema;
}

TableSchema make_transactions_schema() {
  TableSchema schema{std::string(kTransactionsTableName)};
  schema.add_column(column("state", ValueType::kText));
  schema.add_column(column("token", ValueType::kInt));
  // The transaction's MVCC snapshot bounds: it reads versions committed
  // at or before read_view_ts; commit_ts is the database-global stamp.
  schema.add_column(column("read_view_ts", ValueType::kInt));
  schema.add_column(column("commit_ts", ValueType::kInt));
  schema.add_column(column("statements", ValueType::kInt));
  schema.add_column(column("versions_installed", ValueType::kInt));
  schema.add_column(column("admission_held", ValueType::kInt));
  schema.add_column(column("elapsed_ms", ValueType::kReal));
  return schema;
}

TableSchema make_locks_schema() {
  TableSchema schema{std::string(kLocksTableName)};
  schema.add_column(column("lock", ValueType::kText));  // writer | drain
  schema.add_column(column("holders", ValueType::kInt));
  schema.add_column(column("exclusive", ValueType::kInt));
  schema.add_column(column("waiters", ValueType::kInt));
  schema.add_column(column("wait_micros", ValueType::kInt));
  return schema;
}

TableSchema make_wal_schema() {
  TableSchema schema{std::string(kWalTableName)};
  schema.add_column(column("written_seq", ValueType::kInt));
  schema.add_column(column("durable_seq", ValueType::kInt));
  schema.add_column(column("commit_queue_depth", ValueType::kInt));
  schema.add_column(column("last_fsync_micros", ValueType::kInt));
  schema.add_column(column("sync_mode", ValueType::kText));
  schema.add_column(column("read_only", ValueType::kInt));
  schema.add_column(column("read_only_reason", ValueType::kText));
  return schema;
}

std::unique_ptr<Table> materialize_metrics() {
  auto table = std::make_unique<Table>(make_metrics_schema());
  for (const auto& s : telemetry::MetricsRegistry::instance().snapshot()) {
    const bool histogram = s.kind == telemetry::MetricSample::Kind::kHistogram;
    Row row;
    row.reserve(8);
    row.emplace_back(s.name);
    row.emplace_back(std::string(telemetry::metric_kind_name(s.kind)));
    row.emplace_back(s.value);
    row.push_back(histogram ? Value(s.count) : Value::null());
    row.push_back(histogram ? Value(s.sum) : Value::null());
    row.push_back(histogram ? Value(s.p50) : Value::null());
    row.push_back(histogram ? Value(s.p95) : Value::null());
    row.push_back(histogram ? Value(s.p99) : Value::null());
    table->insert(std::move(row));
  }
  return table;
}

std::unique_ptr<Table> materialize_slow_queries() {
  auto table = std::make_unique<Table>(make_slow_queries_schema());
  for (const auto& t : telemetry::TraceRing::instance().snapshot()) {
    Row row;
    row.reserve(13);
    row.emplace_back(static_cast<std::int64_t>(t.id));
    row.emplace_back(t.started_at);
    row.emplace_back(t.thread);
    row.emplace_back(t.sql);
    row.emplace_back(t.plan);
    row.emplace_back(t.total_ms);
    row.emplace_back(t.outcome);
    using telemetry::Phase;
    for (const Phase p : {Phase::kParse, Phase::kPlan, Phase::kAdmission,
                          Phase::kLockWait, Phase::kExecute, Phase::kFsync}) {
      row.emplace_back(t.phase_ms[static_cast<std::size_t>(p)]);
    }
    table->insert(std::move(row));
  }
  return table;
}

std::unique_ptr<Table> materialize_statements(Database* db) {
  auto table = std::make_unique<Table>(make_statements_schema());
  if (db == nullptr) return table;
  for (const auto& s : db->statements().snapshot()) {
    Row row;
    row.reserve(8);
    row.emplace_back(static_cast<std::int64_t>(s.id));
    row.emplace_back(s.thread);
    row.emplace_back(s.sql);
    row.emplace_back(std::string(s.phase));
    row.emplace_back(s.elapsed_ms);
    row.push_back(s.deadline_remaining_ms < 0
                      ? Value::null()
                      : Value(s.deadline_remaining_ms));
    row.emplace_back(static_cast<std::int64_t>(s.rows));
    row.emplace_back(static_cast<std::int64_t>(s.cancel_requested ? 1 : 0));
    table->insert(std::move(row));
  }
  return table;
}

std::unique_ptr<Table> materialize_transactions(Database* db) {
  auto table = std::make_unique<Table>(make_transactions_schema());
  if (db == nullptr) return table;
  const Database::TxnIntrospection& txn = db->txn_introspection();
  // `open` is stored with release after the owner fills the other fields,
  // so an acquire load here orders the reads below. The row reflects one
  // point in time only approximately (the owner may be committing
  // concurrently) — fine for introspection.
  if (!txn.open.load(std::memory_order_acquire)) return table;

  const std::uint64_t base = txn.versions_base.load(std::memory_order_relaxed);
  static auto& versions_counter =
      telemetry::MetricsRegistry::instance().counter("mvcc.versions_installed");
  const std::uint64_t current = versions_counter.value();
  // Zero in telemetry-off builds (the counter never moves) and clamped
  // against racing BEGIN/COMMIT rewrites of the mirror.
  const std::uint64_t installed = current > base ? current - base : 0;
  const std::int64_t started =
      txn.started_unix_ms.load(std::memory_order_relaxed);
  const std::int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  Row row;
  row.reserve(8);
  row.emplace_back(std::string("open"));
  row.emplace_back(
      static_cast<std::int64_t>(txn.token.load(std::memory_order_relaxed)));
  row.emplace_back(
      static_cast<std::int64_t>(txn.read_ts.load(std::memory_order_relaxed)));
  row.emplace_back(static_cast<std::int64_t>(db->commit_ts()));
  row.emplace_back(static_cast<std::int64_t>(
      txn.statements.load(std::memory_order_relaxed)));
  row.emplace_back(static_cast<std::int64_t>(installed));
  row.emplace_back(static_cast<std::int64_t>(
      txn.admission_held.load(std::memory_order_relaxed) ? 1 : 0));
  row.emplace_back(started > 0 && now_ms > started
                       ? static_cast<double>(now_ms - started)
                       : 0.0);
  table->insert(std::move(row));
  return table;
}

std::unique_ptr<Table> materialize_locks(Database* db) {
  auto table = std::make_unique<Table>(make_locks_schema());
  if (db == nullptr) return table;
  const LockStats stats = db->locks().stats();
  {
    Row row;
    row.reserve(5);
    row.emplace_back(std::string("writer"));
    row.emplace_back(static_cast<std::int64_t>(stats.writer_holders));
    row.emplace_back(static_cast<std::int64_t>(stats.writer_holders));
    row.emplace_back(static_cast<std::int64_t>(stats.writer_waiters));
    row.emplace_back(static_cast<std::int64_t>(stats.writer_wait_micros));
    table->insert(std::move(row));
  }
  {
    Row row;
    row.reserve(5);
    row.emplace_back(std::string("drain"));
    row.emplace_back(static_cast<std::int64_t>(stats.drain_shared_holders +
                                               stats.drain_exclusive_holders));
    row.emplace_back(static_cast<std::int64_t>(stats.drain_exclusive_holders));
    row.emplace_back(static_cast<std::int64_t>(stats.drain_waiters));
    row.emplace_back(static_cast<std::int64_t>(stats.drain_wait_micros));
    table->insert(std::move(row));
  }
  return table;
}

const char* sync_mode_name(SyncMode mode) {
  switch (mode) {
    case SyncMode::kAlways: return "always";
    case SyncMode::kOnCommit: return "on_commit";
    case SyncMode::kNone: return "none";
  }
  return "unknown";
}

std::unique_ptr<Table> materialize_wal(Database* db) {
  auto table = std::make_unique<Table>(make_wal_schema());
  if (db == nullptr) return table;
  Wal* wal = db->wal();
  Row row;
  row.reserve(7);
  if (wal != nullptr) {
    row.emplace_back(static_cast<std::int64_t>(wal->written_seq()));
    row.emplace_back(static_cast<std::int64_t>(wal->durable_seq()));
    row.emplace_back(static_cast<std::int64_t>(wal->commit_queue_depth()));
    row.emplace_back(static_cast<std::int64_t>(wal->last_fsync_micros()));
    row.emplace_back(std::string(sync_mode_name(wal->sync_mode())));
  } else {
    // In-memory database: no WAL, one row of zeros so aggregations and
    // health probes keep working against a stable shape.
    for (int i = 0; i < 4; ++i) row.emplace_back(static_cast<std::int64_t>(0));
    row.emplace_back(std::string("none"));
  }
  row.emplace_back(static_cast<std::int64_t>(db->read_only() ? 1 : 0));
  row.emplace_back(db->read_only_reason());
  table->insert(std::move(row));
  return table;
}

}  // namespace

bool is_system_table_name(std::string_view name) {
  const std::string u = upper(name);
  return u == kMetricsTableName || u == kSlowQueriesTableName ||
         u == kStatementsTableName || u == kTransactionsTableName ||
         u == kLocksTableName || u == kWalTableName;
}

std::vector<std::string> system_table_names() {
  return {std::string(kLocksTableName),        std::string(kMetricsTableName),
          std::string(kSlowQueriesTableName),  std::string(kStatementsTableName),
          std::string(kTransactionsTableName), std::string(kWalTableName)};
}

const TableSchema& system_table_schema(std::string_view name) {
  static const TableSchema metrics = make_metrics_schema();
  static const TableSchema slow = make_slow_queries_schema();
  static const TableSchema statements = make_statements_schema();
  static const TableSchema transactions = make_transactions_schema();
  static const TableSchema locks = make_locks_schema();
  static const TableSchema wal = make_wal_schema();
  const std::string u = upper(name);
  if (u == kMetricsTableName) return metrics;
  if (u == kSlowQueriesTableName) return slow;
  if (u == kStatementsTableName) return statements;
  if (u == kTransactionsTableName) return transactions;
  if (u == kLocksTableName) return locks;
  if (u == kWalTableName) return wal;
  throw DbError("not a system table: " + std::string(name));
}

std::unique_ptr<Table> materialize_system_table(std::string_view name,
                                                Database* db) {
  const std::string u = upper(name);
  if (u == kMetricsTableName) return materialize_metrics();
  if (u == kSlowQueriesTableName) return materialize_slow_queries();
  if (u == kStatementsTableName) return materialize_statements(db);
  if (u == kTransactionsTableName) return materialize_transactions(db);
  if (u == kLocksTableName) return materialize_locks(db);
  if (u == kWalTableName) return materialize_wal(db);
  throw DbError("not a system table: " + std::string(name));
}

}  // namespace perfdmf::sqldb
