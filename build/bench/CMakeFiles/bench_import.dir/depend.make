# Empty dependencies file for bench_import.
# This may be replaced when dependencies are built.
