file(REMOVE_RECURSE
  "CMakeFiles/test_io_xml.dir/test_io_xml.cpp.o"
  "CMakeFiles/test_io_xml.dir/test_io_xml.cpp.o.d"
  "test_io_xml"
  "test_io_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
