// Minimal leveled logger. The framework is a library: logging defaults to
// warnings-only on stderr and is globally adjustable by embedding tools.
#pragma once

#include <sstream>
#include <string>

namespace perfdmf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line if `level` is enabled. Thread-safe (single write call).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace perfdmf::util
