// Trial algebra — the CUBE-style comparative operators the paper lists
// as planned work (§7: "integrate the CUBE algebra with PerfDMF to
// implement high-level comparative queries and analysis operations";
// CUBE is Song/Wolf/Bhatia/Dongarra/Moore, ICPP'04).
//
// Operators work on the common profile representation and align operands
// by (event name, thread id, metric name). The result is a new TrialData
// whose derived fields are recomputed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::analysis {

/// difference(a, b): a - b pointwise. Events/threads/metrics present in
/// only one operand keep that operand's value (sign-flipped for b), so
/// structural differences remain visible — matching CUBE's semantics of
/// exposing both performance and structural change.
profile::TrialData trial_difference(const profile::TrialData& a,
                                    const profile::TrialData& b);

/// merge(a, b): union of data points; where both operands define a point
/// the values are summed (CUBE's merge over independent measurements).
profile::TrialData trial_merge(const profile::TrialData& a,
                               const profile::TrialData& b);

/// mean(trials): pointwise arithmetic mean over n >= 1 trials; a point
/// contributes wherever it exists, divided by the number of trials that
/// define it.
profile::TrialData trial_mean(const std::vector<const profile::TrialData*>& trials);

/// Generic binary combine with a caller-supplied function applied to
/// aligned points; `miss_a` / `miss_b` say what to do when only one side
/// has a point (return false to drop it).
using BinaryPointOp = std::function<profile::IntervalDataPoint(
    const profile::IntervalDataPoint&, const profile::IntervalDataPoint&)>;
profile::TrialData trial_combine(const profile::TrialData& a,
                                 const profile::TrialData& b,
                                 const BinaryPointOp& op, bool keep_only_a,
                                 bool keep_only_b);

/// Structural diff summary: which events/metrics/threads appear in only
/// one of the two trials (the "structural differences" of Karavanic &
/// Miller's program-space comparisons, paper §6).
struct StructuralDiff {
  std::vector<std::string> events_only_in_a;
  std::vector<std::string> events_only_in_b;
  std::vector<std::string> metrics_only_in_a;
  std::vector<std::string> metrics_only_in_b;
  std::size_t threads_only_in_a = 0;
  std::size_t threads_only_in_b = 0;
  bool identical_structure() const {
    return events_only_in_a.empty() && events_only_in_b.empty() &&
           metrics_only_in_a.empty() && metrics_only_in_b.empty() &&
           threads_only_in_a == 0 && threads_only_in_b == 0;
  }
};
StructuralDiff structural_diff(const profile::TrialData& a,
                               const profile::TrialData& b);

}  // namespace perfdmf::analysis
