#include "profile/callpath.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace perfdmf::profile {

namespace {
constexpr std::string_view kArrow = " => ";
}

bool is_callpath(const std::string& event_name) {
  return event_name.find(kArrow) != std::string::npos;
}

std::vector<std::string> split_callpath(const std::string& event_name) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t at = event_name.find(kArrow, start);
    if (at == std::string::npos) {
      out.emplace_back(util::trim(event_name.substr(start)));
      return out;
    }
    out.emplace_back(util::trim(event_name.substr(start, at - start)));
    start = at + kArrow.size();
  }
}

std::string callpath_leaf(const std::string& event_name) {
  const std::size_t at = event_name.rfind(kArrow);
  if (at == std::string::npos) return event_name;
  return std::string(util::trim(event_name.substr(at + kArrow.size())));
}

std::string callpath_parent(const std::string& event_name) {
  const std::size_t at = event_name.rfind(kArrow);
  if (at == std::string::npos) return "";
  return std::string(util::trim(event_name.substr(0, at)));
}

std::size_t callpath_depth(const std::string& event_name) {
  std::size_t depth = 1;
  std::size_t start = 0;
  while ((start = event_name.find(kArrow, start)) != std::string::npos) {
    ++depth;
    start += kArrow.size();
  }
  return depth;
}

TrialData flatten_callpaths(const TrialData& trial) {
  TrialData out;
  out.trial() = trial.trial();

  // Copy metric and thread interning in order so dense ids line up.
  for (const auto& metric : trial.metrics()) out.intern_metric(metric.name);
  for (const auto& thread : trial.threads()) out.intern_thread(thread);

  // Aggregation state per (leaf event out-index, thread, metric).
  struct Aggregate {
    double exclusive = 0.0;
    double num_calls = 0.0;
    double num_subrs = 0.0;
    double inclusive_flat = -1.0;  // from the flat (depth-1) event
    double inclusive_max = 0.0;    // fallback: max over chains
  };
  std::map<std::uint64_t, Aggregate> aggregates;
  auto key_of = [](std::size_t e, std::size_t t, std::size_t m) {
    return (static_cast<std::uint64_t>(e) << 40) |
           (static_cast<std::uint64_t>(t) << 12) | static_cast<std::uint64_t>(m);
  };

  // Pass 1: flat (depth-1) events are authoritative — TAU emits them
  // alongside the chains, and summing both would double count.
  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                              const IntervalDataPoint& p) {
    const std::string& name = trial.events()[e].name;
    if (is_callpath(name)) return;
    const std::size_t event = out.intern_event(name, trial.events()[e].group);
    Aggregate& aggregate = aggregates[key_of(event, t, m)];
    aggregate.exclusive = p.exclusive;
    aggregate.num_calls = p.num_calls;
    aggregate.num_subrs = p.num_subrs;
    aggregate.inclusive_flat = p.inclusive;
    aggregate.inclusive_max = std::max(aggregate.inclusive_max, p.inclusive);
  });
  // Pass 2: chains contribute to a leaf only where no flat event covered
  // that (leaf, thread, metric) — pure-callpath profiles reconstruct the
  // flat view; mixed profiles keep the measured one.
  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                              const IntervalDataPoint& p) {
    const std::string& name = trial.events()[e].name;
    if (!is_callpath(name)) return;
    std::string group = trial.events()[e].group;
    if (group == "TAU_CALLPATH") group.clear();
    const std::size_t event = out.intern_event(callpath_leaf(name), group);
    Aggregate& aggregate = aggregates[key_of(event, t, m)];
    if (aggregate.inclusive_flat >= 0.0) return;  // flat data wins
    aggregate.exclusive += p.exclusive;
    aggregate.num_calls += p.num_calls;
    aggregate.num_subrs = std::max(aggregate.num_subrs, p.num_subrs);
    aggregate.inclusive_max = std::max(aggregate.inclusive_max, p.inclusive);
  });

  for (const auto& [key, aggregate] : aggregates) {
    const std::size_t e = key >> 40;
    const std::size_t t = (key >> 12) & ((1u << 28) - 1);
    const std::size_t m = key & ((1u << 12) - 1);
    IntervalDataPoint p;
    p.exclusive = aggregate.exclusive;
    p.num_calls = aggregate.num_calls;
    p.num_subrs = aggregate.num_subrs;
    p.inclusive = aggregate.inclusive_flat >= 0.0 ? aggregate.inclusive_flat
                                                  : aggregate.inclusive_max;
    out.set_interval_data(e, t, m, p);
  }

  // Atomic events pass through untouched.
  for (const auto& atomic : trial.atomic_events()) {
    out.intern_atomic_event(atomic.name, atomic.group);
  }
  trial.for_each_atomic([&](std::size_t a, std::size_t t,
                            const AtomicDataPoint& p) {
    out.set_atomic_data(a, t, p);
  });

  out.infer_dimensions();
  out.recompute_derived_fields();
  return out;
}

}  // namespace perfdmf::profile
