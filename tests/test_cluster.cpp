// Tests for the PerfExplorer-style mining stack: k-means, PCA, metric
// correlation, ARI.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/correlation.h"
#include "analysis/kmeans.h"
#include "analysis/pca.h"
#include "io/synth.h"
#include "util/error.h"
#include "util/rng.h"

using namespace perfdmf;
using namespace perfdmf::analysis;

// ----------------------------------------------------------------- k-means

TEST(KMeans, SeparatesObviousClusters) {
  // Two tight 2-D blobs.
  std::vector<double> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back(0.0 + 0.01 * i);
    data.push_back(0.0);
  }
  for (int i = 0; i < 20; ++i) {
    data.push_back(10.0 + 0.01 * i);
    data.push_back(10.0);
  }
  KMeansOptions options;
  options.k = 2;
  auto result = kmeans(data, 40, 2, options);
  EXPECT_EQ(result.centroids.size(), 2u);
  // All of the first 20 share a label; all of the last 20 share the other.
  for (int i = 1; i < 20; ++i) EXPECT_EQ(result.assignment[i], result.assignment[0]);
  for (int i = 21; i < 40; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[20]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[20]);
  EXPECT_LT(result.inertia, 2.0);
}

TEST(KMeans, DeterministicForSeed) {
  std::vector<double> data;
  for (int i = 0; i < 30; ++i) data.push_back(static_cast<double>(i % 7));
  KMeansOptions options;
  options.k = 3;
  auto a = kmeans(data, 30, 1, options);
  auto b = kmeans(data, 30, 1, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KClampedToRowCount) {
  std::vector<double> data{1.0, 2.0, 3.0};
  KMeansOptions options;
  options.k = 10;
  auto result = kmeans(data, 3, 1, options);
  EXPECT_EQ(result.centroids.size(), 3u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-18);
}

TEST(KMeans, IdenticalPointsYieldZeroInertia) {
  std::vector<double> data(20, 5.0);
  KMeansOptions options;
  options.k = 2;
  auto result = kmeans(data, 20, 1, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-18);
}

TEST(KMeans, ClusterSizesSumToRows) {
  io::synth::ClusterSpec spec;
  spec.threads = 50;
  auto planted = io::synth::generate_clustered_trial(spec);
  auto features = thread_features(planted.trial);
  KMeansOptions options;
  options.k = 3;
  auto result = kmeans(features.values, features.rows, features.cols, options);
  std::size_t total = 0;
  for (std::size_t s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, features.rows);
}

TEST(KMeans, BadInputThrows) {
  KMeansOptions options;
  EXPECT_THROW(kmeans({}, 0, 0, options), InvalidArgument);
  EXPECT_THROW(kmeans({1.0}, 1, 2, options), InvalidArgument);
  options.k = 0;
  EXPECT_THROW(kmeans({1.0, 2.0}, 2, 1, options), InvalidArgument);
}

TEST(KMeans, RecoversPlantedClustersInSyntheticTrial) {
  io::synth::ClusterSpec spec;
  spec.threads = 120;
  spec.cluster_count = 3;
  spec.cluster_separation = 8.0;
  auto planted = io::synth::generate_clustered_trial(spec);
  auto features = thread_features(planted.trial);
  KMeansOptions options;
  options.k = 3;
  options.restarts = 5;
  auto result = kmeans(features.values, features.rows, features.cols, options);
  const double ari = adjusted_rand_index(result.assignment, planted.ground_truth);
  EXPECT_GT(ari, 0.95);
}

TEST(ThreadFeatures, ShapeAndNormalization) {
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 3;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  auto trial = io::synth::generate_trial(spec);
  auto features = thread_features(trial);
  EXPECT_EQ(features.rows, 4u);
  EXPECT_EQ(features.cols, 6u);  // 3 events x 2 metrics
  EXPECT_EQ(features.column_names.size(), 6u);
  // z-scored: column sums ~ 0
  for (std::size_t c = 0; c < features.cols; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < features.rows; ++r) {
      sum += features.values[r * features.cols + c];
    }
    EXPECT_NEAR(sum, 0.0, 1e-9);
  }
}

TEST(SummarizeClusters, MeansOfAssignedRows) {
  ThreadFeatureMatrix m;
  m.rows = 4;
  m.cols = 1;
  m.values = {1.0, 3.0, 10.0, 20.0};
  KMeansResult result;
  result.assignment = {0, 0, 1, 1};
  result.centroids = {{0.0}, {0.0}};
  auto means = summarize_clusters(m, result);
  EXPECT_DOUBLE_EQ(means[0][0], 2.0);
  EXPECT_DOUBLE_EQ(means[1][0], 15.0);
}

TEST(Ari, PerfectAgreementIsOne) {
  std::vector<std::size_t> a{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
  // Label permutation still perfect.
  std::vector<std::size_t> b{1, 1, 2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, RandomAssignmentNearZero) {
  std::vector<std::size_t> a;
  std::vector<std::size_t> b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(static_cast<std::size_t>(i % 2));
    b.push_back(static_cast<std::size_t>((i / 7) % 2));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.1);
}

TEST(Ari, SizeMismatchThrows) {
  EXPECT_THROW(adjusted_rand_index({0, 1}, {0}), InvalidArgument);
  EXPECT_THROW(adjusted_rand_index({}, {}), InvalidArgument);
}

// --------------------------------------------------------------------- PCA

TEST(Pca, RecoversDominantDirection) {
  // Points along the line y = 2x with tiny noise: first component should
  // be ~ (1, 2)/sqrt(5) and explain almost all variance.
  std::vector<double> data;
  for (int i = -10; i <= 10; ++i) {
    const double x = static_cast<double>(i);
    data.push_back(x);
    data.push_back(2.0 * x + 0.001 * ((i % 3) - 1));
  }
  auto result = pca(data, 21, 2, 2);
  EXPECT_GT(result.explained_variance_ratio[0], 0.999);
  const double ratio = std::fabs(result.components[0][1] / result.components[0][0]);
  EXPECT_NEAR(ratio, 2.0, 1e-3);
}

TEST(Pca, EigenvaluesSortedDescending) {
  std::vector<double> data;
  perfdmf::util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    data.push_back(10.0 * rng.next_gaussian());
    data.push_back(1.0 * rng.next_gaussian());
    data.push_back(0.1 * rng.next_gaussian());
  }
  auto result = pca(data, 50, 3);
  EXPECT_GE(result.eigenvalues[0], result.eigenvalues[1]);
  EXPECT_GE(result.eigenvalues[1], result.eigenvalues[2]);
}

TEST(Pca, ProjectionWidthRespectsKeep) {
  std::vector<double> data(30 * 4, 1.0);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i % 5);
  auto result = pca(data, 30, 4, 2);
  EXPECT_EQ(result.projected_dims, 2u);
  EXPECT_EQ(result.projected.size(), 60u);
}

TEST(Pca, BadShapeThrows) {
  EXPECT_THROW(pca({}, 0, 0), InvalidArgument);
  EXPECT_THROW(pca({1.0, 2.0}, 2, 2), InvalidArgument);
}

TEST(Jacobi, DiagonalizesKnownMatrix) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  std::vector<double> matrix{2.0, 1.0, 1.0, 2.0};
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  jacobi_eigen(matrix, 2, eigenvalues, eigenvectors);
  EXPECT_NEAR(eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eigenvalues[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eigenvectors[0][0]), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::fabs(eigenvectors[0][1]), std::sqrt(0.5), 1e-9);
}

// ------------------------------------------------------------- correlation

TEST(Correlation, DiagonalIsOneAndSymmetric) {
  io::synth::ClusterSpec spec;
  spec.threads = 40;
  spec.metric_count = 4;
  auto planted = io::synth::generate_clustered_trial(spec);
  auto matrix = correlate_metrics(planted.trial);
  const std::size_t n = matrix.metric_names.size();
  ASSERT_EQ(n, 4u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(matrix.at(i, i), 1.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), matrix.at(j, i));
    }
  }
}

TEST(Correlation, DetectsConstructedLinearRelation) {
  profile::TrialData trial;
  const std::size_t a = trial.intern_metric("A");
  const std::size_t b = trial.intern_metric("B");
  const std::size_t c = trial.intern_metric("C");
  const std::size_t e = trial.intern_event("f");
  for (int n = 0; n < 16; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.exclusive = static_cast<double>(n + 1);
    trial.set_interval_data(e, t, a, p);
    p.exclusive = 3.0 * static_cast<double>(n + 1);  // perfectly correlated
    trial.set_interval_data(e, t, b, p);
    p.exclusive = static_cast<double>((n * 7919) % 13);  // scrambled
    trial.set_interval_data(e, t, c, p);
  }
  auto matrix = correlate_metrics(trial);
  EXPECT_NEAR(matrix.at(a, b), 1.0, 1e-12);
  EXPECT_LT(std::fabs(matrix.at(a, c)), 0.6);

  auto strong = strong_correlations(matrix, 0.9);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(strong[0].metric_a, "A");
  EXPECT_EQ(strong[0].metric_b, "B");
}

TEST(Correlation, EventScopingChangesInput) {
  profile::TrialData trial;
  const std::size_t a = trial.intern_metric("A");
  const std::size_t b = trial.intern_metric("B");
  const std::size_t e1 = trial.intern_event("correlated");
  const std::size_t e2 = trial.intern_event("anti");
  for (int n = 0; n < 8; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.exclusive = n + 1.0;
    trial.set_interval_data(e1, t, a, p);
    trial.set_interval_data(e1, t, b, p);
    trial.set_interval_data(e2, t, a, p);
    p.exclusive = 100.0 - n;
    trial.set_interval_data(e2, t, b, p);
  }
  auto scoped = correlate_metrics(trial, "anti");
  EXPECT_NEAR(scoped.at(0, 1), -1.0, 1e-12);
  EXPECT_THROW(correlate_metrics(trial, "missing"), InvalidArgument);
}

TEST(Correlation, EmptyTrialThrows) {
  profile::TrialData trial;
  EXPECT_THROW(correlate_metrics(trial), InvalidArgument);
}

TEST(Correlation, FormatsMatrix) {
  profile::TrialData trial;
  trial.intern_metric("A");
  trial.intern_metric("B");
  trial.intern_event("e");
  trial.intern_thread({0, 0, 0});
  profile::IntervalDataPoint p;
  p.exclusive = 1.0;
  trial.set_interval_data(0, 0, 0, p);
  trial.set_interval_data(0, 0, 1, p);
  const std::string table = format_correlation_matrix(correlate_metrics(trial));
  EXPECT_NE(table.find("metric"), std::string::npos);
  EXPECT_NE(table.find("+1.000"), std::string::npos);
}
