// E8 — derived metrics (paper §3.2/§4): "derived metrics can be saved with
// the profile data in the database using the PerfDMF API", e.g. floating
// point operations per second from FP_OPS and TIME.
//
// Shape to reproduce: a derived metric computed from two measured metrics
// lands in the METRIC table flagged as derived, its data points land in
// INTERVAL_LOCATION_PROFILE, and a full reload sees all three metrics.
#include <cstdio>

#include "api/database_session.h"
#include "bench_json.h"
#include "io/synth.h"
#include "profile/derived.h"
#include "util/timer.h"

using namespace perfdmf;

int main() {
  bench::BenchJson json("derived");
  std::printf("E8: derived-metric save-back (FLOPS = PAPI_FP_OPS / TIME)\n");
  std::printf("%8s %10s %12s %12s %12s\n", "threads", "points", "derive(ms)",
              "save(ms)", "reload(ms)");

  for (std::int32_t threads : {16, 64, 256}) {
    io::synth::TrialSpec spec;
    spec.nodes = threads;
    spec.event_count = 32;
    spec.extra_metrics = {"PAPI_FP_OPS"};
    auto data = io::synth::generate_trial(spec);

    api::DatabaseSession session;
    const std::int64_t trial_id = session.save_trial(data, "app", "runs");

    auto working = session.load_selected_trial();
    util::WallTimer timer;
    profile::derive_ratio(working, "FLOPS", "PAPI_FP_OPS", "TIME");
    const double derive_ms = timer.millis();

    timer.reset();
    session.api().save_derived_metric(trial_id, working, "FLOPS");
    const double save_ms = timer.millis();

    timer.reset();
    auto reloaded = session.load_selected_trial();
    const double reload_ms = timer.millis();

    // Verify: 3 metrics, derived flag set, point counts consistent.
    auto metrics = session.get_metrics();
    bool derived_flag = metrics.size() == 3 && metrics[2].derived;
    std::printf("%8d %10zu %12.2f %12.2f %12.2f   %s\n", threads,
                reloaded.interval_point_count(), derive_ms, save_ms, reload_ms,
                derived_flag ? "[derived flag OK]" : "[FAILED]");

    const std::string prefix = "t" + std::to_string(threads) + "_";
    json.set(prefix + "derive_ms", derive_ms);
    json.set(prefix + "save_ms", save_ms);
    json.set(prefix + "reload_ms", reload_ms);
    json.set(prefix + "derived_flag_ok", derived_flag ? 1.0 : 0.0);
  }
  json.write();
  return 0;
}
