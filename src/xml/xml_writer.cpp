#include "xml/xml_writer.h"

#include <cstdio>

#include "util/error.h"

namespace perfdmf::xml {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

XmlWriter::XmlWriter(int indent_width) : indent_width_(indent_width) {}

void XmlWriter::declaration() {
  if (!out_.empty()) throw perfdmf::InvalidArgument("XML declaration must come first");
  out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
}

void XmlWriter::newline_indent() {
  if (indent_width_ <= 0) return;
  if (!out_.empty()) out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_width_), ' ');
}

void XmlWriter::close_start_tag() {
  if (tag_open_) {
    out_ += '>';
    tag_open_ = false;
  }
}

void XmlWriter::start_element(const std::string& name) {
  close_start_tag();
  newline_indent();
  out_ += '<';
  out_ += name;
  stack_.push_back(name);
  tag_open_ = true;
  just_wrote_text_ = false;
}

void XmlWriter::attribute(const std::string& name, const std::string& value) {
  if (!tag_open_) {
    throw perfdmf::InvalidArgument("attribute '" + name + "' outside an open start tag");
  }
  out_ += ' ';
  out_ += name;
  out_ += "=\"";
  out_ += escape(value);
  out_ += '"';
}

void XmlWriter::attribute(const std::string& name, long long value) {
  attribute(name, std::to_string(value));
}

void XmlWriter::attribute(const std::string& name, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  attribute(name, std::string(buffer));
}

void XmlWriter::text(const std::string& content) {
  if (stack_.empty()) throw perfdmf::InvalidArgument("text outside any element");
  close_start_tag();
  out_ += escape(content);
  just_wrote_text_ = true;
}

void XmlWriter::end_element() {
  if (stack_.empty()) throw perfdmf::InvalidArgument("end_element with empty stack");
  const std::string name = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    out_ += "/>";
    tag_open_ = false;
  } else {
    if (!just_wrote_text_) newline_indent();
    out_ += "</";
    out_ += name;
    out_ += '>';
  }
  just_wrote_text_ = false;
}

void XmlWriter::element_with_text(const std::string& name, const std::string& content) {
  start_element(name);
  text(content);
  end_element();
}

std::string XmlWriter::str() const {
  if (!stack_.empty()) {
    throw perfdmf::InvalidArgument("unclosed XML element: " + stack_.back());
  }
  return out_;
}

}  // namespace perfdmf::xml
