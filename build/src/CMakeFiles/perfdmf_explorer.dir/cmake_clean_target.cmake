file(REMOVE_RECURSE
  "libperfdmf_explorer.a"
)
