// Persistence tests: WAL encoding, replay, snapshot, crash recovery.
#include <gtest/gtest.h>

#include <cstring>

#include "sqldb/connection.h"
#include "sqldb/wal.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/file.h"
#include "util/rng.h"

using namespace perfdmf::sqldb;
namespace u = perfdmf::util;

TEST(ValueEncoding, RoundTripsEveryType) {
  for (const Value& v :
       {Value(), Value(std::int64_t{-42}), Value(3.14159),
        Value("text with\nnewline and spaces"), Value(std::string())}) {
    const std::string encoded = encode_value(v);
    std::size_t pos = 0;
    const Value decoded = decode_value(encoded, pos);
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(ValueEncoding, RealPrecisionPreserved) {
  const Value v(0.1234567890123456789);
  std::size_t pos = 0;
  EXPECT_DOUBLE_EQ(decode_value(encode_value(v), pos).as_real(), v.as_real());
}

TEST(ValueEncoding, TruncatedInputThrows) {
  std::size_t pos = 0;
  EXPECT_THROW(decode_value("T 100 short\n", pos), perfdmf::ParseError);
  pos = 0;
  EXPECT_THROW(decode_value("I", pos), perfdmf::ParseError);
  pos = 0;
  EXPECT_THROW(decode_value("Z 1\n", pos), perfdmf::ParseError);
}

TEST(Wal, AppendAndReplay) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  wal.append("INSERT INTO t VALUES (?)", {Value(std::int64_t{1})});
  wal.append("INSERT INTO t VALUES (?, ?)", {Value("x"), Value()});

  std::vector<std::pair<std::string, Params>> seen;
  wal.replay([&](const std::string& sql, const Params& params) {
    seen.emplace_back(sql, params);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, "INSERT INTO t VALUES (?)");
  EXPECT_EQ(seen[0].second[0], Value(std::int64_t{1}));
  EXPECT_EQ(seen[1].second[1], Value());
}

TEST(Wal, BatchIsOneRecordAndTornBatchIsDiscardedWholly) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  {
    Wal wal(path);
    wal.append("CREATE TABLE t (x INTEGER)", {});
    wal.append_batch({{"INSERT INTO t VALUES (?)", {Value(std::int64_t{1})}},
                      {"INSERT INTO t VALUES (?)", {Value(std::int64_t{2})}},
                      {"INSERT INTO t VALUES (?)", {Value(std::int64_t{3})}}});
    EXPECT_EQ(wal.last_seq(), 2u);  // the whole commit is one record
  }
  {
    Wal wal(path);
    std::size_t applied = 0;
    auto info = wal.replay([&](const std::string&, const Params&) { ++applied; });
    EXPECT_EQ(applied, 4u);  // but every statement replays
    EXPECT_FALSE(info.corrupt);
  }
  // Cut the commit record partway: even though the first INSERT's frame
  // bytes are fully on disk, the transaction must vanish as a unit.
  const std::string content = u::read_file(path);
  u::write_file(path, content.substr(0, content.size() - 12));
  Wal wal(path);
  std::vector<std::string> seen;
  auto info = wal.replay(
      [&](const std::string& sql, const Params&) { seen.push_back(sql); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "CREATE TABLE t (x INTEGER)");
  EXPECT_TRUE(info.tail_torn);
  EXPECT_FALSE(info.corrupt);
}

TEST(Wal, TornTailIsDiscarded) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  {
    Wal wal(path);
    wal.append("SELECT 1", {});
    wal.append("SELECT 2", {});
  }
  // Simulate a crash mid-append: cut the last record in half.
  const std::string content = u::read_file(path);
  u::write_file(path, content.substr(0, content.size() - 10));

  Wal wal(path);
  std::size_t replayed = 0;
  auto info = wal.replay([&](const std::string&, const Params&) { ++replayed; });
  EXPECT_EQ(replayed, 1u);
  EXPECT_TRUE(info.tail_torn);
  EXPECT_FALSE(info.corrupt);  // a torn tail is expected, not corruption
}

TEST(Wal, MidLogCorruptionIsReportedWithOffsetAndDiscardCount) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  {
    Wal wal(path);
    for (int i = 0; i < 5; ++i) {
      wal.append("INSERT INTO t VALUES (?)", {Value(std::int64_t{i})});
    }
  }
  // Flip a payload byte inside the second record.
  std::string content = u::read_file(path);
  const std::size_t second = content.find("\nR ", 1) + 1;
  const std::size_t third = content.find("\nR ", second) + 1;
  content[second + (third - second) / 2] ^= 0x40;
  u::write_file(path, content);

  Wal wal(path);
  std::size_t replayed = 0;
  auto info = wal.replay([&](const std::string&, const Params&) { ++replayed; });
  EXPECT_EQ(replayed, 1u);  // only the record before the damage
  ASSERT_TRUE(info.corrupt);
  EXPECT_EQ(info.corruption_offset, second);
  EXPECT_EQ(info.discarded, 3u);  // records 3..5 were intact but unreachable
  EXPECT_FALSE(info.error.empty());
}

TEST(Wal, SequenceBreakIsCorruption) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  {
    Wal wal(path);
    for (int i = 0; i < 3; ++i) wal.append("SELECT 1", {});
  }
  // Delete the middle record wholesale: every byte left is a valid
  // record, but the sequence numbers no longer chain.
  std::string content = u::read_file(path);
  const std::size_t second = content.find("\nR ", 1) + 1;
  const std::size_t third = content.find("\nR ", second) + 1;
  u::write_file(path, content.substr(0, second) + content.substr(third));

  Wal wal(path);
  std::size_t replayed = 0;
  auto info = wal.replay([&](const std::string&, const Params&) { ++replayed; });
  EXPECT_EQ(replayed, 1u);
  EXPECT_TRUE(info.corrupt);
  EXPECT_EQ(info.discarded, 1u);
}

TEST(Wal, SequenceNumbersContinueAcrossReset) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  wal.append("SELECT 1", {});
  wal.append("SELECT 2", {});
  EXPECT_EQ(wal.last_seq(), 2u);
  wal.reset();
  wal.append("SELECT 3", {});
  EXPECT_EQ(wal.last_seq(), 3u);
  auto info = wal.replay([](const std::string&, const Params&) {});
  EXPECT_EQ(info.last_seq, 3u);
}

TEST(Wal, ReplaySkipsRecordsAtOrBelowMinSeq) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  for (int i = 0; i < 4; ++i) wal.append("SELECT 1", {});
  std::size_t replayed = 0;
  auto info =
      wal.replay([&](const std::string&, const Params&) { ++replayed; }, 2);
  EXPECT_EQ(replayed, 2u);  // records 3 and 4
  EXPECT_EQ(info.skipped, 2u);
  EXPECT_EQ(info.last_seq, 4u);
}

TEST(Wal, ResetTruncates) {
  u::ScopedTempDir dir;
  Wal wal(dir.path() / "wal.log");
  wal.append("SELECT 1", {});
  wal.reset();
  std::size_t replayed = 0;
  wal.replay([&](const std::string&, const Params&) { ++replayed; });
  EXPECT_EQ(replayed, 0u);
}

TEST(Persistence, DataSurvivesReopen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE kv (id INTEGER PRIMARY KEY, k TEXT, v REAL)");
    conn.execute_update("INSERT INTO kv (k, v) VALUES ('a', 1.5), ('b', 2.5)");
  }  // destructor checkpoints
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT v FROM kv WHERE k = 'b'");
    ASSERT_TRUE(rs.next());
    EXPECT_DOUBLE_EQ(rs.get_double(1), 2.5);
  }
}

TEST(Persistence, WalReplayWithoutCheckpoint) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (10)");
    // Simulate a crash: copy WAL aside, reopen from WAL only.
    // (No checkpoint call; the destructor would checkpoint, so instead we
    // verify the WAL alone can rebuild by reading it directly.)
    std::size_t records = 0;
    Wal wal(db_dir / "wal.log");
    wal.replay([&](const std::string&, const Params&) { ++records; });
    EXPECT_EQ(records, 2u);  // CREATE + INSERT
  }
}

TEST(Persistence, UpdatesAndDeletesSurviveReopen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1), (2), (3)");
    conn.execute_update("UPDATE t SET x = 20 WHERE x = 2");
    conn.execute_update("DELETE FROM t WHERE x = 1");
  }
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT x FROM t ORDER BY x");
    ASSERT_EQ(rs.row_count(), 2u);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 3);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 20);
  }
}

TEST(Persistence, RolledBackTransactionNotReplayed) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.begin();
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.rollback();
    conn.begin();
    conn.execute_update("INSERT INTO t (x) VALUES (2)");
    conn.commit();
  }
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT x FROM t");
    ASSERT_EQ(rs.row_count(), 1u);
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
  }
}

TEST(Persistence, CheckpointTruncatesWalAndKeepsData) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  Connection conn(db_dir);
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
  conn.execute_update("INSERT INTO t (x) VALUES (7)");
  conn.checkpoint();
  EXPECT_TRUE(u::read_file(db_dir / "wal.log").empty());
  auto rs = conn.execute("SELECT x FROM t");
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_int(1), 7);
}

TEST(Persistence, AutoIncrementContinuesAfterReopen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1), (2)");
    conn.execute_update("DELETE FROM t WHERE id = 2");
    conn.checkpoint();
  }
  {
    Connection conn(db_dir);
    conn.execute_update("INSERT INTO t (x) VALUES (3)");
    auto rs = conn.execute("SELECT MAX(id) FROM t");
    rs.next();
    // Must not reuse id 2's slot number... id continues from the high mark.
    EXPECT_GE(rs.get_int(1), 3);
  }
}

TEST(Persistence, SchemaDetailsSurviveSnapshot) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE parent (id INTEGER PRIMARY KEY, name TEXT NOT NULL)");
    conn.execute_update(
        "CREATE TABLE child (id INTEGER PRIMARY KEY, p INTEGER,"
        " note TEXT DEFAULT 'none',"
        " FOREIGN KEY (p) REFERENCES parent (id))");
    conn.execute_update("INSERT INTO parent (name) VALUES ('a')");
    conn.checkpoint();
  }
  {
    Connection conn(db_dir);
    // FK still enforced after reload.
    EXPECT_THROW(conn.execute_update("INSERT INTO child (p) VALUES (99)"),
                 perfdmf::DbError);
    // DEFAULT still applied.
    conn.execute_update("INSERT INTO child (p) VALUES (1)");
    auto rs = conn.execute("SELECT note FROM child");
    rs.next();
    EXPECT_EQ(rs.get_string(1), "none");
    // NOT NULL still enforced.
    EXPECT_THROW(conn.execute_update("INSERT INTO parent (name) VALUES (NULL)"),
                 perfdmf::DbError);
  }
}

TEST(Persistence, InMemoryDatabaseHasNoFiles) {
  Connection conn;  // in-memory
  conn.execute_update("CREATE TABLE t (x INTEGER)");
  conn.execute_update("INSERT INTO t VALUES (1)");
  EXPECT_NO_THROW(conn.checkpoint());  // no-op, must not throw
}

TEST(Persistence, AlterTableSurvivesWalReplayAndSnapshot) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.execute_update("ALTER TABLE t ADD COLUMN note TEXT DEFAULT 'n/a'");
    conn.execute_update("INSERT INTO t (x, note) VALUES (2, 'hello')");
  }
  {
    // First reopen: recovered from WAL replay (destructor checkpointed,
    // but exercise another write + reopen to cover the snapshot path too).
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT note FROM t ORDER BY id");
    ASSERT_EQ(rs.row_count(), 2u);
    rs.next();
    EXPECT_EQ(rs.get_string(1), "n/a");
    rs.next();
    EXPECT_EQ(rs.get_string(1), "hello");
    conn.execute_update("ALTER TABLE t DROP COLUMN note");
  }
  {
    Connection conn(db_dir);
    EXPECT_THROW(conn.execute("SELECT note FROM t"), perfdmf::DbError);
    auto rs = conn.execute("SELECT COUNT(*) FROM t");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
  }
}

TEST(Persistence, CorruptedSnapshotWithoutFallbackIsRejected) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY)");
    conn.checkpoint();
  }
  // Damage the snapshot header and remove the fallback copy the
  // destructor's checkpoint rotated into place.
  const auto snapshot = db_dir / "snapshot.pdb";
  std::string content = u::read_file(snapshot);
  content[0] = 'X';
  u::write_file(snapshot, content);
  std::filesystem::remove(db_dir / "snapshot.pdb.prev");
  EXPECT_THROW(Connection bad(db_dir), perfdmf::ParseError);
}

TEST(Persistence, TruncatedSnapshotWithoutFallbackIsRejected) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)");
    conn.execute_update("INSERT INTO t (s) VALUES ('abcdefghij')");
    conn.checkpoint();
  }
  const auto snapshot = db_dir / "snapshot.pdb";
  const std::string content = u::read_file(snapshot);
  u::write_file(snapshot, content.substr(0, content.size() / 2));
  std::filesystem::remove(db_dir / "snapshot.pdb.prev");
  EXPECT_THROW(Connection bad(db_dir), perfdmf::ParseError);
}

TEST(Persistence, CorruptSnapshotFallsBackToPreviousPlusWal) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1)");
    conn.checkpoint();  // snapshot A
    conn.execute_update("INSERT INTO t (x) VALUES (2)");
    // Second checkpoint, but the WAL truncation "crashes": the new
    // snapshot is installed (A rotates to .prev) and the WAL keeps
    // every record.
    perfdmf::util::failpoint::enable("wal.reset", perfdmf::util::FailAction::kError);
    EXPECT_THROW(conn.checkpoint(), perfdmf::IoError);
    conn.execute_update("INSERT INTO t (x) VALUES (3)");
    // Re-arm so the destructor's checkpoint also leaves the WAL intact
    // (failpoints are one-shot).
    perfdmf::util::failpoint::enable("wal.reset", perfdmf::util::FailAction::kError);
  }
  // Now corrupt the newest snapshot as if its write had been torn.
  const auto snapshot = db_dir / "snapshot.pdb";
  std::string content = u::read_file(snapshot);
  content[content.size() / 2] ^= 0x40;
  u::write_file(snapshot, content);

  Connection conn(db_dir);
  const auto& report = conn.recovery_report();
  EXPECT_TRUE(report.used_previous_snapshot);
  EXPECT_FALSE(report.clean());
  auto rs = conn.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 3);  // nothing lost: previous snapshot + full WAL
}

// ---------------------------------------------------------------------------
// Adversarial encoding: values whose bytes mimic the framing itself.

TEST(ValueEncoding, AdversarialTextRoundTrips) {
  const std::vector<std::string> nasty = {
      "line1\nline2\nline3",
      "E\n",                       // looks like a payload terminator
      "S 12\nfake header\n",       // looks like a statement frame
      "R 3 deadbeef 10\n",         // looks like a WAL record header
      std::string("nul\0inside", 10),
      std::string(3, '\0'),
      "trailing newline\n",
      "",
  };
  for (const std::string& s : nasty) {
    const Value v(s);
    const std::string encoded = encode_value(v);
    std::size_t pos = 0;
    const Value decoded = decode_value(encoded, pos);
    EXPECT_EQ(decoded.as_text(), s);
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(ValueEncoding, SeventeenDigitDoublesSurviveExactly) {
  for (const double d : {0.12345678901234567, 1e308, -1e-308, 2.2250738585072014e-308,
                         9007199254740993.0, -0.0, 3.141592653589793}) {
    const Value v(d);
    std::size_t pos = 0;
    const Value decoded = decode_value(encode_value(v), pos);
    // Bit-exact, not just approximately equal: %.17g is lossless.
    const double back = decoded.as_real();
    EXPECT_EQ(std::memcmp(&d, &back, sizeof(double)), 0) << d;
  }
}

TEST(ValueEncoding, HostileLengthFieldsRejected) {
  std::size_t pos = 0;
  EXPECT_THROW(decode_value("T -5 x\n", pos), perfdmf::ParseError);
  pos = 0;
  EXPECT_THROW(decode_value("T 99999999999999999999 x\n", pos), perfdmf::ParseError);
  pos = 0;
  EXPECT_THROW(decode_value("T 4\n", pos), perfdmf::ParseError);  // missing bytes
}

TEST(Wal, AdversarialSqlAndParamsRoundTripThroughLog) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  const std::string sql = "INSERT INTO t (a, b) VALUES (?, ?)\n-- E\n-- S 3";
  const Params params = {Value(std::string("x\nE\nR 1 00000000 5\ny", 20)),
                         Value(0.12345678901234567)};
  {
    Wal wal(path);
    wal.append(sql, params);
    wal.append("SELECT 1", {});
  }
  Wal wal(path);
  std::vector<std::pair<std::string, Params>> seen;
  auto info = wal.replay([&](const std::string& s, const Params& p) {
    seen.emplace_back(s, p);
  });
  EXPECT_FALSE(info.corrupt);
  EXPECT_FALSE(info.tail_torn);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, sql);
  ASSERT_EQ(seen[0].second.size(), 2u);
  EXPECT_EQ(seen[0].second[0], params[0]);
  EXPECT_EQ(seen[0].second[1], params[1]);
}

// Fuzz property: no matter where a WAL is truncated or which byte is
// flipped, replay never throws and the applied records are a strict
// prefix of the original statement stream.
TEST(Wal, RandomDamageNeverCrashesReplayAndAppliesAPrefix) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  std::vector<std::string> original;
  {
    Wal wal(path);
    for (int i = 0; i < 10; ++i) {
      std::string sql = "INSERT INTO t VALUES (" + std::to_string(i) + ")";
      wal.append(sql, {Value(std::string("p\n") + std::to_string(i)),
                       Value(static_cast<std::int64_t>(i))});
      original.push_back(std::move(sql));
    }
  }
  const std::string pristine = u::read_file(path);
  ASSERT_FALSE(pristine.empty());

  u::Rng rng(20260807);
  const auto damaged_path = dir.path() / "damaged.log";
  for (int iter = 0; iter < 300; ++iter) {
    std::string content = pristine;
    switch (rng.next_below(3)) {
      case 0:  // truncate at a random byte
        content.resize(rng.next_below(content.size() + 1));
        break;
      case 1:  // flip a random byte
        content[rng.next_below(content.size())] ^=
            static_cast<char>(1 + rng.next_below(255));
        break;
      default:  // splice garbage into the middle
        content.insert(rng.next_below(content.size()),
                       std::string(1 + rng.next_below(8), 'Z'));
        break;
    }
    u::write_file(damaged_path, content);

    Wal wal(damaged_path);
    std::vector<std::string> seen;
    Wal::ReplayInfo info;
    ASSERT_NO_THROW(info = wal.replay([&](const std::string& sql, const Params&) {
      seen.push_back(sql);
    })) << "iteration " << iter;
    ASSERT_LE(seen.size(), original.size()) << "iteration " << iter;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      ASSERT_EQ(seen[i], original[i])
          << "iteration " << iter << ": applied records are not a prefix";
    }
    if (seen.size() < original.size() && !info.tail_torn && !info.corrupt) {
      // The only loss that can go unreported is truncation exactly at a
      // record boundary — indistinguishable from a shorter, complete log.
      // Anything else (byte flips, spliced garbage, mid-record cuts)
      // must surface as a torn tail or corruption.
      EXPECT_EQ(pristine.compare(0, content.size(), content), 0)
          << "iteration " << iter << ": records lost silently";
    }
  }
}

// ---------------------------------------------------------------------------
// Open-time replay failures must be observable, not just logged.

TEST(Persistence, ReplayFailuresAreCountedInRecoveryReport) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  std::filesystem::create_directories(db_dir);
  {
    // Hand-build a WAL whose middle statement cannot execute: the table
    // it touches never existed. No snapshot, so replay starts from zero.
    Wal wal(db_dir / "wal.log");
    wal.append("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)", {});
    wal.append("INSERT INTO missing (x) VALUES (1)", {});
    wal.append("INSERT INTO t (x) VALUES (7)", {});
  }
  Connection conn(db_dir);
  const auto& report = conn.recovery_report();
  EXPECT_EQ(report.failed_statements, 1u);
  EXPECT_FALSE(report.clean());
  ASSERT_FALSE(report.warnings.empty());
  // The statements around the failure still applied.
  auto rs = conn.execute("SELECT x FROM t");
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_int(1), 7);
}

TEST(Persistence, CleanOpenReportsClean) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY)");
  }
  Connection conn(db_dir);
  EXPECT_TRUE(conn.recovery_report().clean());
  EXPECT_EQ(conn.recovery_report().failed_statements, 0u);
  EXPECT_FALSE(conn.recovery_report().wal_corrupt);
}

TEST(Persistence, MidLogCorruptionSurfacesThroughDatabaseOpen) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.checkpoint();
    for (int i = 0; i < 4; ++i) {
      conn.execute_update("INSERT INTO t (x) VALUES (" + std::to_string(i) + ")");
    }
    // Keep the WAL: make the destructor's checkpoint fail before truncation.
    u::failpoint::enable("snapshot.write", u::FailAction::kError);
  }
  u::failpoint::clear_all();
  // Corrupt the second INSERT record.
  const auto wal_path = db_dir / "wal.log";
  std::string content = u::read_file(wal_path);
  const std::size_t second = content.find("\nR ", 1) + 1;
  const std::size_t third = content.find("\nR ", second) + 1;
  content[second + (third - second) / 2] ^= 0x01;
  u::write_file(wal_path, content);

  Connection conn(db_dir);
  const auto& report = conn.recovery_report();
  EXPECT_TRUE(report.wal_corrupt);
  EXPECT_EQ(report.wal_corruption_offset, second);
  EXPECT_EQ(report.discarded_records, 2u);
  EXPECT_FALSE(report.clean());
  auto rs = conn.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 1);  // only the record before the damage
}

TEST(Persistence, IndexesRebuiltAfterReload) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v REAL)");
    conn.execute_update("CREATE INDEX idx_k ON t (k)");
    auto stmt = conn.prepare("INSERT INTO t (k, v) VALUES (?, ?)");
    conn.begin();
    for (int i = 0; i < 500; ++i) {
      stmt.set_int(1, i % 10);
      stmt.set_double(2, i);
      stmt.execute_update();
    }
    conn.commit();
  }
  {
    Connection conn(db_dir);
    // Index-served query must return the same multiset as a full check.
    auto rs = conn.execute("SELECT COUNT(*) FROM t WHERE k = 3");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 50);
    // Uniqueness of the PK is still enforced after recovery.
    EXPECT_THROW(conn.execute_update("INSERT INTO t (id, k, v) VALUES (1, 0, 0)"),
                 perfdmf::DbError);
  }
}

TEST(Persistence, ViewsSurviveReopenViaSnapshotAndWal) {
  u::ScopedTempDir dir;
  const auto db_dir = dir.path() / "db";
  {
    Connection conn(db_dir);
    conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
    conn.execute_update("INSERT INTO t (x) VALUES (1), (2), (3)");
    conn.execute_update("CREATE VIEW big AS SELECT x FROM t WHERE x >= 2");
    conn.checkpoint();  // view now lives in the snapshot
    conn.execute_update(
        "CREATE VIEW small AS SELECT x FROM t WHERE x < 2");  // in the WAL
  }
  {
    Connection conn(db_dir);
    auto rs = conn.execute("SELECT COUNT(*) FROM big");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 2);
    auto rs2 = conn.execute("SELECT COUNT(*) FROM small");
    rs2.next();
    EXPECT_EQ(rs2.get_int(1), 1);
    EXPECT_EQ(conn.get_meta_data().get_views().size(), 2u);
  }
}
