// Quickstart: the 60-second tour of PerfDMF-C++.
//
// 1. Generate a synthetic TAU trial on disk (stands in for real profiles).
// 2. Import it through the format-detecting loader.
// 3. Store it in a database archive.
// 4. Query it back selectively through the DataSession API.
// 5. Compute and save a derived metric.
//
// Run:  ./quickstart [archive-dir]
//       (no argument -> in-memory archive)
#include <cstdio>
#include <memory>

#include "api/database_session.h"
#include "io/detect.h"
#include "io/synth.h"
#include "profile/derived.h"
#include "util/file.h"

using namespace perfdmf;

int main(int argc, char** argv) {
  // --- 1. synthesize a trial the way TAU would have written it ---------
  util::ScopedTempDir scratch("perfdmf-quickstart");
  io::synth::TrialSpec spec;
  spec.name = "quickstart";
  spec.nodes = 4;
  spec.event_count = 8;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  auto generated = io::synth::generate_trial(spec);
  const auto tau_dir = scratch.path() / "tau_trial";
  io::synth::write_as_tau(generated, tau_dir);
  std::printf("wrote TAU profiles under %s\n", tau_dir.c_str());

  // --- 2. import (format auto-detected) --------------------------------
  profile::TrialData trial = io::load_profile(tau_dir);
  std::printf("imported: %zu events, %zu threads, %zu metrics, %zu points\n",
              trial.events().size(), trial.threads().size(),
              trial.metrics().size(), trial.interval_point_count());

  // --- 3. store in an archive ------------------------------------------
  std::unique_ptr<api::DatabaseSession> session;
  if (argc > 1) {
    session = std::make_unique<api::DatabaseSession>(
        std::filesystem::path(argv[1]));
    std::printf("using persistent archive at %s\n", argv[1]);
  } else {
    session = std::make_unique<api::DatabaseSession>();
    std::printf("using in-memory archive\n");
  }
  const std::int64_t trial_id =
      session->save_trial(trial, "demo_app", "quickstart runs");
  std::printf("stored as trial %lld\n", static_cast<long long>(trial_id));

  // --- 4. selective queries --------------------------------------------
  session->set_node(0);  // only node 0's data
  auto rows = session->get_interval_data();
  std::printf("node 0 has %zu data points; top events by exclusive TIME:\n",
              rows.size());
  auto metrics = session->get_metrics();
  for (const auto& row : rows) {
    if (row.metric_id != metrics[0].id) continue;
    if (row.data.exclusive_pct >= 10.0) {
      std::printf("  %-24s %10.1f us (%5.1f%%)\n", row.event_name.c_str(),
                  row.data.exclusive, row.data.exclusive_pct);
    }
  }
  session->clear_node();

  // --- 5. derived metric ------------------------------------------------
  auto working = session->load_selected_trial();
  profile::derive_ratio(working, "FLOPS_PER_US", "PAPI_FP_OPS", "TIME");
  session->api().save_derived_metric(trial_id, working, "FLOPS_PER_US");
  std::printf("saved derived metric FLOPS_PER_US; trial now has %zu metrics\n",
              session->get_metrics().size());
  return 0;
}
