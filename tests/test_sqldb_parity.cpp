// Executor parity harness: every PerfExplorer-shaped query runs through
// the optimized paths (hash join, hash GROUP BY, Top-K LIMIT) and through
// the forced fallbacks (nested-loop / index-nested-loop joins, ordered-map
// grouping, full sort), and the results must be identical — including
// NULL join keys (NULL must never hash-match NULL) and duplicate-key
// joins. Queries without a total ORDER BY are compared as sorted
// multisets, since row order is not contractual there.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sqldb/connection.h"

using namespace perfdmf::sqldb;

namespace {

std::vector<std::vector<std::string>> materialize(ResultSet& rs) {
  std::vector<std::vector<std::string>> out;
  while (rs.next()) {
    std::vector<std::string> row;
    row.reserve(rs.column_count());
    for (std::size_t c = 1; c <= rs.column_count(); ++c) {
      row.push_back(rs.is_null(c) ? std::string("<null>") : rs.get(c).to_string());
    }
    out.push_back(std::move(row));
  }
  return out;
}

class ParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // PerfDMF-shaped tables: events joined against per-location profiles.
    conn.execute_update(
        "CREATE TABLE event (id INTEGER PRIMARY KEY, name TEXT NOT NULL)");
    conn.execute_update(
        "CREATE TABLE ilp (id INTEGER PRIMARY KEY, event INTEGER,"
        " node INTEGER, excl REAL, incl REAL)");
    {
      auto ins = conn.prepare("INSERT INTO event (id, name) VALUES (?, ?)");
      for (int i = 1; i <= 10; ++i) {
        ins.set_int(1, i);
        ins.set_string(2, "ev" + std::to_string(i % 4));  // duplicate names
        ins.execute_update();
      }
    }
    {
      auto ins = conn.prepare(
          "INSERT INTO ilp (event, node, excl, incl) VALUES (?, ?, ?, ?)");
      for (int i = 0; i < 60; ++i) {
        if (i % 12 == 0) {
          ins.set_null(1);  // NULL join keys
        } else {
          ins.set_int(1, 1 + i % 10);
        }
        ins.set_int(2, i % 5);
        ins.set_double(3, static_cast<double>(i * 37 % 100) / 100.0);
        ins.set_double(4, static_cast<double>(i * 37 % 100) / 50.0);
        ins.execute_update();
      }
    }
    conn.execute_update("CREATE INDEX ilp_excl ON ilp (excl)");

    // Unindexed pair with NULLs and duplicate keys on both sides: the
    // fallback here is a pure nested loop.
    conn.execute_update("CREATE TABLE t1 (k INTEGER, v INTEGER)");
    conn.execute_update("CREATE TABLE t2 (k INTEGER, w INTEGER)");
    conn.execute_update(
        "INSERT INTO t1 (k, v) VALUES (NULL, 0), (1, 1), (1, 2), (2, 3),"
        " (2, 4), (2, 5), (3, 6), (4, 7), (NULL, 8), (5, 9), (5, 10), (6, 11)");
    conn.execute_update(
        "INSERT INTO t2 (k, w) VALUES (NULL, 0), (1, 10), (1, 20), (2, 30),"
        " (3, 40), (3, 50), (7, 60), (NULL, 70), (5, 80), (5, 90)");
  }

  /// Run `sql` under the all-optimized config and under each fallback
  /// combination; all must agree. `totally_ordered` marks queries whose
  /// ORDER BY determines a unique row order (compared verbatim);
  /// everything else is compared as a sorted multiset.
  void expect_parity(const std::string& sql, bool totally_ordered = false) {
    ExecutorTuning all_off;
    all_off.hash_join = all_off.hash_group_by = all_off.top_k = false;

    conn.database().set_executor_tuning(all_off);
    auto baseline_rs = conn.execute(sql);
    auto baseline = materialize(baseline_rs);
    const auto baseline_columns = baseline_rs.column_names();
    if (!totally_ordered) std::sort(baseline.begin(), baseline.end());

    const ExecutorTuning configs[] = {
        {},                                          // everything on
        {false, true, true},                         // hash join off
        {true, false, true},                         // hash group-by off
        {true, true, false},                         // top-k off
    };
    for (const auto& config : configs) {
      conn.database().set_executor_tuning(config);
      auto rs = conn.execute(sql);
      auto rows = materialize(rs);
      if (!totally_ordered) std::sort(rows.begin(), rows.end());
      EXPECT_EQ(rs.column_names(), baseline_columns) << sql;
      EXPECT_EQ(rows, baseline)
          << sql << "\n(hash_join=" << config.hash_join
          << " hash_group_by=" << config.hash_group_by
          << " top_k=" << config.top_k << ")";
    }
    conn.database().set_executor_tuning(ExecutorTuning{});
  }

  Connection conn;
};

TEST_F(ParityTest, EquiJoinAgainstIndexedKey) {
  expect_parity("SELECT e.name, p.excl FROM ilp p JOIN event e ON p.event = e.id");
}

TEST_F(ParityTest, EquiJoinDuplicateAndNullKeysBothSides) {
  expect_parity("SELECT t1.v, t2.w FROM t1 JOIN t2 ON t1.k = t2.k");
}

TEST_F(ParityTest, LeftOuterJoinKeepsUnmatchedAndNullKeyRows) {
  expect_parity("SELECT t1.k, t1.v, t2.w FROM t1 LEFT JOIN t2 ON t1.k = t2.k");
  expect_parity(
      "SELECT e.name, p.node FROM ilp p LEFT JOIN event e ON p.event = e.id");
}

TEST_F(ParityTest, JoinWithResidualOnConjunct) {
  expect_parity(
      "SELECT t1.v, t2.w FROM t1 JOIN t2 ON t1.k = t2.k AND t2.w > 25");
  expect_parity(
      "SELECT t1.v, t2.w FROM t1 LEFT JOIN t2 ON t1.k = t2.k AND t2.w > 25");
}

TEST_F(ParityTest, ThreeWayJoin) {
  expect_parity(
      "SELECT e.name, p.node, t2.w FROM ilp p"
      " JOIN event e ON p.event = e.id"
      " JOIN t2 ON t2.k = p.node");
}

TEST_F(ParityTest, GroupByWithHavingOverJoin) {
  expect_parity(
      "SELECT e.name, COUNT(*) c, AVG(p.excl) FROM ilp p"
      " JOIN event e ON p.event = e.id"
      " GROUP BY e.name HAVING COUNT(*) > 2");
}

TEST_F(ParityTest, GroupByNullKeyGroupsTogether) {
  expect_parity("SELECT event, SUM(excl), COUNT(*) FROM ilp GROUP BY event");
}

TEST_F(ParityTest, DistinctPlainAndOrdered) {
  expect_parity("SELECT DISTINCT node FROM ilp");
  expect_parity("SELECT DISTINCT node FROM ilp ORDER BY node LIMIT 4",
                /*totally_ordered=*/true);
}

TEST_F(ParityTest, OrderByLimitOffsetTotalOrder) {
  expect_parity("SELECT id, excl FROM ilp ORDER BY excl DESC, id LIMIT 7 OFFSET 3",
                /*totally_ordered=*/true);
  expect_parity("SELECT id, excl FROM ilp ORDER BY excl, id DESC LIMIT 1",
                /*totally_ordered=*/true);
}

TEST_F(ParityTest, TopKOverJoin) {
  expect_parity(
      "SELECT e.name, p.excl, p.id FROM ilp p JOIN event e ON p.event = e.id"
      " ORDER BY p.excl DESC, p.id LIMIT 5",
      /*totally_ordered=*/true);
}

TEST_F(ParityTest, AggregatedTopNHotRoutines) {
  expect_parity(
      "SELECT event, SUM(excl) total FROM ilp GROUP BY event"
      " ORDER BY total DESC, event LIMIT 3",
      /*totally_ordered=*/true);
}

TEST_F(ParityTest, ViewBackedFrom) {
  conn.execute_update(
      "CREATE VIEW hot AS SELECT event, SUM(excl) total FROM ilp GROUP BY event");
  expect_parity("SELECT event, total FROM hot ORDER BY total DESC, event LIMIT 3",
                /*totally_ordered=*/true);
  expect_parity("SELECT COUNT(*) FROM hot");
}

TEST_F(ParityTest, StrictRangeOverIndexedColumn) {
  expect_parity("SELECT id FROM ilp WHERE excl > 0.5 AND excl <= 0.9");
  expect_parity("SELECT id FROM ilp WHERE excl BETWEEN 0.25 AND 0.75 AND excl > 0.25");
}

TEST_F(ParityTest, HavingWithOrderByPosition) {
  expect_parity(
      "SELECT node, COUNT(*) FROM ilp GROUP BY node"
      " HAVING COUNT(*) >= 2 ORDER BY 2 DESC, node",
      /*totally_ordered=*/true);
}

TEST_F(ParityTest, AggregateOverEmptyInput) {
  expect_parity("SELECT COUNT(*), SUM(excl) FROM ilp WHERE node = 999");
}

}  // namespace
