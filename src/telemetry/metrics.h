// Self-hosted telemetry: process-global metrics registry.
//
// PerfDMF's thesis is that performance data belongs in a queryable
// database; this layer applies that discipline to the framework itself.
// Hot paths record into named counters, gauges, and fixed-bucket latency
// histograms ("sqldb.wal.fsync_micros", "sqldb.plan_cache.hits", ...);
// the sqldb executor serves the registry back as the virtual table
// PERFDMF_METRICS, so telemetry is filtered and aggregated with the same
// SQL used on profile rows (see sqldb/system_tables.h).
//
// Cost model: a recording is one relaxed atomic RMW guarded by one
// relaxed atomic load (the runtime enable flag). Registration is
// mutex-protected and happens once per site (function-local static
// reference); object addresses are stable for the process lifetime.
//
// Kill switch: configuring with -DPERFDMF_TELEMETRY=OFF defines
// PERFDMF_TELEMETRY_DISABLED, which compiles every recording to nothing
// while keeping the registry, the system tables, and all call sites —
// queries against PERFDMF_METRICS then see zeros, and the overhead is
// exactly zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#if defined(PERFDMF_TELEMETRY_DISABLED)
#define PERFDMF_TELEMETRY_ENABLED 0
#else
#define PERFDMF_TELEMETRY_ENABLED 1
#endif

namespace perfdmf::telemetry {

/// Compile-time state, as a testable constant.
constexpr bool compiled_in() { return PERFDMF_TELEMETRY_ENABLED != 0; }

#if PERFDMF_TELEMETRY_ENABLED
namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

/// Runtime master switch (default on). Disabling stops all recording —
/// already-registered metrics keep their last values.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#else
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// Monotonic event count. Relaxed increments; no hot-path locking.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depths, open handles).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram over non-negative integer samples
/// (microseconds by convention — names end in "_micros").
///
/// Buckets are geometric with four subdivisions per power of two, so a
/// reported percentile is within ~19% of the exact sample quantile while
/// recording stays a single relaxed increment into a fixed array.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 4 * 40;  // up to ~2^40 us

  void record(std::uint64_t sample) noexcept {
    if (!enabled()) return;
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }
  /// Sink interface for util::ScopedTimer.
  void record_micros(std::uint64_t micros) noexcept { record(micros); }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Estimated value at quantile `q` in [0,1]: the upper bound of the
  /// bucket where the cumulative count crosses q * count (0 when empty).
  double percentile(double q) const noexcept;

  void reset() noexcept;

  static std::size_t bucket_of(std::uint64_t sample) noexcept;
  /// Largest sample that lands in bucket `index` (its inclusive upper bound).
  static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One registry entry, rendered for the PERFDMF_METRICS system table and
/// the JSON export. Histogram-only fields are negative (-> SQL NULL) for
/// counters and gauges.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter/gauge: value; histogram: mean
  std::int64_t count = -1;
  double sum = -1.0;
  double p50 = -1.0;
  double p95 = -1.0;
  double p99 = -1.0;
};

const char* metric_kind_name(MetricSample::Kind kind);

/// Process-global name -> metric table. Thread-safe registration;
/// returned references are valid for the process lifetime, so hot paths
/// register once (function-local static) and record lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create. Re-registering the same name with a different
  /// metric kind throws InvalidArgument (one name, one time series).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Consistent-enough view for queries: each metric is read atomically,
  /// the set is the registration set at call time, sorted by name.
  std::vector<MetricSample> snapshot() const;

  /// Zero every registered metric (benchmarks and tests; names persist).
  void reset_values();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  struct Entry {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, MetricSample::Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// The whole registry as a JSON object string:
/// {"metrics":[{"name":...,"kind":...,"value":...,...},...]}.
std::string metrics_to_json();

/// Escape `text` for embedding inside a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace perfdmf::telemetry
