#include "io/hpm_format.h"

#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::io {

namespace {
constexpr double kSecondsToMicros = 1e6;
}

void HpmDataSource::parse_into(const std::string& content,
                               profile::TrialData& trial) {
  const auto lines = util::split_lines(content);

  std::optional<std::size_t> current_event;
  std::optional<std::size_t> current_thread;
  bool any_section = false;
  double pending_count = 1.0;  // "Count:" applies to later lines in a section

  for (const std::string& raw : lines) {
    const std::string line = std::string(util::trim(raw));
    if (line.empty()) continue;

    if (util::starts_with(line, "Instrumented section:")) {
      any_section = true;
      // "Instrumented section: <n> - Label: <label> - process: <p>"
      std::string label = "unknown";
      std::int32_t process = 0;
      const std::size_t label_at = line.find("Label:");
      if (label_at != std::string::npos) {
        std::size_t end = line.find(" - ", label_at);
        if (end == std::string::npos) end = line.size();
        label = std::string(util::trim(line.substr(label_at + 6, end - label_at - 6)));
      }
      const std::size_t process_at = line.find("process:");
      if (process_at != std::string::npos) {
        process = static_cast<std::int32_t>(util::parse_int_or_throw(
            util::trim(line.substr(process_at + 8)), "hpm process"));
      }
      current_event = trial.intern_event(label);
      current_thread = trial.intern_thread({process, 0, 0});
      pending_count = 1.0;
      continue;
    }
    if (!current_event) continue;

    auto set_metric = [&](const std::string& metric_name, double value,
                          double calls) {
      const std::size_t metric = trial.intern_metric(metric_name);
      profile::IntervalDataPoint point;
      if (const profile::IntervalDataPoint* existing =
              trial.interval_data(*current_event, *current_thread, metric)) {
        point = *existing;
      }
      point.inclusive = value;
      point.exclusive = value;  // HPM sections report totals, not a call tree
      if (calls > 0.0) point.num_calls = calls;
      trial.set_interval_data(*current_event, *current_thread, metric, point);
    };

    if (util::starts_with(line, "Count:")) {
      const double count =
          util::parse_double_or_throw(util::trim(line.substr(6)), "hpm count");
      // The count applies to metric lines that follow; also retrofit it
      // onto any metric lines that preceded it in this section.
      for (std::size_t m = 0; m < trial.metrics().size(); ++m) {
        if (const profile::IntervalDataPoint* existing =
                trial.interval_data(*current_event, *current_thread, m)) {
          profile::IntervalDataPoint point = *existing;
          point.num_calls = count;
          trial.set_interval_data(*current_event, *current_thread, m, point);
        }
      }
      pending_count = count;
      continue;
    }
    if (util::starts_with(line, "Wall Clock Time:")) {
      auto fields = util::split_ws(line.substr(16));
      if (fields.empty()) {
        throw perfdmf::ParseError("hpm: bad Wall Clock Time line: " + line);
      }
      set_metric("TIME",
                 util::parse_double_or_throw(fields[0], "hpm wall clock") *
                     kSecondsToMicros,
                 pending_count);
      continue;
    }
    if (util::starts_with(line, "Total time in user mode:")) {
      auto fields = util::split_ws(line.substr(25));
      if (!fields.empty()) {
        set_metric("USER_TIME",
                   util::parse_double_or_throw(fields[0], "hpm user time") *
                       kSecondsToMicros,
                   pending_count);
      }
      continue;
    }
    // Counter lines: "PM_XXX (description) : value" or "PAPI_XXX ... : value".
    if (util::starts_with(line, "PM_") || util::starts_with(line, "PAPI_")) {
      const std::size_t colon = line.rfind(':');
      if (colon == std::string::npos) continue;
      auto name_fields = util::split_ws(line.substr(0, colon));
      if (name_fields.empty()) continue;
      const double value = util::parse_double_or_throw(
          util::trim(line.substr(colon + 1)), "hpm counter value");
      set_metric(name_fields[0], value, pending_count);
      continue;
    }
    // "file: ..." and other annotation lines are skipped.
  }
  if (!any_section) {
    throw perfdmf::ParseError("hpm: no 'Instrumented section' blocks found");
  }
}

profile::TrialData HpmDataSource::parse(const std::string& content) {
  profile::TrialData trial;
  parse_into(content, trial);
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData HpmDataSource::load() {
  profile::TrialData trial = parse(util::read_file(file_));
  trial.trial().name = file_.filename().string();
  return trial;
}

std::string render_hpm_report(const profile::TrialData& trial,
                              std::size_t thread_index) {
  if (thread_index >= trial.threads().size()) {
    throw perfdmf::InvalidArgument("hpm writer: bad thread index");
  }
  const profile::ThreadId& id = trial.threads()[thread_index];
  auto time_metric = trial.find_metric("TIME");

  std::string out;
  out += "libhpm (Version 2.4.2) summary - perfdmf synthetic generator\n\n";
  int section = 1;
  for (std::size_t e = 0; e < trial.events().size(); ++e) {
    // A section exists if any metric has data for this (event, thread).
    bool has_data = false;
    for (std::size_t m = 0; m < trial.metrics().size(); ++m) {
      if (trial.interval_data(e, thread_index, m) != nullptr) has_data = true;
    }
    if (!has_data) continue;
    char header[256];
    std::snprintf(header, sizeof header,
                  "Instrumented section: %d - Label: %s - process: %d\n", section,
                  trial.events()[e].name.c_str(), id.node);
    out += header;
    out += "  file: synthetic.f, lines: 1 <--> 100\n";
    const profile::IntervalDataPoint* timing =
        time_metric ? trial.interval_data(e, thread_index, *time_metric) : nullptr;
    char count_line[64];
    std::snprintf(count_line, sizeof count_line, "  Count: %.0f\n",
                  timing != nullptr && timing->num_calls > 0.0 ? timing->num_calls
                                                               : 1.0);
    out += count_line;
    if (timing != nullptr) {
      char wall[128];
      std::snprintf(wall, sizeof wall, "  Wall Clock Time: %.6f seconds\n",
                    timing->inclusive / kSecondsToMicros);
      out += wall;
    }
    for (std::size_t m = 0; m < trial.metrics().size(); ++m) {
      const std::string& name = trial.metrics()[m].name;
      if (name == "TIME" || name == "USER_TIME") continue;
      const profile::IntervalDataPoint* p = trial.interval_data(e, thread_index, m);
      if (p == nullptr) continue;
      char line[256];
      std::snprintf(line, sizeof line, "  %s (%s) : %.0f\n", name.c_str(),
                    name.c_str(), p->inclusive);
      out += line;
    }
    out += "\n";
    ++section;
  }
  if (section == 1) {
    throw perfdmf::InvalidArgument("hpm writer: thread has no data");
  }
  return out;
}

}  // namespace perfdmf::io
