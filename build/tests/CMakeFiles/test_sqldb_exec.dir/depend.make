# Empty dependencies file for test_sqldb_exec.
# This may be replaced when dependencies are built.
