file(REMOVE_RECURSE
  "libperfdmf_util.a"
)
