#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/error.h"

namespace perfdmf::util {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_ws_limit(std::string_view s, std::size_t max_fields) {
  std::vector<std::string> out;
  if (max_fields == 0) return out;
  std::size_t i = 0;
  while (i < s.size() && out.size() + 1 < max_fields) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  while (i < s.size() && is_space(s[i])) ++i;
  if (i < s.size()) out.emplace_back(trim(s.substr(i)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (*first == '+') ++first;  // from_chars rejects a leading '+'
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+; use it.
  double v = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (*first == '+') ++first;
  auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::int64_t parse_int_or_throw(std::string_view s, std::string_view what) {
  auto v = parse_int(s);
  if (!v) throw ParseError("expected integer for " + std::string(what) + ", got '" +
                           std::string(s) + "'");
  return *v;
}

double parse_double_or_throw(std::string_view s, std::string_view what) {
  auto v = parse_double(s);
  if (!v) throw ParseError("expected number for " + std::string(what) + ", got '" +
                           std::string(s) + "'");
  return *v;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      std::size_t end = i;
      if (end > start && text[end - 1] == '\r') --end;
      out.emplace_back(text.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    std::size_t end = text.size();
    if (end > start && text[end - 1] == '\r') --end;
    out.emplace_back(text.substr(start, end - start));
  }
  return out;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace perfdmf::util
