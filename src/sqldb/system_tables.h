// Virtual system tables serving framework telemetry and live engine
// state over SQL.
//
// PERFDMF_METRICS and PERFDMF_SLOW_QUERIES snapshot the telemetry
// registry / slow-query ring; PERFDMF_STATEMENTS, PERFDMF_TRANSACTIONS,
// PERFDMF_LOCKS and PERFDMF_WAL materialize live engine state (active
// statements, the open transaction, lock holders/waiters, WAL durability
// position). All are reserved names resolved by the executor (like
// views) into transient materialized tables built at query time. They
// never touch storage or the WAL, are visible through DatabaseMetaData
// like ordinary tables, and cannot be created, dropped, or written.
//
// The live tables read only atomics and per-slot try-locks, so querying
// them never blocks — and never deadlocks — the statements, transactions
// and WAL activity they report on.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/table.h"

namespace perfdmf::sqldb {

class Database;

inline constexpr std::string_view kMetricsTableName = "PERFDMF_METRICS";
inline constexpr std::string_view kSlowQueriesTableName = "PERFDMF_SLOW_QUERIES";
inline constexpr std::string_view kStatementsTableName = "PERFDMF_STATEMENTS";
inline constexpr std::string_view kTransactionsTableName =
    "PERFDMF_TRANSACTIONS";
inline constexpr std::string_view kLocksTableName = "PERFDMF_LOCKS";
inline constexpr std::string_view kWalTableName = "PERFDMF_WAL";

/// True when `name` is a reserved system-table name (case-insensitive).
bool is_system_table_name(std::string_view name);

/// Canonical names of every system table, sorted.
std::vector<std::string> system_table_names();

/// Column layout for reflection. Throws DbError for a non-system name.
const TableSchema& system_table_schema(std::string_view name);

/// Snapshot the live telemetry / engine state into a transient Table the
/// executor can scan / filter / aggregate. The live tables (statements,
/// transactions, locks, WAL) need the owning database; with `db` null
/// they materialize empty. Throws DbError for a non-system name.
std::unique_ptr<Table> materialize_system_table(std::string_view name,
                                                Database* db = nullptr);

}  // namespace perfdmf::sqldb
