#include "sqldb/connection.h"

#include "sqldb/parser.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

// ------------------------------------------------------------- ResultSet

ResultSet::ResultSet(ResultSetData data) : data_(std::move(data)) {}

bool ResultSet::next() {
  if (cursor_ + 1 >= static_cast<std::ptrdiff_t>(data_.rows.size())) {
    cursor_ = static_cast<std::ptrdiff_t>(data_.rows.size());
    return false;
  }
  ++cursor_;
  return true;
}

const Row& ResultSet::current() const {
  if (cursor_ < 0 || cursor_ >= static_cast<std::ptrdiff_t>(data_.rows.size())) {
    throw DbError("ResultSet cursor is not on a row (call next())");
  }
  return data_.rows[static_cast<std::size_t>(cursor_)];
}

Value ResultSet::get(std::size_t index) const {
  const Row& row = current();
  if (index < 1 || index > row.size()) {
    throw DbError("ResultSet column index " + std::to_string(index) +
                  " out of range 1.." + std::to_string(row.size()));
  }
  return row[index - 1];
}

Value ResultSet::get(const std::string& column_name) const {
  for (std::size_t i = 0; i < data_.column_names.size(); ++i) {
    if (util::iequals(data_.column_names[i], column_name)) return get(i + 1);
  }
  throw DbError("ResultSet has no column named '" + column_name + "'");
}

std::string ResultSet::get_string(std::size_t index) const {
  Value v = get(index);
  return v.is_null() ? std::string() : v.to_string();
}

std::string ResultSet::get_string(const std::string& name) const {
  Value v = get(name);
  return v.is_null() ? std::string() : v.to_string();
}

// ---------------------------------------------------- PreparedStatement

PreparedStatement::PreparedStatement(Connection& connection, std::string sql)
    : connection_(connection),
      sql_(std::move(sql)),
      statement_(parse_statement(sql_)) {
  params_.resize(statement_.placeholder_count);
}

void PreparedStatement::set_value(std::size_t index, Value value) {
  if (index < 1 || index > params_.size()) {
    throw DbError("bind index " + std::to_string(index) + " out of range 1.." +
                  std::to_string(params_.size()));
  }
  params_[index - 1] = std::move(value);
}

void PreparedStatement::set_int(std::size_t index, std::int64_t value) {
  set_value(index, Value(value));
}
void PreparedStatement::set_double(std::size_t index, double value) {
  set_value(index, Value(value));
}
void PreparedStatement::set_string(std::size_t index, std::string value) {
  set_value(index, Value(std::move(value)));
}
void PreparedStatement::set_null(std::size_t index) { set_value(index, Value()); }

void PreparedStatement::clear_parameters() {
  params_.assign(params_.size(), Value());
}

ResultSet PreparedStatement::execute_query() {
  std::lock_guard lock(connection_.mutex());
  return ResultSet(connection_.database().execute(statement_, params_, sql_));
}

std::size_t PreparedStatement::execute_update() {
  std::lock_guard lock(connection_.mutex());
  ResultSetData result = connection_.database().execute(statement_, params_, sql_);
  if (result.rows.size() == 1 && result.rows[0].size() == 1 &&
      result.rows[0][0].type() == ValueType::kInt) {
    return static_cast<std::size_t>(result.rows[0][0].as_int());
  }
  return result.rows.size();
}

// ------------------------------------------------------ DatabaseMetaData

std::vector<std::string> DatabaseMetaData::get_tables() {
  std::lock_guard lock(connection_.mutex());
  return connection_.database().table_names();
}

std::vector<std::string> DatabaseMetaData::get_views() {
  std::lock_guard lock(connection_.mutex());
  return connection_.database().view_names();
}

std::vector<DatabaseMetaData::ColumnInfo> DatabaseMetaData::get_columns(
    const std::string& table) {
  std::lock_guard lock(connection_.mutex());
  const Table& t = connection_.database().table(table);
  std::vector<ColumnInfo> out;
  out.reserve(t.schema().columns().size());
  for (const auto& column : t.schema().columns()) {
    out.push_back({column.name, column.type, column.not_null, column.primary_key});
  }
  return out;
}

std::vector<DatabaseMetaData::ForeignKeyInfo> DatabaseMetaData::get_foreign_keys(
    const std::string& table) {
  std::lock_guard lock(connection_.mutex());
  const Table& t = connection_.database().table(table);
  std::vector<ForeignKeyInfo> out;
  for (const auto& fk : t.schema().foreign_keys()) {
    out.push_back({fk.column, fk.parent_table, fk.parent_column});
  }
  return out;
}

// ------------------------------------------------------------ Connection

Connection::Connection() : database_(std::make_unique<Database>()) {}

Connection::Connection(const std::filesystem::path& directory)
    : database_(std::make_unique<Database>(directory)) {}

ResultSet Connection::execute(std::string_view sql, const Params& params) {
  std::lock_guard lock(mutex_);
  return ResultSet(database_->execute(sql, params));
}

std::size_t Connection::execute_update(std::string_view sql, const Params& params) {
  std::lock_guard lock(mutex_);
  ResultSetData result = database_->execute(sql, params);
  if (result.rows.size() == 1 && result.rows[0].size() == 1 &&
      result.rows[0][0].type() == ValueType::kInt) {
    return static_cast<std::size_t>(result.rows[0][0].as_int());
  }
  return result.rows.size();
}

void Connection::begin() {
  std::lock_guard lock(mutex_);
  database_->begin();
}

void Connection::commit() {
  std::lock_guard lock(mutex_);
  database_->commit();
}

void Connection::rollback() {
  std::lock_guard lock(mutex_);
  database_->rollback();
}

void Connection::checkpoint() {
  std::lock_guard lock(mutex_);
  database_->checkpoint();
}

}  // namespace perfdmf::sqldb
