file(REMOVE_RECURSE
  "CMakeFiles/bench_import.dir/bench_import.cpp.o"
  "CMakeFiles/bench_import.dir/bench_import.cpp.o.d"
  "bench_import"
  "bench_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
