# Empty compiler generated dependencies file for perfdmf_analysis.
# This may be replaced when dependencies are built.
