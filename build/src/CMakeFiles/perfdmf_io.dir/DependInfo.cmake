
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv_export.cpp" "src/CMakeFiles/perfdmf_io.dir/io/csv_export.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/csv_export.cpp.o.d"
  "/root/repo/src/io/detect.cpp" "src/CMakeFiles/perfdmf_io.dir/io/detect.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/detect.cpp.o.d"
  "/root/repo/src/io/dir_scan.cpp" "src/CMakeFiles/perfdmf_io.dir/io/dir_scan.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/dir_scan.cpp.o.d"
  "/root/repo/src/io/dynaprof_format.cpp" "src/CMakeFiles/perfdmf_io.dir/io/dynaprof_format.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/dynaprof_format.cpp.o.d"
  "/root/repo/src/io/gprof_format.cpp" "src/CMakeFiles/perfdmf_io.dir/io/gprof_format.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/gprof_format.cpp.o.d"
  "/root/repo/src/io/hpm_format.cpp" "src/CMakeFiles/perfdmf_io.dir/io/hpm_format.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/hpm_format.cpp.o.d"
  "/root/repo/src/io/mpip_format.cpp" "src/CMakeFiles/perfdmf_io.dir/io/mpip_format.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/mpip_format.cpp.o.d"
  "/root/repo/src/io/psrun_format.cpp" "src/CMakeFiles/perfdmf_io.dir/io/psrun_format.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/psrun_format.cpp.o.d"
  "/root/repo/src/io/synth.cpp" "src/CMakeFiles/perfdmf_io.dir/io/synth.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/synth.cpp.o.d"
  "/root/repo/src/io/tau_format.cpp" "src/CMakeFiles/perfdmf_io.dir/io/tau_format.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/tau_format.cpp.o.d"
  "/root/repo/src/io/xml_io.cpp" "src/CMakeFiles/perfdmf_io.dir/io/xml_io.cpp.o" "gcc" "src/CMakeFiles/perfdmf_io.dir/io/xml_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/perfdmf_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
