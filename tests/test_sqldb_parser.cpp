// Unit tests for the SQL lexer and parser.
#include <gtest/gtest.h>

#include "sqldb/lexer.h"
#include "sqldb/parser.h"
#include "util/error.h"

using namespace perfdmf::sqldb;
using perfdmf::ParseError;

// ------------------------------------------------------------------- lexer

TEST(Lexer, TokenizesIdentifiersNumbersStrings) {
  auto tokens = tokenize("SELECT x, 42, 3.5, 'it''s' FROM t");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[3].type, TokenType::kInteger);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_EQ(tokens[5].type, TokenType::kReal);
  EXPECT_DOUBLE_EQ(tokens[5].real_value, 3.5);
  EXPECT_EQ(tokens[7].type, TokenType::kString);
  EXPECT_EQ(tokens[7].text, "it's");
}

TEST(Lexer, MultiCharOperators) {
  auto tokens = tokenize("a <= b >= c != d <> e || f");
  std::vector<std::string> ops;
  for (const auto& token : tokens) {
    if (token.type == TokenType::kOperator) ops.push_back(token.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"<=", ">=", "!=", "<>", "||"}));
}

TEST(Lexer, LineCommentsSkipped) {
  auto tokens = tokenize("SELECT 1 -- comment here\n, 2");
  std::size_t ints = 0;
  for (const auto& token : tokens) {
    if (token.type == TokenType::kInteger) ++ints;
  }
  EXPECT_EQ(ints, 2u);
}

TEST(Lexer, ScientificNotation) {
  auto tokens = tokenize("1e3 2.5E-2");
  EXPECT_DOUBLE_EQ(tokens[0].real_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[1].real_value, 0.025);
}

TEST(Lexer, QuotedIdentifiers) {
  auto tokens = tokenize("\"weird name\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird name");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("'open"), ParseError);
  EXPECT_THROW(tokenize("\"open"), ParseError);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(tokenize("SELECT #"), ParseError);
}

// ------------------------------------------------------------------ parser

TEST(Parser, CreateTableFull) {
  auto stmt = parse_statement(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL,"
      " score REAL DEFAULT 1.5, note VARCHAR(80),"
      " parent INTEGER, FOREIGN KEY (parent) REFERENCES p (id))");
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  const auto& schema = stmt.create_table.schema;
  EXPECT_EQ(schema.name(), "t");
  ASSERT_EQ(schema.columns().size(), 5u);
  EXPECT_TRUE(schema.columns()[0].primary_key);
  EXPECT_TRUE(schema.columns()[0].auto_increment);  // INTEGER PRIMARY KEY
  EXPECT_TRUE(schema.columns()[1].not_null);
  EXPECT_DOUBLE_EQ(schema.columns()[2].default_value.as_real(), 1.5);
  EXPECT_EQ(schema.columns()[3].type, ValueType::kText);
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  EXPECT_EQ(schema.foreign_keys()[0].parent_table, "p");
}

TEST(Parser, CreateTableIfNotExists) {
  auto stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)");
  EXPECT_TRUE(stmt.create_table.if_not_exists);
}

TEST(Parser, DropAndAlter) {
  EXPECT_TRUE(parse_statement("DROP TABLE IF EXISTS t").drop_table.if_exists);
  auto add = parse_statement("ALTER TABLE t ADD COLUMN c TEXT");
  EXPECT_EQ(add.kind, StatementKind::kAlterAddColumn);
  EXPECT_EQ(add.alter.column.name, "c");
  auto drop = parse_statement("ALTER TABLE t DROP COLUMN c");
  EXPECT_EQ(drop.kind, StatementKind::kAlterDropColumn);
  EXPECT_EQ(drop.alter.column_name, "c");
}

TEST(Parser, CreateIndex) {
  auto stmt = parse_statement("CREATE UNIQUE INDEX idx ON t (col)");
  EXPECT_EQ(stmt.kind, StatementKind::kCreateIndex);
  EXPECT_TRUE(stmt.create_index.unique);
  EXPECT_EQ(stmt.create_index.table, "t");
  EXPECT_EQ(stmt.create_index.column, "col");
}

TEST(Parser, InsertMultiRowWithPlaceholders) {
  auto stmt =
      parse_statement("INSERT INTO t (a, b) VALUES (?, ?), (1, 'x')");
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  EXPECT_EQ(stmt.insert.columns.size(), 2u);
  EXPECT_EQ(stmt.insert.rows.size(), 2u);
  EXPECT_EQ(stmt.placeholder_count, 2u);
}

TEST(Parser, SelectFullClauses) {
  auto stmt = parse_statement(
      "SELECT DISTINCT a.x AS ax, COUNT(*) FROM t1 a JOIN t2 b ON a.id = b.ref"
      " WHERE a.x > 5 AND b.y IS NOT NULL GROUP BY a.x HAVING COUNT(*) >= 2"
      " ORDER BY ax DESC, 2 LIMIT 10 OFFSET 3");
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  const auto& select = stmt.select;
  EXPECT_TRUE(select.distinct);
  EXPECT_EQ(select.items.size(), 2u);
  EXPECT_EQ(select.items[0].alias, "ax");
  ASSERT_TRUE(select.from.has_value());
  EXPECT_EQ(select.from->table, "t1");
  EXPECT_EQ(select.from->alias, "a");
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_EQ(select.joins[0].table.alias, "b");
  ASSERT_TRUE(select.where != nullptr);
  EXPECT_EQ(select.group_by.size(), 1u);
  ASSERT_TRUE(select.having != nullptr);
  ASSERT_EQ(select.order_by.size(), 2u);
  EXPECT_TRUE(select.order_by[0].descending);
  ASSERT_TRUE(select.limit != nullptr);
  ASSERT_EQ(select.limit->kind, ExprKind::kLiteral);
  EXPECT_EQ(select.limit->literal.as_int(), 10);
  ASSERT_TRUE(select.offset != nullptr);
  ASSERT_EQ(select.offset->kind, ExprKind::kLiteral);
  EXPECT_EQ(select.offset->literal.as_int(), 3);
}

TEST(Parser, LimitOffsetAcceptPlaceholdersAndSignedLiterals) {
  auto stmt = parse_statement("SELECT x FROM t ORDER BY x LIMIT ? OFFSET ?");
  ASSERT_TRUE(stmt.select.limit != nullptr);
  EXPECT_EQ(stmt.select.limit->kind, ExprKind::kPlaceholder);
  ASSERT_TRUE(stmt.select.offset != nullptr);
  EXPECT_EQ(stmt.select.offset->kind, ExprKind::kPlaceholder);
  EXPECT_EQ(stmt.placeholder_count, 2u);

  // A negative literal parses (rejection happens at execution time with a
  // proper DbError instead of a parse failure).
  auto neg = parse_statement("SELECT x FROM t LIMIT -5");
  ASSERT_TRUE(neg.select.limit != nullptr);
  EXPECT_EQ(neg.select.limit->literal.as_int(), -5);

  EXPECT_THROW(parse_statement("SELECT x FROM t LIMIT 'ten'"), ParseError);
}

TEST(Parser, ExplainSelect) {
  auto stmt = parse_statement("EXPLAIN SELECT x FROM t WHERE x = 1");
  EXPECT_EQ(stmt.kind, StatementKind::kExplain);
  ASSERT_TRUE(stmt.select.where != nullptr);
  // EXPLAIN wraps SELECT only.
  EXPECT_THROW(parse_statement("EXPLAIN DELETE FROM t"), ParseError);
}

TEST(Parser, SelectWithoutFrom) {
  auto stmt = parse_statement("SELECT 1 + 2 * 3");
  EXPECT_FALSE(stmt.select.from.has_value());
}

TEST(Parser, SelectStar) {
  auto stmt = parse_statement("SELECT * FROM t");
  ASSERT_EQ(stmt.select.items.size(), 1u);
  EXPECT_EQ(stmt.select.items[0].expr, nullptr);
}

TEST(Parser, ExpressionPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  auto stmt = parse_statement("SELECT 1 + 2 * 3");
  const Expr& root = *stmt.select.items[0].expr;
  ASSERT_EQ(root.kind, ExprKind::kBinary);
  EXPECT_EQ(root.op, "+");
  EXPECT_EQ(root.children[1]->op, "*");
}

TEST(Parser, BooleanPrecedenceAndNot) {
  // NOT a = 1 OR b = 2 AND c = 3  ==  (NOT (a=1)) OR ((b=2) AND (c=3))
  auto stmt = parse_statement("SELECT NOT a = 1 OR b = 2 AND c = 3 FROM t");
  const Expr& root = *stmt.select.items[0].expr;
  EXPECT_EQ(root.op, "OR");
  EXPECT_EQ(root.children[0]->kind, ExprKind::kUnary);
  EXPECT_EQ(root.children[1]->op, "AND");
}

TEST(Parser, InBetweenLikeIsNull) {
  auto stmt = parse_statement(
      "SELECT a IN (1, 2), b NOT IN (3), c BETWEEN 1 AND 5,"
      " d NOT BETWEEN 0 AND 1, e LIKE 'x%', f NOT LIKE '%y', g IS NULL,"
      " h IS NOT NULL FROM t");
  const auto& items = stmt.select.items;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kInList);
  EXPECT_FALSE(items[0].expr->negated);
  EXPECT_TRUE(items[1].expr->negated);
  EXPECT_EQ(items[2].expr->kind, ExprKind::kBetween);
  EXPECT_TRUE(items[3].expr->negated);
  EXPECT_EQ(items[4].expr->op, "LIKE");
  EXPECT_TRUE(items[5].expr->negated);
  EXPECT_EQ(items[6].expr->kind, ExprKind::kIsNull);
  EXPECT_TRUE(items[7].expr->negated);
}

TEST(Parser, FunctionCallsAndCountStar) {
  auto stmt = parse_statement(
      "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), COALESCE(c, 0) FROM t");
  const auto& items = stmt.select.items;
  EXPECT_EQ(items[0].expr->function_name, "COUNT");
  EXPECT_EQ(items[0].expr->children[0]->kind, ExprKind::kStar);
  EXPECT_TRUE(items[1].expr->distinct);
  EXPECT_EQ(items[2].expr->function_name, "SUM");
  EXPECT_EQ(items[3].expr->children.size(), 2u);
}

TEST(Parser, UpdateAndDelete) {
  auto update = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = ?");
  ASSERT_EQ(update.kind, StatementKind::kUpdate);
  EXPECT_EQ(update.update.assignments.size(), 2u);
  EXPECT_EQ(update.placeholder_count, 1u);

  auto del = parse_statement("DELETE FROM t WHERE x < 0");
  ASSERT_EQ(del.kind, StatementKind::kDelete);
  ASSERT_TRUE(del.del.where != nullptr);
}

TEST(Parser, TransactionStatements) {
  EXPECT_EQ(parse_statement("BEGIN").kind, StatementKind::kBegin);
  EXPECT_EQ(parse_statement("BEGIN TRANSACTION").kind, StatementKind::kBegin);
  EXPECT_EQ(parse_statement("COMMIT").kind, StatementKind::kCommit);
  EXPECT_EQ(parse_statement("ROLLBACK").kind, StatementKind::kRollback);
}

TEST(Parser, TrailingSemicolonAllowed) {
  EXPECT_NO_THROW(parse_statement("SELECT 1;"));
}

TEST(Parser, ErrorsAreParseErrors) {
  EXPECT_THROW(parse_statement("SELEC 1"), ParseError);
  EXPECT_THROW(parse_statement("SELECT FROM"), ParseError);
  EXPECT_THROW(parse_statement("INSERT INTO t VALUES"), ParseError);
  EXPECT_THROW(parse_statement("SELECT 1 extra tokens here ,"), ParseError);
  EXPECT_THROW(parse_statement("CREATE TABLE t (a BADTYPE)"), ParseError);
  EXPECT_THROW(parse_statement("SELECT (1 + 2"), ParseError);
}

TEST(Parser, NegativeLiteralsViaUnaryMinus) {
  auto stmt = parse_statement("SELECT -5, -2.5, +3");
  EXPECT_EQ(stmt.select.items.size(), 3u);
  EXPECT_EQ(stmt.select.items[0].expr->kind, ExprKind::kUnary);
}
