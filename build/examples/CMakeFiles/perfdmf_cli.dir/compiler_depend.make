# Empty compiler generated dependencies file for perfdmf_cli.
# This may be replaced when dependencies are built.
