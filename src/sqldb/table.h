// In-memory table storage with tombstoned slots and ordered indexes.
//
// Row identifiers are stable slot numbers: updates keep the RowId, deletes
// tombstone the slot. Indexes are ordered multimaps maintained on every
// mutation; the executor consults them for equality and range predicates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sqldb/schema.h"

namespace perfdmf::sqldb {

using RowId = std::uint64_t;
using Row = std::vector<Value>;

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  std::size_t live_row_count() const { return live_rows_; }
  std::size_t slot_count() const { return rows_.size(); }

  /// Validate, coerce, fill defaults/auto-increment, maintain indexes.
  /// `row` must have one value per schema column. Returns the new RowId.
  RowId insert(Row row);

  /// Replace the row at `id` (must be live). Values are coerced.
  void update(RowId id, Row row);

  /// Tombstone the row at `id` (must be live).
  void erase(RowId id);

  bool is_live(RowId id) const {
    return id < rows_.size() && rows_[id].has_value();
  }

  const Row& row(RowId id) const;

  /// Visit every live row in slot order.
  template <typename Fn>
  void scan(Fn&& fn) const {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (rows_[id]) fn(id, *rows_[id]);
    }
  }

  /// Create an ordered secondary index over one column. Idempotent.
  void create_index(std::size_t column_index, bool unique);
  bool has_index(std::size_t column_index) const;
  bool has_unique_index(std::size_t column_index) const;

  /// RowIds whose column equals `key` (via an index when present, else
  /// nullopt so the caller falls back to a scan).
  std::optional<std::vector<RowId>> index_equal(std::size_t column_index,
                                                const Value& key) const;

  /// RowIds inside [lo, hi] (either bound may be absent; a bound is
  /// excluded from the range when its *_inclusive flag is false, so strict
  /// inequalities fetch exactly the qualifying keys).
  std::optional<std::vector<RowId>> index_range(std::size_t column_index,
                                                const std::optional<Value>& lo,
                                                const std::optional<Value>& hi,
                                                bool lo_inclusive = true,
                                                bool hi_inclusive = true) const;

  /// Next value the auto-increment primary key would take (for reflection).
  std::int64_t next_auto_increment() const { return next_auto_; }
  void bump_auto_increment(std::int64_t at_least);

  /// Schema evolution (flexible-schema support, paper §3.2). Existing rows
  /// are padded with the default value / have the column removed.
  void add_column(ColumnDef column);
  void drop_column(const std::string& name);

 private:
  struct Index {
    bool unique = false;
    std::multimap<Value, RowId> entries;
  };

  Row normalize(Row row) const;
  void index_insert(RowId id, const Row& row);
  void index_erase(RowId id, const Row& row);
  void check_unique(const Row& row, std::optional<RowId> self) const;

  TableSchema schema_;
  std::vector<std::optional<Row>> rows_;
  std::size_t live_rows_ = 0;
  std::map<std::size_t, Index> indexes_;  // column index -> index
  std::int64_t next_auto_ = 1;
};

}  // namespace perfdmf::sqldb
