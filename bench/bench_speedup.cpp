// E3 — trial browser & speedup analyzer (paper §5.2, EVH1).
//
// Reproduced analysis: "Given performance data from experiments with
// varying numbers of processors, the tool automatically calculates the
// minimum, mean and maximum values for the speedup [of] every profiled
// routine" through the PerfDMF API (including the SQL aggregate path).
//
// Shape to reproduce: routines with low serial fraction track ideal
// speedup; the most serial routines saturate; the application lands in
// between. Crossover: efficiency of serial routines collapses early.
#include <cstdio>

#include "analysis/scalability.h"
#include "analysis/speedup.h"
#include "api/database_session.h"
#include "bench_json.h"
#include "io/synth.h"
#include "util/timer.h"

using namespace perfdmf;

int main() {
  bench::BenchJson json("speedup");
  api::DatabaseSession session;
  io::synth::ScalingSpec spec;

  std::printf("E3: EVH1-style speedup study (12 routines, Amdahl structure)\n");
  util::WallTimer timer;
  for (std::int32_t p = 1; p <= 64; p *= 2) {
    session.save_trial(io::synth::generate_scaling_trial(spec, p), "evh1",
                       "strong scaling");
  }
  const double archive_seconds = timer.seconds();
  std::printf("archived 7 trials (1..64 procs) in %.2f s\n\n", archive_seconds);
  json.set("archive_7_trials_s", archive_seconds);

  timer.reset();
  auto experiments = session.api().list_experiments(1);
  auto report = analysis::compute_speedup_for_experiment(session.api(),
                                                         experiments[0].id);
  const double analysis_seconds = timer.seconds();

  std::printf("%s\n", analysis::format_speedup_table(report).c_str());
  std::printf("analysis time: %.3f s\n", analysis_seconds);
  json.set("speedup_analysis_s", analysis_seconds);

  // Also exercise the SQL aggregate path the paper calls out ("requesting
  // standard SQL aggregate operations such as minimum, maximum, mean,
  // standard deviation").
  session.clear_experiment();
  session.clear_application();
  auto trials = session.get_trial_list();
  const auto& largest = trials.back();
  session.set_trial(largest.id);
  auto events = session.get_interval_events();
  std::printf("\nSQL aggregates over the %lld-proc trial (exclusive TIME):\n",
              static_cast<long long>(largest.node_count));
  std::printf("%-28s %10s %12s %12s %12s %12s\n", "routine", "n", "min", "mean",
              "max", "stddev");
  for (const auto& event : events) {
    auto s = session.api().aggregate_interval_column(largest.id, event.id,
                                                     "exclusive");
    std::printf("%-28s %10zu %12.1f %12.1f %12.1f %12.2f\n", event.name.c_str(),
                s.count, s.minimum, s.mean, s.maximum, s.std_dev);
  }

  // ---- E3b: weak-scaling companion study --------------------------------
  // Same analyzer, grown problem: per-processor work constant, so the
  // shape to reproduce is efficiency ~1 for compute routines and decaying
  // with log2(p) for the collective.
  std::printf("\nE3b: weak-scaling efficiency (work per processor constant)\n");
  std::vector<profile::TrialData> weak_family;
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> weak_trials;
  for (std::int32_t p = 1; p <= 64; p *= 4) {
    weak_family.push_back(io::synth::generate_weak_scaling_trial(spec, p));
  }
  {
    std::int32_t p = 1;
    for (const auto& trial : weak_family) {
      weak_trials.emplace_back(p, &trial);
      p *= 4;
    }
  }
  auto weak = analysis::compute_weak_scaling(weak_trials);
  std::printf("%-28s", "routine");
  for (const auto& [p, eff] : weak.routines.front().efficiency) {
    std::printf(" %6lldp", static_cast<long long>(p));
  }
  std::printf("\n");
  for (const auto& row : weak.routines) {
    if (row.efficiency.empty()) continue;
    std::printf("%-28s", row.event_name.c_str());
    for (const auto& [p, eff] : row.efficiency) std::printf(" %7.3f", eff);
    std::printf("\n");
  }

  // Communication-model fit on the strong-scaling application times
  // (T = serial + work/p + comm * log2 p).
  std::vector<analysis::ScalingObservation> observations;
  for (const auto& trial : trials) {
    const std::int64_t p = trial.node_count;
    session.set_trial(trial.id);
    auto loaded = session.load_selected_trial();
    const std::size_t metric = *loaded.find_metric("TIME");
    const std::size_t main_event = *loaded.find_event("main");
    double sum = 0.0;
    for (std::size_t t = 0; t < loaded.threads().size(); ++t) {
      sum += loaded.interval_data(main_event, t, metric)->inclusive;
    }
    observations.push_back(
        {p, sum / static_cast<double>(loaded.threads().size())});
  }
  auto fit = analysis::fit_comm_model(observations);
  std::printf("\ncomm-model fit of application time: T(p) = %.3g + %.3g/p"
              " + %.3g*log2(p)   (R^2 = %.4f)\n",
              fit.serial, fit.work, fit.comm, fit.r_squared);
  if (fit.optimal_processors() > 0.0) {
    std::printf("model optimum: ~%.0f processors (beyond this, communication"
                " dominates)\n", fit.optimal_processors());
  }
  json.set("comm_model_r_squared", fit.r_squared);
  json.write();
  return 0;
}
