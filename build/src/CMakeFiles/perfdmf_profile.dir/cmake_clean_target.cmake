file(REMOVE_RECURSE
  "libperfdmf_profile.a"
)
