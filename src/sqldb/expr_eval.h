// Expression binding and evaluation.
//
// Binding resolves column references against an ordered list of
// (qualifier, column-name) pairs describing the working row produced by
// the FROM/JOIN stage. Evaluation implements SQL three-valued logic for
// predicates: comparisons with NULL yield NULL, WHERE keeps only rows
// where the predicate is truthy.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/table.h"

namespace perfdmf::sqldb {

/// One output column of the row environment an expression evaluates over.
struct BoundColumn {
  std::string qualifier;  // table alias (lower-cased for matching)
  std::string name;       // column name
};

/// Resolve every kColumnRef in `expr` to an index into the bound row.
/// Ambiguous or unknown names throw DbError.
void bind_expr(Expr& expr, std::span<const BoundColumn> columns);

/// Values supplied for '?' placeholders.
using Params = std::vector<Value>;

/// Evaluate a bound scalar expression. Aggregate function calls are not
/// valid here (the executor computes them separately and rewrites them to
/// literals); encountering one throws DbError.
Value eval_expr(const Expr& expr, const Row& row, const Params& params);

/// True iff the value is non-NULL and nonzero (SQL truthiness for WHERE).
bool is_truthy(const Value& v);

/// SQL LIKE with % and _ wildcards.
bool like_match(const std::string& text, const std::string& pattern);

/// Collect every aggregate function call in `expr` (pointers into the
/// tree, pre-order). Nested aggregates throw DbError.
std::vector<Expr*> find_aggregates(Expr& expr);

/// True for COUNT/SUM/AVG/MIN/MAX/STDDEV/VARIANCE names.
bool is_aggregate_function(const std::string& upper_name);

}  // namespace perfdmf::sqldb
