file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/connection.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/connection.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/database.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/database.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/executor.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/executor.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/expr_eval.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/expr_eval.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/lexer.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/lexer.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/parser.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/parser.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/schema.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/schema.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/table.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/table.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/value.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/value.cpp.o.d"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/wal.cpp.o"
  "CMakeFiles/perfdmf_sqldb.dir/sqldb/wal.cpp.o.d"
  "libperfdmf_sqldb.a"
  "libperfdmf_sqldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
