file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_cli.dir/perfdmf_cli.cpp.o"
  "CMakeFiles/perfdmf_cli.dir/perfdmf_cli.cpp.o.d"
  "perfdmf_cli"
  "perfdmf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
