
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqldb/connection.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/connection.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/connection.cpp.o.d"
  "/root/repo/src/sqldb/database.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/database.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/database.cpp.o.d"
  "/root/repo/src/sqldb/executor.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/executor.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/executor.cpp.o.d"
  "/root/repo/src/sqldb/expr_eval.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/expr_eval.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/expr_eval.cpp.o.d"
  "/root/repo/src/sqldb/lexer.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/lexer.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/lexer.cpp.o.d"
  "/root/repo/src/sqldb/parser.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/parser.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/parser.cpp.o.d"
  "/root/repo/src/sqldb/schema.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/schema.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/schema.cpp.o.d"
  "/root/repo/src/sqldb/table.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/table.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/table.cpp.o.d"
  "/root/repo/src/sqldb/value.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/value.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/value.cpp.o.d"
  "/root/repo/src/sqldb/wal.cpp" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/wal.cpp.o" "gcc" "src/CMakeFiles/perfdmf_sqldb.dir/sqldb/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/perfdmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
