// Machine-readable benchmark output.
//
// Every bench_* main collects its headline numbers into a BenchJson and
// writes BENCH_<name>.json into the working directory on exit:
//   {"bench":"query","schema_version":2,"git_sha":"...","timestamp":"...",
//    "metrics":{"topk_1m_ms":12.3,...}}
// so successive runs populate a perf trajectory without scraping the
// human-readable tables off stdout. Metric keys are flat snake_case;
// values are doubles (milliseconds, rows/s, ratios — the key names the
// unit). Non-finite values (a speedup ratio over a zero denominator)
// emit as null — %g would print "inf"/"nan", which is not JSON, and a
// bench must never write a file its consumer (scripts/perfguard) cannot
// parse.
//
// schema_version lets perfguard key its PERF_RUNS loader on the layout;
// bump it when the shape of this file changes:
//   1: bench/git_sha/timestamp/metrics (PR 5)
//   2: + schema_version itself, non-finite metrics as null
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "telemetry/metrics.h"
#include "util/log.h"

namespace perfdmf::bench {

inline constexpr int kBenchJsonSchemaVersion = 2;

class BenchJson {
 public:
  /// `name` becomes BENCH_<name>.json.
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void set(const std::string& metric, double value) { metrics_[metric] = value; }

  /// Best-effort: a failure to write is reported on stderr, never thrown
  /// (a benchmark that ran to completion should still exit 0).
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::string out = "{\"bench\":\"" + telemetry::json_escape(name_) + "\"";
    out += ",\"schema_version\":" + std::to_string(kBenchJsonSchemaVersion);
    out += ",\"git_sha\":\"" + telemetry::json_escape(git_sha()) + "\"";
    out += ",\"timestamp\":\"" + util::iso8601_now() + "\"";
    out += ",\"metrics\":{";
    bool first = true;
    for (const auto& [key, value] : metrics_) {
      if (!first) out += ',';
      first = false;
      out += "\"" + telemetry::json_escape(key) + "\":";
      if (std::isfinite(value)) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        out += buf;
      } else {
        out += "null";
      }
    }
    out += "}}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

 private:
  /// PERFDMF_GIT_SHA env wins (CI can pin it); otherwise ask git;
  /// "unknown" when neither works.
  static std::string git_sha() {
    if (const char* env = std::getenv("PERFDMF_GIT_SHA"); env && *env) {
      return env;
    }
    std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (pipe == nullptr) return "unknown";
    char buf[64] = {};
    std::string sha;
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) sha = buf;
    ::pclose(pipe);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    return sha.empty() ? "unknown" : sha;
  }

  std::string name_;
  std::map<std::string, double> metrics_;  // sorted, stable output
};

}  // namespace perfdmf::bench
