#include "sqldb/lock_manager.h"

namespace perfdmf::sqldb {

StatementClass classify_statement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
    case StatementKind::kExplain:
      return StatementClass::kRead;
    case StatementKind::kBegin:
      return StatementClass::kTxnBegin;
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return StatementClass::kTxnEnd;
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete:
      return StatementClass::kWrite;
    case StatementKind::kCreateTable:
    case StatementKind::kDropTable:
    case StatementKind::kCreateView:
    case StatementKind::kDropView:
    case StatementKind::kAlterAddColumn:
    case StatementKind::kAlterDropColumn:
    case StatementKind::kCreateIndex:
      // Catalog and in-place row rewrites: must drain snapshot readers.
      return StatementClass::kDdl;
  }
  return StatementClass::kDdl;  // unreachable; conservative default
}

}  // namespace perfdmf::sqldb
