// Virtual system tables serving framework telemetry over SQL.
//
// PERFDMF_METRICS and PERFDMF_SLOW_QUERIES are reserved names resolved by
// the executor (like views) into transient materialized tables built from
// the telemetry registry / slow-query ring at query time. They never touch
// storage or the WAL, are visible through DatabaseMetaData like ordinary
// tables, and cannot be created, dropped, or written.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/table.h"

namespace perfdmf::sqldb {

inline constexpr std::string_view kMetricsTableName = "PERFDMF_METRICS";
inline constexpr std::string_view kSlowQueriesTableName = "PERFDMF_SLOW_QUERIES";

/// True when `name` is a reserved system-table name (case-insensitive).
bool is_system_table_name(std::string_view name);

/// Canonical names of every system table, sorted.
std::vector<std::string> system_table_names();

/// Column layout for reflection. Throws DbError for a non-system name.
const TableSchema& system_table_schema(std::string_view name);

/// Snapshot the live telemetry state into a transient Table the executor
/// can scan / filter / aggregate. Throws DbError for a non-system name.
std::unique_ptr<Table> materialize_system_table(std::string_view name);

}  // namespace perfdmf::sqldb
