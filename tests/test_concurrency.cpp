// Concurrency tests: a Connection serializes access internally, so
// multiple analysis threads may share one archive (the shared-repository
// deployment of paper §5.1).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/database_api.h"
#include "io/synth.h"
#include "sqldb/connection.h"

using namespace perfdmf;

TEST(Concurrency, ParallelReadersSeeConsistentData) {
  auto connection = std::make_shared<sqldb::Connection>();
  api::DatabaseAPI api(connection);
  profile::Application app;
  app.name = "shared";
  api.save_application(app);
  profile::Experiment experiment;
  experiment.application_id = app.id;
  experiment.name = "e";
  api.save_experiment(experiment);
  io::synth::TrialSpec spec;
  spec.nodes = 8;
  spec.event_count = 10;
  const std::int64_t trial_id =
      api.upload_trial(io::synth::generate_trial(spec), experiment.id);

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      try {
        for (int i = 0; i < 50; ++i) {
          auto stmt = connection->prepare(
              "SELECT COUNT(*) FROM interval_location_profile WHERE node = ?");
          stmt.set_int(1, (r + i) % 8);
          auto rs = stmt.execute_query();
          rs.next();
          if (rs.get_int(1) != 10) ++failures;
          (void)trial_id;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, ParallelWritersToDistinctTables) {
  auto connection = std::make_shared<sqldb::Connection>();
  for (int t = 0; t < 4; ++t) {
    connection->execute_update("CREATE TABLE t" + std::to_string(t) +
                               " (id INTEGER PRIMARY KEY, x INTEGER)");
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      try {
        auto stmt = connection->prepare("INSERT INTO t" + std::to_string(w) +
                                        " (x) VALUES (?)");
        for (int i = 0; i < 200; ++i) {
          stmt.set_int(1, i);
          stmt.execute_update();
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < 4; ++t) {
    auto rs = connection->execute("SELECT COUNT(*) FROM t" + std::to_string(t));
    rs.next();
    EXPECT_EQ(rs.get_int(1), 200);
  }
}

TEST(Concurrency, MixedReadersAndWriterOnOneTable) {
  auto connection = std::make_shared<sqldb::Connection>();
  connection->execute_update(
      "CREATE TABLE log (id INTEGER PRIMARY KEY, x INTEGER)");
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    try {
      auto stmt = connection->prepare("INSERT INTO log (x) VALUES (?)");
      for (int i = 0; i < 500; ++i) {
        stmt.set_int(1, i);
        stmt.execute_update();
      }
    } catch (...) {
      ++failures;
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      try {
        std::int64_t last = 0;
        while (!stop.load()) {
          auto rs = connection->execute("SELECT COUNT(*) FROM log");
          rs.next();
          const std::int64_t count = rs.get_int(1);
          if (count < last) ++failures;  // counts must be monotone
          last = count;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto rs = connection->execute("SELECT COUNT(*) FROM log");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 500);
}

TEST(Concurrency, ParallelUploadsToSeparateSessionsShareNothing) {
  // Independent in-memory archives in parallel threads: full isolation.
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      try {
        auto connection = std::make_shared<sqldb::Connection>();
        api::DatabaseAPI api(connection);
        profile::Application app;
        app.name = "w" + std::to_string(w);
        api.save_application(app);
        profile::Experiment experiment;
        experiment.application_id = app.id;
        experiment.name = "e";
        api.save_experiment(experiment);
        io::synth::TrialSpec spec;
        spec.nodes = 4;
        spec.event_count = 6;
        spec.seed = static_cast<std::uint64_t>(w);
        api.upload_trial(io::synth::generate_trial(spec), experiment.id);
        if (api.list_applications().size() != 1) ++failures;
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}
