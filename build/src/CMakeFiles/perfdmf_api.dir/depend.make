# Empty dependencies file for perfdmf_api.
# This may be replaced when dependencies are built.
