// E7 — database engine micro-benchmarks (substrate validation).
//
// The paper outsources storage to PostgreSQL/MySQL/Oracle/DB2; this repo
// implements the engine. These google-benchmark cases size the primitives
// PerfDMF leans on: bulk prepared inserts, PK point lookups, indexed range
// scans, grouped aggregates, and the event/profile join.
#include <benchmark/benchmark.h>

#include "sqldb/connection.h"

using namespace perfdmf::sqldb;

namespace {

/// Build a table shaped like interval_location_profile with `rows` rows.
std::unique_ptr<Connection> make_profile_table(std::int64_t rows) {
  auto conn = std::make_unique<Connection>();
  conn->execute_update(
      "CREATE TABLE profile (id INTEGER PRIMARY KEY, event INTEGER,"
      " node INTEGER, metric INTEGER, inclusive REAL, exclusive REAL)");
  conn->execute_update("CREATE INDEX idx_event ON profile (event)");
  conn->execute_update("CREATE INDEX idx_node ON profile (node)");
  auto stmt = conn->prepare(
      "INSERT INTO profile (event, node, metric, inclusive, exclusive)"
      " VALUES (?, ?, ?, ?, ?)");
  conn->begin();
  for (std::int64_t i = 0; i < rows; ++i) {
    stmt.set_int(1, i % 101);
    stmt.set_int(2, i / 101);
    stmt.set_int(3, 0);
    stmt.set_double(4, 100.0 + static_cast<double>(i % 997));
    stmt.set_double(5, 90.0 + static_cast<double>(i % 991));
    stmt.execute_update();
  }
  conn->commit();
  return conn;
}

void BM_PreparedInsert(benchmark::State& state) {
  Connection conn;
  conn.execute_update(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT)");
  auto stmt = conn.prepare("INSERT INTO t (a, b, c) VALUES (?, ?, ?)");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, i);
    stmt.set_double(2, static_cast<double>(i) * 0.5);
    stmt.set_string(3, "event name " + std::to_string(i % 64));
    stmt.execute_update();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedInsert);

void BM_PointLookupByPk(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  auto stmt = conn->prepare("SELECT exclusive FROM profile WHERE id = ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, 1 + (i++ % state.range(0)));
    auto rs = stmt.execute_query();
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointLookupByPk)->Arg(10000)->Arg(100000);

void BM_IndexedEventScan(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  auto stmt = conn->prepare("SELECT exclusive FROM profile WHERE event = ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, i++ % 101);
    auto rs = stmt.execute_query();
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedEventScan)->Arg(10000)->Arg(100000);

void BM_RangeScan(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  auto stmt = conn->prepare(
      "SELECT COUNT(*) FROM profile WHERE node BETWEEN ? AND ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, i % 50);
    stmt.set_int(2, i % 50 + 10);
    auto rs = stmt.execute_query();
    benchmark::DoNotOptimize(rs.row_count());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeScan)->Arg(100000);

void BM_GroupedAggregate(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  for (auto _ : state) {
    auto rs = conn->execute(
        "SELECT event, COUNT(*), AVG(exclusive), STDDEV(exclusive)"
        " FROM profile GROUP BY event");
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupedAggregate)->Arg(10000)->Arg(100000);

void BM_JoinEventProfile(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  conn->execute_update(
      "CREATE TABLE event (id INTEGER PRIMARY KEY, name TEXT)");
  auto stmt = conn->prepare("INSERT INTO event (id, name) VALUES (?, ?)");
  for (int e = 0; e < 101; ++e) {
    stmt.set_int(1, e);
    stmt.set_string(2, "routine_" + std::to_string(e));
    stmt.execute_update();
  }
  for (auto _ : state) {
    auto rs = conn->execute(
        "SELECT e.name, AVG(p.exclusive) FROM event e JOIN profile p"
        " ON p.event = e.id GROUP BY e.name");
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinEventProfile)->Arg(10000)->Arg(100000);

void BM_TransactionCommit(benchmark::State& state) {
  Connection conn;
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
  auto stmt = conn.prepare("INSERT INTO t (x) VALUES (?)");
  std::int64_t i = 0;
  for (auto _ : state) {
    conn.begin();
    for (int j = 0; j < 100; ++j) {
      stmt.set_int(1, i++);
      stmt.execute_update();
    }
    conn.commit();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_TransactionCommit);

}  // namespace

BENCHMARK_MAIN();
