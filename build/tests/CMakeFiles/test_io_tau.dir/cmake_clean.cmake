file(REMOVE_RECURSE
  "CMakeFiles/test_io_tau.dir/test_io_tau.cpp.o"
  "CMakeFiles/test_io_tau.dir/test_io_tau.cpp.o.d"
  "test_io_tau"
  "test_io_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
