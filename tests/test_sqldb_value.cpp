// Unit tests for sqldb::Value and schema coercion.
#include <gtest/gtest.h>

#include "sqldb/schema.h"
#include "sqldb/value.h"
#include "util/error.h"

using perfdmf::DbError;
using perfdmf::sqldb::ColumnDef;
using perfdmf::sqldb::coerce_for_column;
using perfdmf::sqldb::TableSchema;
using perfdmf::sqldb::Value;
using perfdmf::sqldb::ValueType;

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(std::int64_t{5}).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("hi").as_text(), "hi");
}

TEST(Value, NumericCrossAccess) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{4}).as_real(), 4.0);
  EXPECT_EQ(Value(4.9).as_int(), 4);  // truncation, like CAST
}

TEST(Value, WrongTypeAccessThrows) {
  EXPECT_THROW(Value("x").as_int(), DbError);
  EXPECT_THROW(Value(std::int64_t{1}).as_text(), DbError);
  EXPECT_THROW(Value().as_int(), DbError);
}

TEST(Value, ToStringRendersEveryType) {
  EXPECT_EQ(Value().to_string(), "NULL");
  EXPECT_EQ(Value(std::int64_t{-3}).to_string(), "-3");
  EXPECT_EQ(Value("text").to_string(), "text");
  EXPECT_EQ(Value(0.5).to_string(), "0.5");
}

TEST(Value, OrderingNullNumbersText) {
  EXPECT_LT(Value(), Value(std::int64_t{0}));
  EXPECT_LT(Value(std::int64_t{5}), Value("a"));
  EXPECT_LT(Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_LT(Value("abc"), Value("abd"));
}

TEST(Value, CrossTypeNumericComparison) {
  EXPECT_EQ(Value(std::int64_t{2}), Value(2.0));
  EXPECT_LT(Value(1.5), Value(std::int64_t{2}));
  EXPECT_GT(Value(std::int64_t{3}), Value(2.5));
}

TEST(Value, EqualValuesHashEqually) {
  EXPECT_EQ(Value(std::int64_t{7}).hash(), Value(7.0).hash());
  EXPECT_EQ(Value("s").hash(), Value("s").hash());
}

TEST(Value, LargeIntegerComparisonIsExact) {
  // Values beyond double's 53-bit mantissa must still compare correctly.
  const std::int64_t big = (1LL << 60) + 1;
  EXPECT_LT(Value(std::int64_t{big}), Value(std::int64_t{big + 1}));
  EXPECT_EQ(Value(std::int64_t{big}), Value(std::int64_t{big}));
}

// ------------------------------------------------------------------ schema

TEST(Schema, AddAndFindColumnsCaseInsensitive) {
  TableSchema schema("t");
  schema.add_column({"Id", ValueType::kInt, true, true, true, Value()});
  schema.add_column({"Name", ValueType::kText, false, false, false, Value()});
  EXPECT_EQ(schema.find_column("id").value(), 0u);
  EXPECT_EQ(schema.find_column("NAME").value(), 1u);
  EXPECT_FALSE(schema.find_column("absent"));
  EXPECT_EQ(schema.primary_key_index().value(), 0u);
}

TEST(Schema, DuplicateColumnThrows) {
  TableSchema schema("t");
  schema.add_column({"a", ValueType::kInt, false, false, false, Value()});
  EXPECT_THROW(
      schema.add_column({"A", ValueType::kText, false, false, false, Value()}),
      DbError);
}

TEST(Schema, SecondPrimaryKeyThrows) {
  TableSchema schema("t");
  schema.add_column({"a", ValueType::kInt, false, true, false, Value()});
  EXPECT_THROW(
      schema.add_column({"b", ValueType::kInt, false, true, false, Value()}),
      DbError);
}

TEST(Schema, DropColumnProtectsPkAndFk) {
  TableSchema schema("t");
  schema.add_column({"id", ValueType::kInt, false, true, false, Value()});
  schema.add_column({"ref", ValueType::kInt, false, false, false, Value()});
  schema.add_column({"extra", ValueType::kText, false, false, false, Value()});
  schema.add_foreign_key({"ref", "parent", "id"});
  EXPECT_THROW(schema.drop_column("id"), DbError);
  EXPECT_THROW(schema.drop_column("ref"), DbError);
  schema.drop_column("extra");
  EXPECT_EQ(schema.columns().size(), 2u);
}

TEST(Coerce, NullRejectedInNotNullColumn) {
  ColumnDef column{"c", ValueType::kInt, true, false, false, Value()};
  EXPECT_THROW(coerce_for_column(column, Value(), "t"), DbError);
}

TEST(Coerce, NumericCoercionBothWays) {
  ColumnDef int_column{"c", ValueType::kInt, false, false, false, Value()};
  ColumnDef real_column{"c", ValueType::kReal, false, false, false, Value()};
  EXPECT_EQ(coerce_for_column(int_column, Value(2.0), "t").type(),
            ValueType::kInt);
  EXPECT_EQ(coerce_for_column(real_column, Value(std::int64_t{2}), "t").type(),
            ValueType::kReal);
}

TEST(Coerce, TextColumnAcceptsNumbersAsText) {
  ColumnDef column{"c", ValueType::kText, false, false, false, Value()};
  EXPECT_EQ(coerce_for_column(column, Value(std::int64_t{12}), "t").as_text(),
            "12");
}

TEST(Coerce, TypeMismatchThrows) {
  ColumnDef column{"c", ValueType::kInt, false, false, false, Value()};
  EXPECT_THROW(coerce_for_column(column, Value("nope"), "t"), DbError);
}

TEST(Value, TextOrderingIsBytewise) {
  EXPECT_LT(Value("A"), Value("a"));  // 0x41 < 0x61
  EXPECT_LT(Value(""), Value("a"));
}

TEST(Value, NullEqualsNullInTotalOrder) {
  // The index/ORDER BY total order groups NULLs together (predicate
  // three-valued logic is handled separately in the evaluator).
  EXPECT_EQ(Value(), Value());
  EXPECT_EQ(Value().compare(Value()), 0);
}

TEST(Coerce, RealToIntTruncates) {
  ColumnDef column{"c", ValueType::kInt, false, false, false, Value()};
  EXPECT_EQ(coerce_for_column(column, Value(2.9), "t").as_int(), 2);
  EXPECT_EQ(coerce_for_column(column, Value(-2.9), "t").as_int(), -2);
}
