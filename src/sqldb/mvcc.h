// Multi-version concurrency control primitives for the sqldb engine.
//
// Every row mutation installs a new version stamped with the CommitStamp of
// the statement (autocommit) or transaction (explicit) that made it. Readers
// carry a ReadView — the commit timestamp they snapshotted at statement start
// plus the write-unit token that lets a writer see its own pending versions —
// and resolve each version chain against it without taking any lock.
//
// Stamp lifecycle: a stamp starts at kTsPending; commit publishes the commit
// timestamp into it (making every version it stamped visible atomically),
// rollback stores kTsAborted (making them garbage). Version chains cache the
// resolved timestamp so steady-state visibility checks never chase the stamp.
// Stamps and superseded versions are reclaimed by GC at checkpoint, which
// runs under full exclusion.
#pragma once

#include <atomic>
#include <cstdint>

namespace perfdmf::sqldb {

class Table;

/// Sentinel stamp values. Real commit timestamps start at 1 and stay far
/// below these.
inline constexpr std::uint64_t kTsPending = ~std::uint64_t{0};
inline constexpr std::uint64_t kTsAborted = ~std::uint64_t{0} - 1;
/// Highest usable view timestamp: "see every committed version".
inline constexpr std::uint64_t kTsMax = ~std::uint64_t{0} - 2;

/// The commit fate shared by every version a write unit installed.
/// `table` / `live_delta` track the live-row-count adjustment applied
/// optimistically at install time so rollback can revert it.
struct CommitStamp {
  std::atomic<std::uint64_t> ts{kTsPending};
  std::uint64_t token = 0;  // write-unit token; pending versions are visible
                            // only to the view carrying the same token
  Table* table = nullptr;
  std::int64_t live_delta = 0;
};

/// A statement's snapshot: every version committed at or before `ts` is
/// visible, plus (when `token` is non-zero) the pending versions of the
/// write unit identified by `token`.
struct ReadView {
  std::uint64_t ts = 0;
  std::uint64_t token = 0;

  /// See all committed versions (bulk load, GC, snapshot render).
  static ReadView latest() { return ReadView{kTsMax, 0}; }
};

}  // namespace perfdmf::sqldb
