// Tests for the DataSession abstraction: file-backed and database-backed
// sessions, filter semantics (paper §4).
#include <gtest/gtest.h>

#include "api/database_session.h"
#include "io/synth.h"
#include "io/tau_format.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;
using namespace perfdmf::api;

namespace {

profile::TrialData small_trial(std::int32_t nodes, std::uint64_t seed = 42) {
  io::synth::TrialSpec spec;
  spec.nodes = nodes;
  spec.event_count = 4;
  spec.seed = seed;
  return io::synth::generate_trial(spec);
}

}  // namespace

// --------------------------------------------------------- FileDataSession

TEST(FileSession, SynthesizedHierarchy) {
  FileDataSession session;
  session.add_trial(small_trial(2));
  session.add_trial(small_trial(3, 43));
  EXPECT_EQ(session.get_application_list().size(), 1u);
  EXPECT_EQ(session.get_experiment_list().size(), 1u);
  auto trials = session.get_trial_list();
  ASSERT_EQ(trials.size(), 2u);
  EXPECT_EQ(trials[0].id, 1);
  EXPECT_EQ(trials[1].id, 2);
  EXPECT_EQ(trials[1].node_count, 3);
}

TEST(FileSession, QueriesRequireSelectedTrial) {
  FileDataSession session;
  session.add_trial(small_trial(2));
  EXPECT_THROW(session.get_metrics(), InvalidArgument);
  session.set_trial(1);
  EXPECT_EQ(session.get_metrics().size(), 1u);
  EXPECT_EQ(session.get_interval_events().size(), 4u);
}

TEST(FileSession, NodeFilterScopesDataPoints) {
  FileDataSession session;
  session.add_trial(small_trial(4));
  session.set_trial(1);
  EXPECT_EQ(session.get_interval_data().size(), 16u);  // 4 events x 4 nodes
  session.set_node(1);
  auto rows = session.get_interval_data();
  EXPECT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_EQ(row.thread.node, 1);
  session.clear_node();
  EXPECT_EQ(session.get_interval_data().size(), 16u);
}

TEST(FileSession, MetricFilter) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  FileDataSession session;
  session.add_trial(io::synth::generate_trial(spec));
  session.set_trial(1);
  EXPECT_EQ(session.get_interval_data().size(), 12u);
  session.set_metric(1);
  EXPECT_EQ(session.get_interval_data().size(), 6u);
}

TEST(FileSession, AddTrialFromPathParsesAnyFormat) {
  util::ScopedTempDir dir;
  io::write_tau_profiles(small_trial(2), dir.path() / "tau_trial");
  FileDataSession session;
  const std::int64_t id =
      session.add_trial_from_path((dir.path() / "tau_trial").string());
  session.set_trial(id);
  EXPECT_EQ(session.get_interval_events().size(), 4u);
}

TEST(FileSession, InvalidTrialIdThrows) {
  FileDataSession session;
  EXPECT_THROW(session.trial_data(1), InvalidArgument);
  session.add_trial(small_trial(1));
  EXPECT_THROW(session.trial_data(0), InvalidArgument);
  EXPECT_THROW(session.trial_data(2), InvalidArgument);
}

// --------------------------------------------------------- DatabaseSession

TEST(DbSession, SaveTrialCreatesHierarchyOnDemand) {
  DatabaseSession session;
  const std::int64_t trial_id =
      session.save_trial(small_trial(2), "sweep3d", "blue runs");
  EXPECT_GT(trial_id, 0);
  auto apps = session.get_application_list();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].name, "sweep3d");
  // Re-saving under the same names reuses the hierarchy.
  session.save_trial(small_trial(4, 7), "sweep3d", "blue runs");
  EXPECT_EQ(session.get_application_list().size(), 1u);
  session.set_application(apps[0].id);
  auto experiments = session.get_experiment_list();
  ASSERT_EQ(experiments.size(), 1u);
  session.set_experiment(experiments[0].id);
  EXPECT_EQ(session.get_trial_list().size(), 2u);
}

TEST(DbSession, SelectionScopesQueries) {
  DatabaseSession session;
  session.save_trial(small_trial(2), "app1", "e1");
  session.save_trial(small_trial(2, 5), "app2", "e2");
  // After the second save, selections point at app2's trial.
  EXPECT_EQ(session.get_trial_list().size(), 1u);
  session.clear_experiment();
  session.clear_application();
  EXPECT_EQ(session.get_trial_list().size(), 2u);  // unscoped
  EXPECT_EQ(session.get_experiment_list().size(), 2u);
}

TEST(DbSession, ScopedDataQueriesMatchFileSession) {
  auto data = small_trial(3);
  DatabaseSession db_session;
  db_session.save_trial(data, "a", "e");

  FileDataSession file_session;
  file_session.add_trial(data);
  file_session.set_trial(1);

  EXPECT_EQ(db_session.get_interval_data().size(),
            file_session.get_interval_data().size());
  db_session.set_node(0);
  file_session.set_node(0);
  EXPECT_EQ(db_session.get_interval_data().size(),
            file_session.get_interval_data().size());
}

TEST(DbSession, LoadSelectedTrialRoundTrips) {
  auto data = small_trial(2);
  DatabaseSession session;
  session.save_trial(data, "a", "e");
  auto loaded = session.load_selected_trial();
  EXPECT_EQ(loaded.interval_point_count(), data.interval_point_count());
  EXPECT_EQ(loaded.events().size(), data.events().size());
}

TEST(DbSession, QueriesWithoutTrialThrow) {
  DatabaseSession session;
  EXPECT_THROW(session.get_metrics(), InvalidArgument);
  EXPECT_THROW(session.get_interval_data(), InvalidArgument);
  EXPECT_THROW(session.load_selected_trial(), InvalidArgument);
}

TEST(DbSession, AtomicDataThroughSession) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  spec.atomic_event_count = 2;
  DatabaseSession session;
  session.save_trial(io::synth::generate_trial(spec), "a", "e");
  EXPECT_EQ(session.get_atomic_events().size(), 2u);
  EXPECT_EQ(session.get_atomic_data().size(), 4u);  // 2 events x 2 nodes
  session.set_node(0);
  EXPECT_EQ(session.get_atomic_data().size(), 2u);
}


TEST(GroupFilter, ScopesBothSessionKinds) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 7;  // includes MPI-group events (7-1)/3 = 2
  auto data = io::synth::generate_trial(spec);

  std::size_t mpi_events = 0;
  for (const auto& event : data.events()) {
    if (event.group == "MPI") ++mpi_events;
  }
  ASSERT_GT(mpi_events, 0u);

  FileDataSession files;
  files.add_trial(data);
  files.set_trial(1);
  files.set_group("MPI");
  EXPECT_EQ(files.get_interval_data().size(), mpi_events * 2);
  files.clear_group();
  EXPECT_EQ(files.get_interval_data().size(), data.interval_point_count());

  DatabaseSession db;
  db.save_trial(data, "a", "e");
  db.set_group("MPI");
  EXPECT_EQ(db.get_interval_data().size(), mpi_events * 2);
  db.set_group("no-such-group");
  EXPECT_TRUE(db.get_interval_data().empty());
  db.clear_group();
  EXPECT_EQ(db.get_interval_data().size(), data.interval_point_count());
}
