file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_profile.dir/profile/callpath.cpp.o"
  "CMakeFiles/perfdmf_profile.dir/profile/callpath.cpp.o.d"
  "CMakeFiles/perfdmf_profile.dir/profile/data_model.cpp.o"
  "CMakeFiles/perfdmf_profile.dir/profile/data_model.cpp.o.d"
  "CMakeFiles/perfdmf_profile.dir/profile/derived.cpp.o"
  "CMakeFiles/perfdmf_profile.dir/profile/derived.cpp.o.d"
  "CMakeFiles/perfdmf_profile.dir/profile/summary.cpp.o"
  "CMakeFiles/perfdmf_profile.dir/profile/summary.cpp.o.d"
  "CMakeFiles/perfdmf_profile.dir/profile/trial_data.cpp.o"
  "CMakeFiles/perfdmf_profile.dir/profile/trial_data.cpp.o.d"
  "libperfdmf_profile.a"
  "libperfdmf_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
