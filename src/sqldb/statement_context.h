// Per-statement governance context: deadline, cooperative cancellation,
// and memory budget accounting.
//
// A Connection installs one StatementContext (thread-local) around each
// top-level statement it runs. The executor's row loops call poll() at
// row granularity — it counts ticks and only touches the clock every
// kPollStride rows, so the unarmed cost is one thread-local increment.
// Lock acquisition and admission waits call check_now() between bounded
// wait slices so a stalled writer cannot hang a cancelled reader.
//
// Memory accounting: memory-hungry operators (hash-join build tables,
// group-by hash tables, Top-K heaps) charge() approximate bytes as they
// grow. Crossing the soft budget returns false — the operator abandons
// its hash/heap strategy and degrades to the PR 4 fallback (index
// nested loop / ordered map / full sort), counted in gov.mem_degraded.
// Crossing the hard cap (4x the soft budget by default) throws
// DbError{kMemBudget}: the statement fails cleanly instead of OOM-ing
// the process.
#pragma once

#include <atomic>
#include <cstdint>

#include "telemetry/metrics.h"
#include "util/deadline.h"

namespace perfdmf::sqldb {

namespace detail {
// Governance counters, shared by the context, the admission governor,
// and the degraded-mode machinery (registry-owned; resolved once).
inline telemetry::Counter& gov_timeouts() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("gov.timeouts");
  return c;
}
inline telemetry::Counter& gov_cancellations() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("gov.cancellations");
  return c;
}
inline telemetry::Counter& gov_admission_rejected() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("gov.admission_rejected");
  return c;
}
inline telemetry::Counter& gov_mem_degraded() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("gov.mem_degraded");
  return c;
}
inline telemetry::Counter& gov_readonly_entered() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("gov.readonly_entered");
  return c;
}
inline telemetry::Counter& gov_readonly_exited() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::instance().counter("gov.readonly_exited");
  return c;
}
}  // namespace detail

class StatementContext {
 public:
  /// Clock reads happen once per this many poll() ticks.
  static constexpr std::uint32_t kPollStride = 256;

  util::Deadline deadline;
  /// Owned by the Connection; set from any thread. Cleared when the
  /// cancellation is delivered so the connection stays usable.
  std::atomic<bool>* cancel = nullptr;
  std::uint64_t mem_soft_bytes = 0;  // 0 = unlimited
  std::uint64_t mem_hard_bytes = 0;  // 0 = unlimited

  StatementContext() = default;
  /// Movable so Connection::make_statement_context can return by value.
  /// The atomics make the default move ill-formed; moving is only legal
  /// before the context is installed (no concurrent observers yet).
  StatementContext(StatementContext&& other) noexcept
      : deadline(other.deadline),
        cancel(other.cancel),
        mem_soft_bytes(other.mem_soft_bytes),
        mem_hard_bytes(other.mem_hard_bytes),
        tick_(other.tick_),
        mem_used_(other.mem_used_),
        mem_degraded_(other.mem_degraded_),
        pending_durable_seq_(other.pending_durable_seq_),
        rows_polled_(other.rows_polled_.load(std::memory_order_relaxed)),
        phase_label_(other.phase_label_.load(std::memory_order_relaxed)) {}
  StatementContext(const StatementContext&) = delete;
  StatementContext& operator=(const StatementContext&) = delete;

  /// The context installed for the statement this thread is currently
  /// executing, or nullptr outside statement scope (e.g. WAL replay).
  static StatementContext* current();

  /// Row-batch cancellation point: cheap tick, full check every
  /// kPollStride calls. The tick count doubles as the "rows so far"
  /// progress figure, published (at stride granularity) for the
  /// PERFDMF_STATEMENTS live table.
  void poll() {
    if (++tick_ % kPollStride == 0) {
      rows_polled_.store(tick_, std::memory_order_relaxed);
      check_now();
    }
  }

  /// Rows processed so far, at kPollStride granularity. Readable from
  /// any thread while the statement runs (introspection).
  std::uint64_t rows_polled() const {
    return rows_polled_.load(std::memory_order_relaxed);
  }

  /// Coarse current-phase label ("execute" by default; wait sites set
  /// "admission" / "lock_wait" / "fsync" for their duration). Values are
  /// string literals, so cross-thread reads are safe.
  const char* phase_label() const {
    return phase_label_.load(std::memory_order_relaxed);
  }
  void set_phase_label(const char* label) {
    phase_label_.store(label, std::memory_order_relaxed);
  }

  /// Immediate check: throws DbError{kCancelled} if the cancel flag is
  /// set (consuming it), DbError{kTimeout} if the deadline has expired.
  void check_now();

  /// Account `bytes` against the statement budget. Returns false once
  /// the soft budget is exceeded (caller should degrade to a leaner
  /// strategy); throws DbError{kMemBudget} past the hard cap.
  bool charge(std::uint64_t bytes);
  void release(std::uint64_t bytes) {
    mem_used_ = bytes < mem_used_ ? mem_used_ - bytes : 0;
  }
  std::uint64_t mem_used() const { return mem_used_; }

  /// Record that an operator degraded under memory pressure (counted
  /// once per statement in gov.mem_degraded; EXPLAIN-visible flag).
  void note_mem_degraded();
  bool mem_degraded() const { return mem_degraded_; }

  /// Group-commit hand-off: when a statement's WAL write deferred its
  /// fsync, the Database records the WAL sequence number here and the
  /// Connection awaits durability AFTER releasing the statement's locks —
  /// that is what lets one leader fsync cover many queued commits.
  void set_pending_durable(std::uint64_t seq) { pending_durable_seq_ = seq; }
  std::uint64_t take_pending_durable() {
    const std::uint64_t seq = pending_durable_seq_;
    pending_durable_seq_ = 0;
    return seq;
  }

 private:
  std::uint32_t tick_ = 0;
  std::uint64_t mem_used_ = 0;
  bool mem_degraded_ = false;
  std::uint64_t pending_durable_seq_ = 0;  // 0 = nothing awaiting fsync
  std::atomic<std::uint64_t> rows_polled_{0};
  std::atomic<const char*> phase_label_{"execute"};
};

/// Sets the context's coarse phase label for a scope (wait sites), then
/// restores the previous label. Null context is a no-op.
class ScopedPhaseLabel {
 public:
  ScopedPhaseLabel(StatementContext* ctx, const char* label) : ctx_(ctx) {
    if (ctx_ != nullptr) {
      prev_ = ctx_->phase_label();
      ctx_->set_phase_label(label);
    }
  }
  ~ScopedPhaseLabel() {
    if (ctx_ != nullptr) ctx_->set_phase_label(prev_);
  }
  ScopedPhaseLabel(const ScopedPhaseLabel&) = delete;
  ScopedPhaseLabel& operator=(const ScopedPhaseLabel&) = delete;

 private:
  StatementContext* ctx_;
  const char* prev_ = nullptr;
};

/// Accounts one operator's approximate footprint against the statement
/// budget for the operator's lifetime; the running total is released on
/// destruction (matching when the operator's state is actually freed).
/// A null context makes every charge succeed.
class ScopedMemCharge {
 public:
  explicit ScopedMemCharge(StatementContext* ctx) : ctx_(ctx) {}
  ~ScopedMemCharge() {
    if (ctx_ != nullptr) ctx_->release(charged_);
  }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;

  /// False once the statement's soft budget is breached (the operator
  /// should degrade); throws DbError{kMemBudget} past the hard cap.
  bool charge(std::uint64_t bytes) {
    charged_ += bytes;
    return ctx_ == nullptr || ctx_->charge(bytes);
  }

  /// Total bytes charged over this operator's lifetime (EXPLAIN ANALYZE).
  std::uint64_t charged() const { return charged_; }

 private:
  StatementContext* ctx_;
  std::uint64_t charged_ = 0;
};

/// Installs `ctx` as the thread's current statement context for a
/// statement's execution scope (nesting restores the previous one).
class ScopedStatementContext {
 public:
  explicit ScopedStatementContext(StatementContext& ctx);
  ~ScopedStatementContext();
  ScopedStatementContext(const ScopedStatementContext&) = delete;
  ScopedStatementContext& operator=(const ScopedStatementContext&) = delete;

 private:
  StatementContext* prev_;
};

}  // namespace perfdmf::sqldb
