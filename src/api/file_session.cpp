#include "api/data_session.h"
#include "io/detect.h"
#include "util/error.h"

namespace perfdmf::api {

std::int64_t FileDataSession::add_trial(profile::TrialData trial) {
  trials_.push_back(std::move(trial));
  const std::int64_t id = static_cast<std::int64_t>(trials_.size());
  trials_.back().trial().id = id;
  return id;
}

std::int64_t FileDataSession::add_trial_from_path(const std::string& path) {
  return add_trial(io::load_profile(path));
}

const profile::TrialData& FileDataSession::trial_data(std::int64_t trial_id) const {
  if (trial_id < 1 || trial_id > static_cast<std::int64_t>(trials_.size())) {
    throw InvalidArgument("no trial with id " + std::to_string(trial_id));
  }
  return trials_[static_cast<std::size_t>(trial_id - 1)];
}

const profile::TrialData& FileDataSession::selected() const {
  if (!trial_) throw InvalidArgument("no trial selected on this session");
  return trial_data(*trial_);
}

std::vector<profile::Application> FileDataSession::get_application_list() {
  profile::Application app;
  app.id = 1;
  app.name = "(files)";
  return {app};
}

std::vector<profile::Experiment> FileDataSession::get_experiment_list() {
  profile::Experiment experiment;
  experiment.id = 1;
  experiment.application_id = 1;
  experiment.name = "(files)";
  return {experiment};
}

std::vector<profile::Trial> FileDataSession::get_trial_list() {
  std::vector<profile::Trial> out;
  for (const auto& data : trials_) {
    profile::Trial trial = data.trial();
    trial.experiment_id = 1;
    out.push_back(std::move(trial));
  }
  return out;
}

std::vector<profile::Metric> FileDataSession::get_metrics() {
  const auto& data = selected();
  std::vector<profile::Metric> out;
  for (std::size_t m = 0; m < data.metrics().size(); ++m) {
    profile::Metric metric = data.metrics()[m];
    metric.id = static_cast<std::int64_t>(m);
    out.push_back(std::move(metric));
  }
  return out;
}

std::vector<profile::IntervalEvent> FileDataSession::get_interval_events() {
  const auto& data = selected();
  std::vector<profile::IntervalEvent> out;
  for (std::size_t e = 0; e < data.events().size(); ++e) {
    profile::IntervalEvent event = data.events()[e];
    event.id = static_cast<std::int64_t>(e);
    out.push_back(std::move(event));
  }
  return out;
}

std::vector<profile::AtomicEvent> FileDataSession::get_atomic_events() {
  const auto& data = selected();
  std::vector<profile::AtomicEvent> out;
  for (std::size_t a = 0; a < data.atomic_events().size(); ++a) {
    profile::AtomicEvent event = data.atomic_events()[a];
    event.id = static_cast<std::int64_t>(a);
    out.push_back(std::move(event));
  }
  return out;
}

std::vector<IntervalProfileRow> FileDataSession::get_interval_data() {
  const auto& data = selected();
  std::vector<IntervalProfileRow> out;
  data.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                             const profile::IntervalDataPoint& p) {
    const profile::ThreadId& id = data.threads()[t];
    if (node_ && id.node != *node_) return;
    if (context_ && id.context != *context_) return;
    if (thread_ && id.thread != *thread_) return;
    if (metric_ && static_cast<std::int64_t>(m) != *metric_) return;
    if (group_ && data.events()[e].group != *group_) return;
    IntervalProfileRow row;
    row.event_id = static_cast<std::int64_t>(e);
    row.event_name = data.events()[e].name;
    row.thread = id;
    row.metric_id = static_cast<std::int64_t>(m);
    row.data = p;
    out.push_back(std::move(row));
  });
  return out;
}

std::vector<AtomicProfileRow> FileDataSession::get_atomic_data() {
  const auto& data = selected();
  std::vector<AtomicProfileRow> out;
  data.for_each_atomic([&](std::size_t a, std::size_t t,
                           const profile::AtomicDataPoint& p) {
    const profile::ThreadId& id = data.threads()[t];
    if (node_ && id.node != *node_) return;
    if (context_ && id.context != *context_) return;
    if (thread_ && id.thread != *thread_) return;
    AtomicProfileRow row;
    row.event_id = static_cast<std::int64_t>(a);
    row.event_name = data.atomic_events()[a].name;
    row.thread = id;
    row.data = p;
    out.push_back(std::move(row));
  });
  return out;
}

}  // namespace perfdmf::api
