file(REMOVE_RECURSE
  "CMakeFiles/test_sqldb_persist.dir/test_sqldb_persist.cpp.o"
  "CMakeFiles/test_sqldb_persist.dir/test_sqldb_persist.cpp.o.d"
  "test_sqldb_persist"
  "test_sqldb_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sqldb_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
