// mpiP report importer (paper §3.1; Vetter/Chambreau's lightweight MPI
// profiler). mpiP writes one text report per run with per-task sections.
//
// Sections parsed:
//   "@--- MPI Time (seconds) ---"            per-task AppTime / MPITime
//   "@--- Callsite Time statistics ---"      per-task per-callsite timing
//
// Mapping: each MPI task becomes node N (context 0, thread 0). AppTime
// becomes the inclusive time of the synthetic "Application" event; each
// callsite becomes an event "MPI_<op>() [site <id>]" whose exclusive time
// is Count * Mean. Times land in the "TIME" metric in microseconds.
#pragma once

#include <filesystem>

#include "io/data_source.h"

namespace perfdmf::io {

class MpiPDataSource : public DataSource {
 public:
  explicit MpiPDataSource(std::filesystem::path file) : file_(std::move(file)) {}

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kMpiP; }

  static profile::TrialData parse(const std::string& content);

 private:
  std::filesystem::path file_;
};

/// Render a trial as an mpiP-style report (synthetic generator support).
/// The trial must have an "Application" event and MPI callsite events
/// shaped like the importer produces.
std::string render_mpip_report(const profile::TrialData& trial);

}  // namespace perfdmf::io
