#include "sqldb/table.h"

#include <algorithm>

#include "util/error.h"

namespace perfdmf::sqldb {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  // The primary key always gets a unique index: PerfDMF point lookups
  // (trial by id, event by id) must not scan.
  if (auto pk = schema_.primary_key_index()) {
    create_index(*pk, /*unique=*/true);
  }
}

Row Table::normalize(Row row) const {
  const auto& columns = schema_.columns();
  if (row.size() != columns.size()) {
    throw DbError("table " + schema_.name() + " expects " +
                  std::to_string(columns.size()) + " values, got " +
                  std::to_string(row.size()));
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    row[i] = coerce_for_column(columns[i], row[i], schema_.name());
  }
  return row;
}

void Table::check_unique(const Row& row, std::optional<RowId> self) const {
  for (const auto& [column, index] : indexes_) {
    if (!index.unique) continue;
    const Value& key = row[column];
    if (key.is_null()) continue;
    auto [lo, hi] = index.entries.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      if (self && it->second == *self) continue;
      throw DbError("unique constraint violated on " + schema_.name() + "." +
                    schema_.columns()[column].name + " = " + key.to_string());
    }
  }
}

RowId Table::insert(Row row) {
  // Auto-increment: fill a NULL primary key before validation (normalize
  // would reject the NULL), and track the high-water mark.
  if (auto pk = schema_.primary_key_index()) {
    const ColumnDef& pk_col = schema_.columns()[*pk];
    if (row.size() == schema_.columns().size() && pk_col.auto_increment &&
        row[*pk].is_null()) {
      row[*pk] = Value(next_auto_);
    }
  }
  row = normalize(std::move(row));
  if (auto pk = schema_.primary_key_index()) {
    if (row[*pk].is_null()) {
      throw DbError("NULL primary key in table " + schema_.name());
    }
    if (schema_.columns()[*pk].type == ValueType::kInt) {
      bump_auto_increment(row[*pk].as_int() + 1);
    }
  }
  check_unique(row, std::nullopt);

  const RowId id = rows_.size();
  rows_.emplace_back(std::move(row));
  ++live_rows_;
  index_insert(id, *rows_[id]);
  return id;
}

void Table::update(RowId id, Row row) {
  if (!is_live(id)) throw DbError("update of dead row in " + schema_.name());
  row = normalize(std::move(row));
  check_unique(row, id);
  index_erase(id, *rows_[id]);
  rows_[id] = std::move(row);
  index_insert(id, *rows_[id]);
}

void Table::erase(RowId id) {
  if (!is_live(id)) throw DbError("delete of dead row in " + schema_.name());
  index_erase(id, *rows_[id]);
  rows_[id].reset();
  --live_rows_;
}

const Row& Table::row(RowId id) const {
  if (!is_live(id)) throw DbError("access to dead row in " + schema_.name());
  return *rows_[id];
}

void Table::create_index(std::size_t column_index, bool unique) {
  if (column_index >= schema_.columns().size()) {
    throw DbError("index column out of range in " + schema_.name());
  }
  auto [it, inserted] = indexes_.try_emplace(column_index);
  if (!inserted) {
    it->second.unique = it->second.unique || unique;
    return;
  }
  it->second.unique = unique;
  scan([&](RowId id, const Row& row) {
    it->second.entries.emplace(row[column_index], id);
  });
}

bool Table::has_index(std::size_t column_index) const {
  return indexes_.count(column_index) > 0;
}

bool Table::has_unique_index(std::size_t column_index) const {
  auto it = indexes_.find(column_index);
  return it != indexes_.end() && it->second.unique;
}

std::optional<std::vector<RowId>> Table::index_equal(std::size_t column_index,
                                                     const Value& key) const {
  auto it = indexes_.find(column_index);
  if (it == indexes_.end()) return std::nullopt;
  std::vector<RowId> out;
  auto [lo, hi] = it->second.entries.equal_range(key);
  for (auto e = lo; e != hi; ++e) out.push_back(e->second);
  return out;
}

std::optional<std::vector<RowId>> Table::index_range(
    std::size_t column_index, const std::optional<Value>& lo,
    const std::optional<Value>& hi, bool lo_inclusive,
    bool hi_inclusive) const {
  auto it = indexes_.find(column_index);
  if (it == indexes_.end()) return std::nullopt;
  const auto& entries = it->second.entries;
  // Exclusive bounds flip lower_bound/upper_bound so a strict inequality
  // fetches exactly the qualifying keys instead of over-fetching the
  // boundary key's rows.
  auto begin = lo ? (lo_inclusive ? entries.lower_bound(*lo)
                                  : entries.upper_bound(*lo))
                  : entries.begin();
  auto end = hi ? (hi_inclusive ? entries.upper_bound(*hi)
                                : entries.lower_bound(*hi))
                : entries.end();
  if (lo && hi) {
    // Contradictory bounds (lo above hi) would put `begin` past `end`;
    // the iteration below must not run in that case.
    const int c = lo->compare(*hi);
    if (c > 0 || (c == 0 && !(lo_inclusive && hi_inclusive))) {
      return std::vector<RowId>{};
    }
  }
  std::vector<RowId> out;
  for (auto e = begin; e != end; ++e) {
    if (e->first.is_null()) continue;  // NULLs never match range predicates
    out.push_back(e->second);
  }
  return out;
}

void Table::bump_auto_increment(std::int64_t at_least) {
  next_auto_ = std::max(next_auto_, at_least);
}

void Table::add_column(ColumnDef column) {
  if (column.primary_key) {
    throw DbError("cannot add a primary key column to existing table " +
                  schema_.name());
  }
  if (column.not_null && column.default_value.is_null()) {
    throw DbError("added NOT NULL column '" + column.name +
                  "' requires a DEFAULT value");
  }
  const Value fill = column.default_value;
  schema_.add_column(std::move(column));
  for (auto& slot : rows_) {
    if (slot) slot->push_back(fill);
  }
}

void Table::drop_column(const std::string& name) {
  const std::size_t index = schema_.column_index_or_throw(name);
  if (indexes_.count(index)) {
    throw DbError("cannot drop indexed column '" + name + "'");
  }
  schema_.drop_column(name);
  // Shift index keys above the removed column down by one.
  std::map<std::size_t, Index> remapped;
  for (auto& [col, idx] : indexes_) {
    remapped.emplace(col > index ? col - 1 : col, std::move(idx));
  }
  indexes_ = std::move(remapped);
  for (auto& slot : rows_) {
    if (slot) slot->erase(slot->begin() + static_cast<std::ptrdiff_t>(index));
  }
}

void Table::index_insert(RowId id, const Row& row) {
  for (auto& [column, index] : indexes_) {
    index.entries.emplace(row[column], id);
  }
}

void Table::index_erase(RowId id, const Row& row) {
  for (auto& [column, index] : indexes_) {
    auto [lo, hi] = index.entries.equal_range(row[column]);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        index.entries.erase(it);
        break;
      }
    }
  }
}

}  // namespace perfdmf::sqldb
