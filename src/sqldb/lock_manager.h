// Reader-writer concurrency for the sqldb engine.
//
// One LockManager guards one Database. Statements are classified once
// (at parse time, from the AST) into read-only and mutating kinds:
// SELECTs take the lock shared so any number of read-only queries run
// in parallel, while DML, DDL, and checkpoints take it exclusive. A
// transaction holds the exclusive lock from BEGIN to COMMIT/ROLLBACK,
// so other connections observe either the pre-begin or the post-commit
// state — never a partially applied transaction.
//
// Transactions are thread-affine: the thread that issues BEGIN owns the
// exclusive lock and must issue the matching COMMIT/ROLLBACK. While a
// thread owns a transaction, all of its statements (on any connection
// to the same database) pass through without re-locking.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <shared_mutex>
#include <thread>

#include "sqldb/ast.h"
#include "sqldb/statement_context.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace perfdmf::sqldb {

namespace detail {
/// Shared lock-wait histogram for every LockManager in the process
/// (the registry owns it; the reference is resolved once).
inline telemetry::Histogram& lock_wait_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::instance().histogram("sqldb.lock.wait_micros");
  return h;
}
}  // namespace detail

/// How a statement interacts with the database lock.
enum class StatementClass {
  kRead,      // SELECT: shared lock for the statement
  kWrite,     // DML / DDL: exclusive lock for the statement
  kTxnBegin,  // BEGIN: acquire exclusive, hold across statements
  kTxnEnd,    // COMMIT / ROLLBACK: release the transaction's lock
};

StatementClass classify_statement(const Statement& stmt);

/// Lock acquisition policy. kSerialized reproduces the old behaviour
/// (one global mutex, every statement exclusive); it exists so the
/// benchmarks can measure the read-scalability win and must only be
/// switched while no statement is in flight.
enum class ConcurrencyMode {
  kSharedRead,  // readers in parallel (default)
  kSerialized,  // legacy: every statement exclusive
};

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquire shared (read) access. With a governed context, the wait is
  /// bounded: the acquisition loop re-checks the statement's deadline
  /// and cancel flag every kWaitSlice, so a stalled writer cannot hang
  /// a reader past its deadline (throws DbError{kTimeout|kCancelled}).
  void lock_shared(StatementContext* ctx = nullptr) {
    if (rw_.try_lock_shared()) return;  // uncontended: skip wait timing
    telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                     &detail::lock_wait_histogram());
    if (!governed(ctx)) {
      rw_.lock_shared();
      return;
    }
    while (!rw_.try_lock_shared_for(wait_slice(ctx))) ctx->check_now();
  }
  void unlock_shared() { rw_.unlock_shared(); }

  /// Acquire exclusive access; same bounded-wait contract as
  /// lock_shared() when a governed context is supplied.
  void lock(StatementContext* ctx = nullptr) {
    if (rw_.try_lock()) return;  // uncontended: skip wait timing
    telemetry::PhaseTimer wait_phase(telemetry::Phase::kLockWait,
                                     &detail::lock_wait_histogram());
    if (!governed(ctx)) {
      rw_.lock();
      return;
    }
    while (!rw_.try_lock_for(wait_slice(ctx))) ctx->check_now();
  }
  void unlock() { rw_.unlock(); }

  /// BEGIN: take the exclusive lock and record the owning thread so the
  /// transaction's own statements pass through without re-locking.
  void acquire_transaction(StatementContext* ctx = nullptr) {
    lock(ctx);
    txn_owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  /// COMMIT / ROLLBACK: drop ownership and release. Must run on the
  /// thread that acquired the transaction.
  void release_transaction() {
    txn_owner_.store(std::thread::id{}, std::memory_order_release);
    rw_.unlock();
  }

  bool owned_by_this_thread() const {
    return txn_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  void set_mode(ConcurrencyMode mode) {
    mode_.store(mode, std::memory_order_relaxed);
  }
  ConcurrencyMode mode() const {
    return mode_.load(std::memory_order_relaxed);
  }

 private:
  /// Bounded-wait slice: short enough that cancellation and timeout are
  /// observed promptly, long enough that the retry loop is cheap.
  static constexpr std::chrono::milliseconds kWaitSlice{10};

  static bool governed(const StatementContext* ctx) {
    return ctx != nullptr && (ctx->deadline.armed() || ctx->cancel != nullptr);
  }
  static std::chrono::milliseconds wait_slice(const StatementContext* ctx) {
    const auto slice = ctx->deadline.remaining_or(kWaitSlice);
    // Never sleep zero (spin) — one final short slice, then check_now()
    // delivers the timeout.
    return std::chrono::milliseconds(
        std::min<std::int64_t>(std::max<std::int64_t>(slice.count(), 1),
                               kWaitSlice.count()));
  }

  std::shared_timed_mutex rw_;
  std::atomic<std::thread::id> txn_owner_{};
  std::atomic<ConcurrencyMode> mode_{ConcurrencyMode::kSharedRead};
};

/// RAII statement-scope guard. Takes the lock shared for read-only
/// statements (exclusive when the manager is serialized), exclusive for
/// mutating ones, and nothing at all when the calling thread already
/// owns the database's transaction lock.
class StatementGuard {
 public:
  StatementGuard(LockManager& locks, bool read_only,
                 StatementContext* ctx = nullptr)
      : locks_(locks) {
    if (locks_.owned_by_this_thread()) {
      held_ = Held::kNone;
      return;
    }
    // Lock-wait timing lives inside the manager's lock paths and only
    // fires on contention, so the uncontended fast path costs nothing.
    if (read_only && locks_.mode() == ConcurrencyMode::kSharedRead) {
      locks_.lock_shared(ctx);
      held_ = Held::kShared;
    } else {
      locks_.lock(ctx);
      held_ = Held::kExclusive;
    }
  }

  ~StatementGuard() {
    switch (held_) {
      case Held::kNone: break;
      case Held::kShared: locks_.unlock_shared(); break;
      case Held::kExclusive: locks_.unlock(); break;
    }
  }

  StatementGuard(const StatementGuard&) = delete;
  StatementGuard& operator=(const StatementGuard&) = delete;

 private:
  enum class Held { kNone, kShared, kExclusive };

  LockManager& locks_;
  Held held_ = Held::kNone;
};

}  // namespace perfdmf::sqldb
