// End-to-end integration tests exercising the full pipeline the paper
// describes: synthesize profiles on disk in multiple tool formats ->
// import through the translators -> store in the relational archive ->
// query through the API -> run toolkit analyses -> save results back.
#include <gtest/gtest.h>

#include "analysis/kmeans.h"
#include "analysis/speedup.h"
#include "io/csv_export.h"
#include "api/database_session.h"
#include "io/detect.h"
#include "io/hpm_format.h"
#include "io/synth.h"
#include "io/tau_format.h"
#include "io/xml_io.h"
#include "profile/derived.h"
#include "util/file.h"
#include "util/strings.h"

using namespace perfdmf;
using namespace perfdmf::api;

TEST(Integration, MultiFormatArchiveLikeParaProf) {
  // Paper Fig. 2: one database archive holding HPMToolkit, mpiP and TAU
  // trials of the same application.
  util::ScopedTempDir dir;

  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 5;
  auto tau_trial = io::synth::generate_trial(spec);
  io::synth::write_as_tau(tau_trial, dir.path() / "tau");

  spec.extra_metrics = {"PM_FPU0_CMPL"};
  auto hpm_trial = io::synth::generate_trial(spec);
  io::synth::write_as_hpm(hpm_trial, dir.path() / "hpm");

  auto mpip_trial = io::synth::generate_mpip_style_trial(spec);
  io::synth::write_as_mpip(mpip_trial, dir.path() / "run.mpiP");

  DatabaseSession session;
  // TAU: directory; mpiP: file; HPM: per-process files merged.
  session.save_trial(io::load_profile(dir.path() / "tau"), "sppm", "mixed tools");
  session.save_trial(io::load_profile(dir.path() / "run.mpiP"), "sppm",
                     "mixed tools");
  profile::TrialData merged_hpm;
  for (const auto& f : util::list_files(dir.path() / "hpm")) {
    io::HpmDataSource::parse_into(util::read_file(f), merged_hpm);
  }
  merged_hpm.infer_dimensions();
  merged_hpm.recompute_derived_fields();
  merged_hpm.trial().name = "hpm run";
  session.save_trial(merged_hpm, "sppm", "mixed tools");

  session.clear_application();
  session.clear_experiment();
  auto trials = session.get_trial_list();
  ASSERT_EQ(trials.size(), 3u);

  // Each trial browsable through the same API.
  for (const auto& trial : trials) {
    session.set_trial(trial.id);
    EXPECT_FALSE(session.get_interval_events().empty());
    EXPECT_FALSE(session.get_interval_data().empty());
  }
}

TEST(Integration, SpeedupStudyThroughDatabase) {
  // Paper §5.2: EVH1-style speedup analysis over archived trials.
  DatabaseSession session;
  io::synth::ScalingSpec spec;
  for (std::int32_t p : {1, 2, 4, 8}) {
    session.save_trial(io::synth::generate_scaling_trial(spec, p), "evh1",
                       "strong scaling");
  }
  auto experiments = session.api().list_experiments(1);
  ASSERT_EQ(experiments.size(), 1u);
  auto report = analysis::compute_speedup_for_experiment(session.api(),
                                                         experiments[0].id);
  EXPECT_EQ(report.base_processors, 1);
  ASSERT_FALSE(report.application.points.empty());
  // Application speedup at p=8 should be clearly superlinear-free and > 2.
  const auto& last = report.application.points.back();
  EXPECT_EQ(last.processors, 8);
  EXPECT_GT(last.mean_speedup, 2.0);
  EXPECT_LT(last.mean_speedup, 8.5);
}

TEST(Integration, PerfExplorerWorkflowWithResultSaveBack) {
  // Paper §5.3: cluster a large trial, summarize, store results via the
  // extended schema.
  io::synth::ClusterSpec spec;
  spec.threads = 64;
  spec.cluster_count = 2;
  auto planted = io::synth::generate_clustered_trial(spec);

  DatabaseSession session;
  const std::int64_t trial_id =
      session.save_trial(planted.trial, "sppm", "frost 64");

  auto loaded = session.load_selected_trial();
  auto features = analysis::thread_features(loaded);
  analysis::KMeansOptions options;
  options.k = 2;
  auto result =
      analysis::kmeans(features.values, features.rows, features.cols, options);
  EXPECT_GT(analysis::adjusted_rand_index(result.assignment,
                                          planted.ground_truth),
            0.9);

  std::string content = "k=2 sizes=";
  for (std::size_t s : result.cluster_sizes) {
    content += std::to_string(s) + ",";
  }
  session.api().save_analysis_result(trial_id, "kmeans", "clustering", content);
  auto results = session.api().list_analysis_results(trial_id);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].kind, "clustering");
}

TEST(Integration, DerivedMetricPipeline) {
  // Paper §3.2/§4: compute FLOP rate from two measured metrics and save it
  // back to the archived trial.
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 4;
  spec.extra_metrics = {"PAPI_FP_OPS"};
  auto data = io::synth::generate_trial(spec);

  DatabaseSession session;
  const std::int64_t trial_id = session.save_trial(data, "app", "exp");

  auto working = session.load_selected_trial();
  profile::derive_ratio(working, "FLOP_RATE", "PAPI_FP_OPS", "TIME");
  session.api().save_derived_metric(trial_id, working, "FLOP_RATE");

  auto metrics = session.get_metrics();
  ASSERT_EQ(metrics.size(), 3u);
  session.set_metric(metrics[2].id);
  auto rows = session.get_interval_data();
  EXPECT_EQ(rows.size(), 16u);  // 4 events x 4 threads
  for (const auto& row : rows) EXPECT_GE(row.data.exclusive, 0.0);
}

TEST(Integration, XmlExportOfDatabaseTrialReimports) {
  // Common XML as the interchange layer: archive -> XML -> fresh archive.
  io::synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 4;
  spec.atomic_event_count = 1;
  auto data = io::synth::generate_trial(spec);

  DatabaseSession first;
  first.save_trial(data, "a", "e");
  auto exported = io::export_xml(first.load_selected_trial());

  DatabaseSession second;
  second.save_trial(io::import_xml(exported), "a", "e");
  auto reloaded = second.load_selected_trial();
  EXPECT_EQ(reloaded.interval_point_count(), data.interval_point_count());
  EXPECT_EQ(reloaded.atomic_point_count(), data.atomic_point_count());
}

TEST(Integration, TauRoundTripThroughArchiveAndBack) {
  util::ScopedTempDir dir;
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.contexts_per_node = 2;
  spec.event_count = 6;
  spec.extra_metrics = {"PAPI_L1_DCM"};
  auto original = io::synth::generate_trial(spec);
  io::synth::write_as_tau(original, dir.path() / "t");

  DatabaseSession session;
  session.save_trial(io::load_profile(dir.path() / "t"), "app", "e");
  auto loaded = session.load_selected_trial();

  EXPECT_EQ(loaded.threads().size(), original.threads().size());
  EXPECT_EQ(loaded.metrics().size(), original.metrics().size());
  EXPECT_EQ(loaded.interval_point_count(), original.interval_point_count());
  // Spot-check one value through the whole chain.
  const auto le = loaded.find_event("main");
  const auto lm = loaded.find_metric("TIME");
  const auto lt = loaded.find_thread({1, 1, 0});
  ASSERT_TRUE(le && lm && lt);
  const auto oe = original.find_event("main");
  const auto om = original.find_metric("TIME");
  const auto ot = original.find_thread({1, 1, 0});
  EXPECT_NEAR(loaded.interval_data(*le, *lt, *lm)->inclusive,
              original.interval_data(*oe, *ot, *om)->inclusive, 1e-6);
}

TEST(Integration, LargeTrialStoresAndAggregates) {
  // A mid-size stand-in for the Miranda scale claim, kept test-suite
  // friendly: 101 events x 64 threads = 6464 rows/metric.
  io::synth::TrialSpec spec;
  spec.nodes = 64;
  spec.event_count = 101;
  auto data = io::synth::generate_trial(spec);
  ASSERT_EQ(data.interval_point_count(), 101u * 64u);

  DatabaseSession session;
  const std::int64_t trial_id = session.save_trial(data, "miranda", "bgl");
  auto events = session.get_interval_events();
  ASSERT_EQ(events.size(), 101u);

  auto summary = session.api().aggregate_interval_column(
      trial_id, events[0].id, "exclusive");
  EXPECT_EQ(summary.count, 64u);
  EXPECT_GT(summary.std_dev, 0.0);
  EXPECT_GE(summary.maximum, summary.mean);
  EXPECT_LE(summary.minimum, summary.mean);
}

TEST(Integration, AnalysisViewsOverTheSchema) {
  // An analyst defines reusable views over the PerfDMF schema and queries
  // them like tables — the SQL-side composition story.
  io::synth::TrialSpec spec;
  spec.nodes = 8;
  spec.event_count = 12;
  api::DatabaseSession session;
  session.save_trial(io::synth::generate_trial(spec), "app", "runs");
  auto& conn = session.api().connection();

  conn.execute_update(
      "CREATE VIEW hot_events AS"
      " SELECT e.name AS event, AVG(p.exclusive) AS mean_excl"
      " FROM interval_event e JOIN interval_location_profile p"
      " ON p.interval_event = e.id GROUP BY e.name");
  auto rs = conn.execute(
      "SELECT event FROM hot_events ORDER BY mean_excl DESC LIMIT 1");
  ASSERT_TRUE(rs.next());
  // The Zipf weighting makes the first compute routine the hottest.
  EXPECT_EQ(rs.get_string(1), "hydro_sweep");

  // The view recomputes after more data arrives.
  spec.seed = 99;
  spec.base_time_us *= 10;
  session.save_trial(io::synth::generate_trial(spec), "app", "runs");
  auto rs2 = conn.execute("SELECT COUNT(*) FROM hot_events");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 12);  // same 12 event names, both trials pooled
}

TEST(Integration, SpeedupForExperimentMissingRoutineInLaterTrial) {
  // A routine present only at the base count (e.g. instrumentation turned
  // off later) must not break the analyzer; it simply has fewer points.
  io::synth::ScalingSpec spec;
  auto base = io::synth::generate_scaling_trial(spec, 1);
  auto big = io::synth::generate_scaling_trial(spec, 8);
  const std::size_t extra = base.intern_event("only_in_base");
  profile::IntervalDataPoint p;
  p.exclusive = 42.0;
  p.inclusive = 42.0;
  base.set_interval_data(extra, 0, *base.find_metric("TIME"), p);

  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {1, &base}, {8, &big}};
  auto report = analysis::compute_speedup(trials);
  const analysis::RoutineSpeedup* lonely = nullptr;
  for (const auto& routine : report.routines) {
    if (routine.event_name == "only_in_base") lonely = &routine;
  }
  ASSERT_NE(lonely, nullptr);
  ASSERT_EQ(lonely->points.size(), 1u);  // only the base point
  EXPECT_EQ(lonely->points[0].processors, 1);
}

TEST(Integration, CsvOfArchivedTrialMatchesPointCount) {
  io::synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 5;
  api::DatabaseSession session;
  session.save_trial(io::synth::generate_trial(spec), "a", "e");
  auto loaded = session.load_selected_trial();
  const std::string csv = io::export_interval_csv(loaded);
  EXPECT_EQ(util::split_lines(csv).size(), 1u + loaded.interval_point_count());
}
