#include "sqldb/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "util/error.h"

namespace perfdmf::sqldb {

const char* value_type_name(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INTEGER";
    case ValueType::kReal: return "REAL";
    case ValueType::kText: return "TEXT";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kReal;
    default: return ValueType::kText;
  }
}

std::int64_t Value::as_int() const {
  if (auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (auto* d = std::get_if<double>(&data_)) return static_cast<std::int64_t>(*d);
  throw DbError(std::string("value is ") + value_type_name(type()) +
                ", wanted INTEGER");
}

double Value::as_real() const {
  if (auto* d = std::get_if<double>(&data_)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  throw DbError(std::string("value is ") + value_type_name(type()) + ", wanted REAL");
}

const std::string& Value::as_text() const {
  if (auto* s = std::get_if<std::string>(&data_)) return *s;
  throw DbError(std::string("value is ") + value_type_name(type()) + ", wanted TEXT");
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(std::get<std::int64_t>(data_));
    case ValueType::kReal: {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "%.17g", std::get<double>(data_));
      return buffer;
    }
    case ValueType::kText: return std::get<std::string>(data_);
  }
  return {};
}

int Value::compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kInt:
      case ValueType::kReal: return 1;
      case ValueType::kText: return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  if (a == ValueType::kNull) return 0;
  if (rank(a) == 1) {
    // Numeric comparison; exact when both are ints.
    if (a == ValueType::kInt && b == ValueType::kInt) {
      const std::int64_t x = std::get<std::int64_t>(data_);
      const std::int64_t y = std::get<std::int64_t>(other.data_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = as_real();
    const double y = other.as_real();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  const std::string& x = std::get<std::string>(data_);
  const std::string& y = std::get<std::string>(other.data_);
  return x.compare(y) < 0 ? -1 : (x == y ? 0 : 1);
}

std::size_t Value::hash() const {
  switch (type()) {
    case ValueType::kNull: return 0x9e3779b9;
    case ValueType::kInt:
      return std::hash<double>{}(static_cast<double>(std::get<std::int64_t>(data_)));
    case ValueType::kReal: {
      double d = std::get<double>(data_);
      // Hash integral reals like the equal int so x == y -> hash(x)==hash(y).
      return std::hash<double>{}(d);
    }
    case ValueType::kText: return std::hash<std::string>{}(std::get<std::string>(data_));
  }
  return 0;
}

}  // namespace perfdmf::sqldb
