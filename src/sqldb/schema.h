// Table schemas: column definitions, primary keys, foreign keys.
//
// PerfDMF's "flexible schema" requirement (paper §3.2) — analysts may add
// or remove metadata columns on APPLICATION / EXPERIMENT / TRIAL without
// source changes — is satisfied by ALTER TABLE plus runtime reflection
// through DatabaseMetaData; both operate on these definitions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sqldb/value.h"

namespace perfdmf::sqldb {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kText;  // declared affinity
  bool not_null = false;
  bool primary_key = false;   // single-column primary keys only
  bool auto_increment = false;  // INTEGER PRIMARY KEY columns auto-fill
  Value default_value;        // used when an INSERT omits the column
};

struct ForeignKeyDef {
  std::string column;         // referencing column in this table
  std::string parent_table;
  std::string parent_column;
};

class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_column(ColumnDef column);
  void drop_column(const std::string& name);
  void add_foreign_key(ForeignKeyDef fk) { foreign_keys_.push_back(std::move(fk)); }

  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const { return foreign_keys_; }

  /// Case-insensitive lookup; column names in SQL are case-insensitive.
  std::optional<std::size_t> find_column(std::string_view name) const;
  std::size_t column_index_or_throw(std::string_view name) const;

  /// Index of the primary-key column, if declared.
  std::optional<std::size_t> primary_key_index() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

/// Check that `value` is storable in a column of declared type, applying
/// numeric coercion (int literal into REAL column and vice versa) and
/// rejecting NULL in NOT NULL columns. Returns the (possibly coerced) value.
Value coerce_for_column(const ColumnDef& column, const Value& value,
                        const std::string& table_name);

}  // namespace perfdmf::sqldb
