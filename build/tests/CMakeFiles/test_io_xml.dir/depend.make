# Empty dependencies file for test_io_xml.
# This may be replaced when dependencies are built.
