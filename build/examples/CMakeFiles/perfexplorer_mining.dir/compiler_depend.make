# Empty compiler generated dependencies file for perfexplorer_mining.
# This may be replaced when dependencies are built.
