// A small fixed-size thread pool with a parallel_for helper.
//
// PerfDMF workloads that benefit: parsing one profile file per thread of
// execution (TAU writes profile.N.C.T per thread), bulk row encoding, and
// the k-means / PCA inner loops. Determinism matters more than peak
// throughput here, so parallel_for partitions the index space statically
// and reductions are performed by the caller in index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace perfdmf::util {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Tasks submitted but not yet finished (queued + running).
  std::size_t pending() const;

  /// Block until every task submitted so far has finished. The wait
  /// synchronizes with task completion (mutex + condition variable), so
  /// effects of finished tasks happen-before the return.
  void wait_idle();

  /// Run fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Static block partitioning; exceptions from any
  /// block are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // queued + running
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace perfdmf::util
