#include "api/schema_bootstrap.h"

namespace perfdmf::api {

void bootstrap_schema(sqldb::Connection& connection) {
  static const char* kDdl[] = {
      // ---- experiment hierarchy (flexible: extra columns may be added) ----
      "CREATE TABLE IF NOT EXISTS application ("
      " id INTEGER PRIMARY KEY,"
      " name TEXT NOT NULL,"
      " version TEXT,"
      " description TEXT,"
      " language TEXT)",

      "CREATE TABLE IF NOT EXISTS experiment ("
      " id INTEGER PRIMARY KEY,"
      " application INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " system_info TEXT,"
      " compiler_info TEXT,"
      " configuration_info TEXT,"
      " FOREIGN KEY (application) REFERENCES application (id))",

      "CREATE TABLE IF NOT EXISTS trial ("
      " id INTEGER PRIMARY KEY,"
      " experiment INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " date TEXT,"
      " problem_definition TEXT,"
      " node_count INTEGER,"
      " contexts_per_node INTEGER,"
      " threads_per_context INTEGER,"
      " FOREIGN KEY (experiment) REFERENCES experiment (id))",

      // ---- measurement dimension ----
      "CREATE TABLE IF NOT EXISTS metric ("
      " id INTEGER PRIMARY KEY,"
      " trial INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " derived INTEGER NOT NULL DEFAULT 0,"
      " FOREIGN KEY (trial) REFERENCES trial (id))",

      // ---- interval (timer) data ----
      "CREATE TABLE IF NOT EXISTS interval_event ("
      " id INTEGER PRIMARY KEY,"
      " trial INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " group_name TEXT,"
      " FOREIGN KEY (trial) REFERENCES trial (id))",

      "CREATE TABLE IF NOT EXISTS interval_location_profile ("
      " interval_event INTEGER NOT NULL,"
      " node INTEGER NOT NULL,"
      " context INTEGER NOT NULL,"
      " thread INTEGER NOT NULL,"
      " metric INTEGER NOT NULL,"
      " inclusive_percentage REAL,"
      " inclusive REAL,"
      " exclusive_percentage REAL,"
      " exclusive REAL,"
      " inclusive_per_call REAL,"
      " num_calls REAL,"
      " num_subrs REAL,"
      " FOREIGN KEY (interval_event) REFERENCES interval_event (id),"
      " FOREIGN KEY (metric) REFERENCES metric (id))",

      "CREATE TABLE IF NOT EXISTS interval_total_summary ("
      " interval_event INTEGER NOT NULL,"
      " metric INTEGER NOT NULL,"
      " inclusive_percentage REAL,"
      " inclusive REAL,"
      " exclusive_percentage REAL,"
      " exclusive REAL,"
      " inclusive_per_call REAL,"
      " num_calls REAL,"
      " num_subrs REAL,"
      " FOREIGN KEY (interval_event) REFERENCES interval_event (id),"
      " FOREIGN KEY (metric) REFERENCES metric (id))",

      "CREATE TABLE IF NOT EXISTS interval_mean_summary ("
      " interval_event INTEGER NOT NULL,"
      " metric INTEGER NOT NULL,"
      " inclusive_percentage REAL,"
      " inclusive REAL,"
      " exclusive_percentage REAL,"
      " exclusive REAL,"
      " inclusive_per_call REAL,"
      " num_calls REAL,"
      " num_subrs REAL,"
      " FOREIGN KEY (interval_event) REFERENCES interval_event (id),"
      " FOREIGN KEY (metric) REFERENCES metric (id))",

      // ---- atomic (user event) data ----
      "CREATE TABLE IF NOT EXISTS atomic_event ("
      " id INTEGER PRIMARY KEY,"
      " trial INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " group_name TEXT,"
      " FOREIGN KEY (trial) REFERENCES trial (id))",

      "CREATE TABLE IF NOT EXISTS atomic_location_profile ("
      " atomic_event INTEGER NOT NULL,"
      " node INTEGER NOT NULL,"
      " context INTEGER NOT NULL,"
      " thread INTEGER NOT NULL,"
      " sample_count REAL,"
      " maximum_value REAL,"
      " minimum_value REAL,"
      " mean_value REAL,"
      " standard_deviation REAL,"
      " FOREIGN KEY (atomic_event) REFERENCES atomic_event (id))",

      // ---- analysis results (PerfExplorer extension, paper §5.3) ----
      "CREATE TABLE IF NOT EXISTS analysis_result ("
      " id INTEGER PRIMARY KEY,"
      " trial INTEGER NOT NULL,"
      " name TEXT NOT NULL,"
      " kind TEXT NOT NULL,"
      " content TEXT,"
      " FOREIGN KEY (trial) REFERENCES trial (id))",

      // ---- secondary indexes beyond the automatic PK/FK ones ----
      "CREATE INDEX idx_ilp_node ON interval_location_profile (node)",
      "CREATE INDEX idx_ilp_metric ON interval_location_profile (metric)",
      "CREATE INDEX idx_event_trial ON interval_event (trial)",
  };
  for (const char* sql : kDdl) {
    connection.execute_update(sql);
  }
}

bool schema_present(sqldb::Connection& connection) {
  auto tables = connection.get_meta_data().get_tables();
  bool application = false;
  bool trial = false;
  bool profile_table = false;
  for (const auto& name : tables) {
    if (name == "application") application = true;
    if (name == "trial") trial = true;
    if (name == "interval_location_profile") profile_table = true;
  }
  return application && trial && profile_table;
}

}  // namespace perfdmf::api
