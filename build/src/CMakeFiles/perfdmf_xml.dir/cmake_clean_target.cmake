file(REMOVE_RECURSE
  "libperfdmf_xml.a"
)
