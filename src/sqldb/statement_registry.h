// Live registry of the statements currently executing against one
// Database, backing the PERFDMF_STATEMENTS system table.
//
// Design constraint: introspection must never block or deadlock the
// statements it observes. Each of the kSlots slots has its own tiny
// mutex whose critical sections are strictly bounded (copy a truncated
// SQL string in, read a few fields out — no allocation-free guarantee,
// but no waits, no locks taken inside). Writers (statements registering
// and unregistering) lock only their own slot; the snapshot reader uses
// try_lock per slot and simply skips a slot whose owner is mid-update,
// so a reader can never stall a statement and a statement can never
// stall a reader for more than one bounded copy.
//
// The registry is always active — independent of the telemetry kill
// switch — because it reports facts (what is running now), not samples.
// Its fixed cost per statement is one slot claim + one string copy of at
// most kSqlMax bytes.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/statement_context.h"

namespace perfdmf::sqldb {

/// One row of PERFDMF_STATEMENTS, copied out under the slot lock.
struct StatementInfo {
  std::uint64_t id = 0;
  std::string thread;
  std::string sql;                      // truncated to kSqlMax
  const char* phase = "execute";        // coarse label (string literal)
  double elapsed_ms = 0.0;
  double deadline_remaining_ms = -1.0;  // < 0: no deadline armed
  std::uint64_t rows = 0;               // rows polled so far (stride granularity)
  bool cancel_requested = false;
};

class StatementRegistry {
 public:
  static constexpr std::size_t kSlots = 64;
  static constexpr std::size_t kSqlMax = 200;

  StatementRegistry() = default;
  StatementRegistry(const StatementRegistry&) = delete;
  StatementRegistry& operator=(const StatementRegistry&) = delete;

  /// RAII slot occupancy for one executing statement. When every slot is
  /// taken (> kSlots concurrent statements) the statement simply goes
  /// unlisted — registration never waits.
  class Guard {
   public:
    Guard(StatementRegistry& registry, std::string_view sql,
          StatementContext* ctx);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    StatementRegistry* registry_ = nullptr;
    std::size_t slot_ = 0;
    bool registered_ = false;
  };

  /// Rows for PERFDMF_STATEMENTS. Slots whose owner is mid-register/
  /// unregister are skipped (try_lock), so this never blocks.
  std::vector<StatementInfo> snapshot() const;

 private:
  struct Slot {
    mutable std::mutex mu;
    bool used = false;
    std::uint64_t id = 0;
    std::string thread;
    std::string sql;
    // Valid while used: the owning Guard outlives the statement scope and
    // clears this (under mu) before the context dies.
    StatementContext* ctx = nullptr;
    std::chrono::steady_clock::time_point start{};
  };

  std::array<Slot, kSlots> slots_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> cursor_{0};  // round-robin claim hint
};

}  // namespace perfdmf::sqldb
