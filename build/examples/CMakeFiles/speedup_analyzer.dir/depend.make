# Empty dependencies file for speedup_analyzer.
# This may be replaced when dependencies are built.
