// YCSB-style workload driver: named operation mixes over one shared
// in-memory database, each parameterized by thread count, scale (row
// count), zipfian skew, and duration. The eight existing bench binaries
// measure isolated subsystems; this one measures *scenarios* — skewed
// point reads, read/write blends, bulk import racing analytic queries,
// and DDL churn against live readers — the shapes named by the YCSB
// harnesses in the aefast26 exemplars and by the web-workload evidence
// in PAPERS.md.
//
// Mixes (threads split per mix; keys drawn zipfian-skewed, scattered
// across the keyspace):
//   zipfian_read        YCSB-C: 100% point reads
//   read_mostly         YCSB-B: 95% point reads / 5% point updates
//   read_write          YCSB-A: 50% point reads / 50% point updates
//   import_under_query  half the threads bulk-insert in transactions,
//                       half run range aggregates concurrently
//   metadata_churn      one thread cycles CREATE/ALTER/DROP TABLE while
//                       the rest run catalog reflection + point reads
//                       (every cycle bumps the schema epoch, so this is
//                       also a plan-cache-invalidation storm)
//
// Per-(mix, threads): throughput plus p50/p95/p99 op latency, sourced
// from a telemetry histogram ("workload.<mix>.op_micros" — the same
// PR 5 registry the engine itself records into), printed as a table and
// written to BENCH_workload.json for scripts/perfguard.
//
// Determinism: all randomness derives from one seed (PERFDMF_SEED
// overrides; util::seed_from_env), so a run is replayable. Wall-clock
// throughput still varies with the machine — that is what perfguard's
// threshold absorbs.
//
// Usage: bench_workload [--quick] [--threads N,N,...] [--scale ROWS]
//                       [--skew THETA] [--duration-ms MS] [--seed N]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "sqldb/connection.h"
#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace perfdmf;

namespace {

struct Options {
  std::vector<int> thread_counts{4, 8};
  std::int64_t scale = 200000;
  double skew = 0.99;
  int duration_ms = 1000;
  int repeats = 3;
  std::uint64_t seed = util::seed_from_env(42);
};

struct MixResult {
  std::uint64_t ops = 0;
  double ops_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double extra = 0.0;  // mix-specific side metric (import rows/s)
  // Ops that ended in a typed governance error (counted, not fatal:
  // under injected timeouts/admission limits these are expected
  // outcomes, and a bench that aborts can't measure a governed system).
  std::uint64_t timeouts = 0;    // kTimeout + kCancelled
  std::uint64_t overloads = 0;   // kOverloaded
  std::uint64_t errors = 0;      // any other DbError
};

/// Per-thread operation closure; invoked until the deadline. Returned by
/// a factory *inside* the worker thread so prepared statements keep
/// their thread affinity.
using Op = std::function<void()>;
using OpFactory = std::function<Op(int thread_index)>;

MixResult run_mix(const std::string& mix, int threads, const Options& opt,
                  const OpFactory& factory) {
  auto& histogram =
      telemetry::MetricsRegistry::instance().histogram("workload." + mix +
                                                       ".op_micros");
  histogram.reset();

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<MixResult> per_thread(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Op op = factory(t);
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      MixResult local;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto begin = std::chrono::steady_clock::now();
        try {
          op();
        } catch (const DbError& e) {
          switch (e.kind()) {
            case DbError::Kind::kTimeout:
            case DbError::Kind::kCancelled:
              ++local.timeouts;
              break;
            case DbError::Kind::kOverloaded:
              ++local.overloads;
              break;
            default:
              ++local.errors;
              break;
          }
        }
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        histogram.record(static_cast<std::uint64_t>(micros));
        ++local.ops;
      }
      per_thread[static_cast<std::size_t>(t)] = local;
    });
  }

  util::WallTimer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double wall_s = timer.millis() / 1000.0;

  MixResult result;
  for (const MixResult& local : per_thread) {
    result.ops += local.ops;
    result.timeouts += local.timeouts;
    result.overloads += local.overloads;
    result.errors += local.errors;
  }
  result.ops_per_s = wall_s > 0 ? static_cast<double>(result.ops) / wall_s : 0;
  result.p50_us = histogram.percentile(0.50);
  result.p95_us = histogram.percentile(0.95);
  result.p99_us = histogram.percentile(0.99);
  return result;
}

/// Best-of-N: rerun the measurement and keep the fastest repeat.
/// Scheduler and allocator noise only ever subtracts throughput, so the
/// max is the stablest estimator at short durations — a real regression
/// slows every repeat and still shows.
MixResult best_of(int repeats, const std::function<MixResult()>& once) {
  MixResult best = once();
  for (int i = 1; i < repeats; ++i) {
    const MixResult r = once();
    if (r.ops_per_s > best.ops_per_s) best = r;
  }
  return best;
}

/// usertable(id 0..scale-1, field0 REAL, field1 TEXT), loaded in one
/// transaction with explicit ids so the key range is deterministic.
std::shared_ptr<sqldb::Database> make_database(const Options& opt) {
  auto database = std::make_shared<sqldb::Database>();
  sqldb::Connection conn(database);
  conn.execute_update(
      "CREATE TABLE usertable (id INTEGER PRIMARY KEY, field0 REAL,"
      " field1 TEXT)");
  auto insert = conn.prepare(
      "INSERT INTO usertable (id, field0, field1) VALUES (?, ?, ?)");
  util::Rng rng(opt.seed);
  conn.begin();
  for (std::int64_t i = 0; i < opt.scale; ++i) {
    insert.set_int(1, i);
    insert.set_double(2, rng.uniform(0.0, 1000.0));
    insert.set_string(3, "payload_" + std::to_string(i % 1000));
    insert.execute_update();
  }
  conn.commit();
  return database;
}

/// YCSB point-op blend: `read_pct`% zipfian point reads, the rest point
/// updates against the same skewed key distribution.
OpFactory blend_factory(const std::shared_ptr<sqldb::Database>& database,
                        const Options& opt, int read_pct,
                        std::uint64_t mix_salt) {
  return [database, &opt, read_pct, mix_salt](int t) -> Op {
    auto conn = std::make_shared<sqldb::Connection>(database);
    auto read = std::make_shared<sqldb::PreparedStatement>(
        *conn, "SELECT field0 FROM usertable WHERE id = ?");
    auto write = std::make_shared<sqldb::PreparedStatement>(
        *conn, "UPDATE usertable SET field0 = ? WHERE id = ?");
    auto rng = std::make_shared<util::Rng>(
        opt.seed * 1000 + mix_salt * 100 + static_cast<std::uint64_t>(t));
    auto zipf = std::make_shared<util::Zipfian>(
        static_cast<std::uint64_t>(opt.scale), opt.skew);
    return [conn, read, write, rng, zipf, read_pct] {
      const auto key =
          static_cast<std::int64_t>(zipf->scatter(zipf->next(*rng)));
      if (rng->next_below(100) < static_cast<std::uint64_t>(read_pct)) {
        read->set_int(1, key);
        auto rs = read->execute_query();
        if (rs.row_count() != 1) std::abort();
      } else {
        write->set_double(1, rng->next_double() * 1000.0);
        write->set_int(2, key);
        write->execute_update();
      }
    };
  };
}

/// Bulk import racing analytics: writer threads append `kBatch`-row
/// transactions to an import table; reader threads run zipfian-anchored
/// range aggregates over usertable, with every 8th op counting the
/// growing import table instead (query-sees-import pressure).
constexpr int kImportBatch = 100;

OpFactory import_factory(const std::shared_ptr<sqldb::Database>& database,
                         const Options& opt, std::atomic<std::uint64_t>& rows,
                         int writer_threads) {
  return [database, &opt, &rows, writer_threads](int t) -> Op {
    auto conn = std::make_shared<sqldb::Connection>(database);
    auto rng = std::make_shared<util::Rng>(opt.seed * 7000 +
                                           static_cast<std::uint64_t>(t));
    if (t < writer_threads) {
      auto insert = std::make_shared<sqldb::PreparedStatement>(
          *conn, "INSERT INTO import_profile (event, value) VALUES (?, ?)");
      return [conn, insert, rng, &rows] {
        conn->begin();
        for (int i = 0; i < kImportBatch; ++i) {
          insert->set_int(1, static_cast<std::int64_t>(rng->next_below(128)));
          insert->set_double(2, rng->next_double());
          insert->execute_update();
        }
        conn->commit();
        rows.fetch_add(kImportBatch, std::memory_order_relaxed);
      };
    }
    auto range = std::make_shared<sqldb::PreparedStatement>(
        *conn,
        "SELECT COUNT(*), AVG(field0) FROM usertable"
        " WHERE id BETWEEN ? AND ?");
    auto count = std::make_shared<sqldb::PreparedStatement>(
        *conn, "SELECT COUNT(*) FROM import_profile");
    auto zipf = std::make_shared<util::Zipfian>(
        static_cast<std::uint64_t>(opt.scale), opt.skew);
    auto ticks = std::make_shared<std::uint64_t>(0);
    return [conn, range, count, rng, zipf, ticks, &opt] {
      if (++*ticks % 8 == 0) {
        auto rs = count->execute_query();
        if (rs.row_count() != 1) std::abort();
        return;
      }
      const auto lo =
          static_cast<std::int64_t>(zipf->scatter(zipf->next(*rng)));
      range->set_int(1, lo);
      range->set_int(2, std::min<std::int64_t>(lo + 999, opt.scale - 1));
      auto rs = range->execute_query();
      if (rs.row_count() != 1) std::abort();
    };
  };
}

/// DDL churn against live readers: thread 0 cycles CREATE TABLE →
/// INSERT → ALTER ADD COLUMN → DROP TABLE (one op per full cycle); the
/// rest interleave catalog reflection with plan-cached point reads that
/// the churn keeps invalidating.
OpFactory churn_factory(const std::shared_ptr<sqldb::Database>& database,
                        const Options& opt) {
  return [database, &opt](int t) -> Op {
    auto conn = std::make_shared<sqldb::Connection>(database);
    auto rng = std::make_shared<util::Rng>(opt.seed * 9000 +
                                           static_cast<std::uint64_t>(t));
    if (t == 0) {
      const std::string table = "churn_scratch";
      return [conn, table] {
        conn->execute_update("CREATE TABLE " + table +
                             " (id INTEGER PRIMARY KEY, a INTEGER)");
        conn->execute_update("INSERT INTO " + table + " (a) VALUES (1)");
        conn->execute_update("ALTER TABLE " + table + " ADD COLUMN b REAL");
        conn->execute_update("DROP TABLE " + table);
      };
    }
    auto read = std::make_shared<sqldb::PreparedStatement>(
        *conn, "SELECT field1 FROM usertable WHERE id = ?");
    auto zipf = std::make_shared<util::Zipfian>(
        static_cast<std::uint64_t>(opt.scale), opt.skew);
    return [conn, read, rng, zipf] {
      if (rng->next_below(4) == 0) {
        auto meta = conn->get_meta_data();
        if (meta.get_columns("usertable").size() != 3) std::abort();
      } else {
        read->set_int(1,
                      static_cast<std::int64_t>(zipf->scatter(zipf->next(*rng))));
        auto rs = read->execute_query();
        if (rs.row_count() != 1) std::abort();
      }
    };
  };
}

void emit(bench::BenchJson& json, const std::string& mix, int threads,
          const MixResult& r) {
  const std::string prefix = mix + "_t" + std::to_string(threads) + "_";
  json.set(prefix + "ops_per_s", r.ops_per_s);
  json.set(prefix + "p50_us", r.p50_us);
  json.set(prefix + "p95_us", r.p95_us);
  json.set(prefix + "p99_us", r.p99_us);
  json.set(prefix + "timeouts", static_cast<double>(r.timeouts));
  json.set(prefix + "overloads", static_cast<double>(r.overloads));
  json.set(prefix + "errors", static_cast<double>(r.errors));
  if (r.timeouts + r.overloads + r.errors > 0) {
    std::printf("  %-22s         governance outcomes: %llu timeout,"
                " %llu overload, %llu error\n",
                "", static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.overloads),
                static_cast<unsigned long long>(r.errors));
  }
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      opt.thread_counts = {2, 4};
      opt.scale = 20000;
      opt.duration_ms = 300;
    } else if (arg == "--threads") {
      opt.thread_counts.clear();
      const char* spec = next();
      for (const char* p = spec; *p != '\0';) {
        char* end = nullptr;
        const long n = std::strtol(p, &end, 10);
        if (end == p || n < 1) return false;
        opt.thread_counts.push_back(static_cast<int>(n));
        p = (*end == ',') ? end + 1 : end;
      }
      if (opt.thread_counts.empty()) return false;
    } else if (arg == "--scale") {
      opt.scale = std::strtoll(next(), nullptr, 10);
      if (opt.scale < 1000) return false;
    } else if (arg == "--skew") {
      opt.skew = std::strtod(next(), nullptr);
      if (opt.skew <= 0.0 || opt.skew >= 1.0) return false;
    } else if (arg == "--duration-ms") {
      opt.duration_ms = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (opt.duration_ms < 10) return false;
    } else if (arg == "--repeats") {
      opt.repeats = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (opt.repeats < 1 || opt.repeats > 100) return false;
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: bench_workload [--quick] [--threads N,N,...]"
                 " [--scale ROWS] [--skew THETA] [--duration-ms MS]"
                 " [--repeats N] [--seed N]\n");
    return 2;
  }

  std::printf(
      "workload mixes: scale=%lld rows, skew theta=%.2f, %d ms per mix"
      " (best of %d), seed=%llu%s\n\n",
      static_cast<long long>(opt.scale), opt.skew, opt.duration_ms,
      opt.repeats, static_cast<unsigned long long>(opt.seed),
      telemetry::compiled_in() ? ""
                               : " (telemetry compiled out: latency"
                                 " percentiles report 0)");

  bench::BenchJson json("workload");
  json.set("scale_rows", static_cast<double>(opt.scale));
  json.set("skew_theta", opt.skew);
  json.set("duration_ms", opt.duration_ms);

  std::printf("  %-22s %7s %10s %12s %9s %9s %9s\n", "mix", "threads", "ops",
              "ops/s", "p50(us)", "p95(us)", "p99(us)");

  for (int threads : opt.thread_counts) {
    // Fresh data per thread count so update/import volume from the
    // previous round cannot skew this one.
    auto database = make_database(opt);
    {
      sqldb::Connection conn(database);
      conn.execute_update(
          "CREATE TABLE import_profile (id INTEGER PRIMARY KEY,"
          " event INTEGER, value REAL)");
    }

    const struct {
      const char* name;
      int read_pct;
    } blends[] = {{"zipfian_read", 100}, {"read_mostly", 95},
                  {"read_write", 50}};
    std::uint64_t salt = 1;
    for (const auto& blend : blends) {
      const std::uint64_t mix_salt = salt++;
      const MixResult r = best_of(opt.repeats, [&] {
        return run_mix(blend.name, threads, opt,
                       blend_factory(database, opt, blend.read_pct, mix_salt));
      });
      std::printf("  %-22s %7d %10llu %12.0f %9.0f %9.0f %9.0f\n", blend.name,
                  threads, static_cast<unsigned long long>(r.ops), r.ops_per_s,
                  r.p50_us, r.p95_us, r.p99_us);
      emit(json, blend.name, threads, r);
    }

    {
      const int writers = threads < 2 ? 1 : threads / 2;
      const MixResult r = best_of(opt.repeats, [&] {
        std::atomic<std::uint64_t> imported{0};
        util::WallTimer timer;
        MixResult one =
            run_mix("import_under_query", threads, opt,
                    import_factory(database, opt, imported, writers));
        one.extra =
            static_cast<double>(imported.load()) / (timer.millis() / 1000.0);
        return one;
      });
      const double rows_per_s = r.extra;
      std::printf("  %-22s %7d %10llu %12.0f %9.0f %9.0f %9.0f"
                  "   (%.0f rows/s imported)\n",
                  "import_under_query", threads,
                  static_cast<unsigned long long>(r.ops), r.ops_per_s, r.p50_us,
                  r.p95_us, r.p99_us, rows_per_s);
      emit(json, "import_under_query", threads, r);
      json.set("import_under_query_t" + std::to_string(threads) +
                   "_import_rows_per_s",
               rows_per_s);
    }

    {
      const MixResult r = best_of(opt.repeats, [&] {
        return run_mix("metadata_churn", threads, opt,
                       churn_factory(database, opt));
      });
      std::printf("  %-22s %7d %10llu %12.0f %9.0f %9.0f %9.0f\n",
                  "metadata_churn", threads,
                  static_cast<unsigned long long>(r.ops), r.ops_per_s, r.p50_us,
                  r.p95_us, r.p99_us);
      emit(json, "metadata_churn", threads, r);
    }
  }

  json.write();
  return 0;
}
