#include "profile/trial_data.h"

#include <algorithm>

#include "util/error.h"

namespace perfdmf::profile {

namespace {
// Packed key layout: event (24 bits) | thread (28 bits) | metric (12 bits).
// Bounds are far above the paper's largest dataset (101 events, 16K
// threads, 7 metrics) and checked on interning.
constexpr std::size_t kMaxEvents = 1u << 24;
constexpr std::size_t kMaxThreads = 1u << 28;
constexpr std::size_t kMaxMetrics = 1u << 12;

std::uint64_t pack_thread_id(const ThreadId& id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.node)) << 32) ^
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(id.context)) << 16) ^
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(id.thread));
}
}  // namespace

std::string to_string(const ThreadId& id) {
  return std::to_string(id.node) + ":" + std::to_string(id.context) + ":" +
         std::to_string(id.thread);
}

std::uint64_t TrialData::pack(std::size_t event, std::size_t thread,
                              std::size_t metric) {
  return (static_cast<std::uint64_t>(event) << 40) |
         (static_cast<std::uint64_t>(thread) << 12) |
         static_cast<std::uint64_t>(metric);
}

std::size_t TrialData::intern_metric(const std::string& name) {
  auto it = metric_index_.find(name);
  if (it != metric_index_.end()) return it->second;
  if (metrics_.size() >= kMaxMetrics) {
    throw InvalidArgument("too many metrics in one trial");
  }
  Metric metric;
  metric.name = name;
  metrics_.push_back(std::move(metric));
  metric_index_.emplace(name, metrics_.size() - 1);
  return metrics_.size() - 1;
}

std::size_t TrialData::intern_event(const std::string& name,
                                    const std::string& group) {
  auto it = event_index_.find(name);
  if (it != event_index_.end()) return it->second;
  if (events_.size() >= kMaxEvents) {
    throw InvalidArgument("too many interval events in one trial");
  }
  IntervalEvent event;
  event.name = name;
  event.group = group;
  events_.push_back(std::move(event));
  event_index_.emplace(name, events_.size() - 1);
  return events_.size() - 1;
}

std::size_t TrialData::intern_atomic_event(const std::string& name,
                                           const std::string& group) {
  auto it = atomic_index_.find(name);
  if (it != atomic_index_.end()) return it->second;
  AtomicEvent event;
  event.name = name;
  event.group = group;
  atomic_events_.push_back(std::move(event));
  atomic_index_.emplace(name, atomic_events_.size() - 1);
  return atomic_events_.size() - 1;
}

std::size_t TrialData::intern_thread(const ThreadId& id) {
  const std::uint64_t key = pack_thread_id(id);
  auto it = thread_index_.find(key);
  if (it != thread_index_.end()) return it->second;
  if (threads_.size() >= kMaxThreads) {
    throw InvalidArgument("too many threads in one trial");
  }
  threads_.push_back(id);
  thread_index_.emplace(key, threads_.size() - 1);
  return threads_.size() - 1;
}

std::optional<std::size_t> TrialData::find_metric(const std::string& name) const {
  auto it = metric_index_.find(name);
  if (it == metric_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> TrialData::find_event(const std::string& name) const {
  auto it = event_index_.find(name);
  if (it == event_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> TrialData::find_atomic_event(
    const std::string& name) const {
  auto it = atomic_index_.find(name);
  if (it == atomic_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> TrialData::find_thread(const ThreadId& id) const {
  auto it = thread_index_.find(pack_thread_id(id));
  if (it == thread_index_.end()) return std::nullopt;
  return it->second;
}

void TrialData::set_interval_data(std::size_t event_index, std::size_t thread_index,
                                  std::size_t metric_index,
                                  const IntervalDataPoint& point) {
  if (event_index >= events_.size() || thread_index >= threads_.size() ||
      metric_index >= metrics_.size()) {
    throw InvalidArgument("interval data index out of range");
  }
  const std::uint64_t key = pack(event_index, thread_index, metric_index);
  auto it = interval_lookup_.find(key);
  if (it != interval_lookup_.end()) {
    interval_points_[it->second].point = point;
    return;
  }
  interval_lookup_.emplace(key, interval_points_.size());
  interval_points_.push_back({key, point});
}

const IntervalDataPoint* TrialData::interval_data(std::size_t event_index,
                                                  std::size_t thread_index,
                                                  std::size_t metric_index) const {
  auto it = interval_lookup_.find(pack(event_index, thread_index, metric_index));
  if (it == interval_lookup_.end()) return nullptr;
  return &interval_points_[it->second].point;
}

void TrialData::for_each_interval(
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             const IntervalDataPoint&)>& fn) const {
  for (const auto& record : interval_points_) {
    fn(record.key >> 40, (record.key >> 12) & ((1u << 28) - 1),
       record.key & ((1u << 12) - 1), record.point);
  }
}

void TrialData::set_atomic_data(std::size_t atomic_index, std::size_t thread_index,
                                const AtomicDataPoint& point) {
  if (atomic_index >= atomic_events_.size() || thread_index >= threads_.size()) {
    throw InvalidArgument("atomic data index out of range");
  }
  const std::uint64_t key = pack(atomic_index, thread_index, 0);
  auto it = atomic_lookup_.find(key);
  if (it != atomic_lookup_.end()) {
    atomic_points_[it->second].point = point;
    return;
  }
  atomic_lookup_.emplace(key, atomic_points_.size());
  atomic_points_.push_back({key, point});
}

const AtomicDataPoint* TrialData::atomic_data(std::size_t atomic_index,
                                              std::size_t thread_index) const {
  auto it = atomic_lookup_.find(pack(atomic_index, thread_index, 0));
  if (it == atomic_lookup_.end()) return nullptr;
  return &atomic_points_[it->second].point;
}

void TrialData::for_each_atomic(
    const std::function<void(std::size_t, std::size_t, const AtomicDataPoint&)>& fn)
    const {
  for (const auto& record : atomic_points_) {
    fn(record.key >> 40, (record.key >> 12) & ((1u << 28) - 1), record.point);
  }
}

void TrialData::recompute_derived_fields() {
  // Pass 1: per (thread, metric), the maximum inclusive value — TAU treats
  // this as the total runtime of that thread for that metric.
  std::unordered_map<std::uint64_t, double> totals;
  for (const auto& record : interval_points_) {
    const std::uint64_t thread_metric = record.key & ((1ull << 40) - 1);
    auto [it, inserted] = totals.try_emplace(thread_metric, record.point.inclusive);
    if (!inserted) it->second = std::max(it->second, record.point.inclusive);
  }
  // Pass 2: percentages and per-call.
  for (auto& record : interval_points_) {
    const std::uint64_t thread_metric = record.key & ((1ull << 40) - 1);
    const double total = totals[thread_metric];
    IntervalDataPoint& p = record.point;
    p.inclusive_pct = total > 0.0 ? 100.0 * p.inclusive / total : 0.0;
    p.exclusive_pct = total > 0.0 ? 100.0 * p.exclusive / total : 0.0;
    p.inclusive_per_call = p.num_calls > 0.0 ? p.inclusive / p.num_calls : 0.0;
  }
}

void TrialData::infer_dimensions() {
  std::int32_t max_node = -1;
  std::int32_t max_context = -1;
  std::int32_t max_thread = -1;
  for (const auto& t : threads_) {
    max_node = std::max(max_node, t.node);
    max_context = std::max(max_context, t.context);
    max_thread = std::max(max_thread, t.thread);
  }
  trial_.node_count = max_node + 1;
  trial_.contexts_per_node = max_context + 1;
  trial_.threads_per_context = max_thread + 1;
}

}  // namespace perfdmf::profile
