// perfguard CLI: the continuous perf-regression gate over BENCH_*.json.
//
//   perfguard [options] BENCH_workload.json [BENCH_query.json ...]
//     --baseline-dir DIR   committed baselines (default bench/baselines);
//                          every BENCH_*.json in it loads as 'baseline'
//     --db DIR             file-backed perf database; runs accumulate
//                          across invocations (default: in-memory)
//     --threshold PCT      regression threshold (default $PERFGUARD_THRESHOLD
//                          or 25)
//     --gated FILE         gate rules (default <baseline-dir>/gated.txt)
//     --record-baseline    adopt the given files as the new baseline:
//                          copy them into --baseline-dir and exit 0
//     --sql STMT           after loading, run STMT against the perf
//                          database and print the rows (ad-hoc history
//                          queries: the perf store is just sqldb)
//     --list               print every stored run, then the verdict
//
// Exit status: 0 clean (or first run / baseline recorded), 1 when a
// gated metric regressed past the threshold or went missing, 2 on usage
// or I/O errors. scripts/check.sh wires this in as the perfguard stage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "perfguard/perfguard.h"
#include "util/error.h"
#include "util/file.h"

using namespace perfdmf;
namespace fs = std::filesystem;

namespace {

void print_result_set(sqldb::ResultSet& rs) {
  for (std::size_t c = 1; c <= rs.column_count(); ++c) {
    std::printf("%s%s", c > 1 ? " | " : "", rs.column_names()[c - 1].c_str());
  }
  std::printf("\n");
  while (rs.next()) {
    for (std::size_t c = 1; c <= rs.column_count(); ++c) {
      const sqldb::Value v = rs.get(c);
      std::printf("%s%s", c > 1 ? " | " : "", v.to_string().c_str());
    }
    std::printf("\n");
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: perfguard [--baseline-dir DIR] [--db DIR]"
               " [--threshold PCT] [--gated FILE] [--record-baseline]"
               " [--sql STMT] [--list] BENCH_*.json...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path baseline_dir = "bench/baselines";
  fs::path db_dir;
  fs::path gated_file;
  std::string sql;
  double threshold = 25.0;
  if (const char* env = std::getenv("PERFGUARD_THRESHOLD"); env && *env) {
    threshold = std::strtod(env, nullptr);
  }
  bool record_baseline = false;
  bool list_runs = false;
  std::vector<fs::path> current_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline-dir") baseline_dir = next();
    else if (arg == "--db") db_dir = next();
    else if (arg == "--threshold") threshold = std::strtod(next(), nullptr);
    else if (arg == "--gated") gated_file = next();
    else if (arg == "--record-baseline") record_baseline = true;
    else if (arg == "--sql") sql = next();
    else if (arg == "--list") list_runs = true;
    else if (!arg.empty() && arg[0] == '-') return usage();
    else current_files.emplace_back(arg);
  }
  if (current_files.empty() && !list_runs && sql.empty()) return usage();
  if (threshold <= 0.0) {
    std::fprintf(stderr, "perfguard: threshold must be positive\n");
    return 2;
  }
  if (gated_file.empty()) gated_file = baseline_dir / "gated.txt";

  try {
    if (record_baseline) {
      fs::create_directories(baseline_dir);
      for (const fs::path& file : current_files) {
        const perfguard::BenchRun run = perfguard::load_bench_file(file);
        const fs::path dest = baseline_dir / ("BENCH_" + run.bench + ".json");
        util::write_file_atomic(dest, util::read_file(file), /*sync=*/false);
        std::printf("perfguard: recorded baseline %s (%zu metrics, git %s)\n",
                    dest.string().c_str(), run.metrics.size(),
                    run.git_sha.c_str());
      }
      return 0;
    }

    auto db = db_dir.empty() ? perfguard::PerfDb()
                             : perfguard::PerfDb(db_dir);

    // Committed baselines first, then this run's files.
    if (fs::is_directory(baseline_dir)) {
      for (const fs::path& file : util::list_files(baseline_dir)) {
        const std::string name = file.filename().string();
        if (name.rfind("BENCH_", 0) != 0 ||
            file.extension() != ".json") {
          continue;
        }
        db.record_run(perfguard::load_bench_file(file), "baseline");
      }
    }
    for (const fs::path& file : current_files) {
      db.record_run(perfguard::load_bench_file(file), "current");
    }

    if (list_runs) {
      auto rs = db.connection().execute(
          "SELECT id, bench, kind, git_sha, timestamp FROM perf_runs"
          " ORDER BY id");
      print_result_set(rs);
    }
    if (!sql.empty()) {
      auto rs = db.connection().execute(sql);
      print_result_set(rs);
    }
    if (current_files.empty()) return 0;

    std::vector<perfguard::GateRule> gates;
    if (fs::exists(gated_file)) {
      gates = perfguard::parse_gate_rules(util::read_file(gated_file));
    } else {
      std::fprintf(stderr,
                   "perfguard: no gate file at %s — every metric is"
                   " advisory\n",
                   gated_file.string().c_str());
    }

    const perfguard::Report report = db.compare(threshold, gates);
    std::fputs(perfguard::format_report(report).c_str(), stdout);
    return report.ok() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "perfguard: %s\n", e.what());
    return 2;
  }
}
