// DataSession: the core abstract object by which interactions with
// performance data sources take place (paper §4).
//
// Two access methods are provided, mirroring the paper:
//   1. FileDataSession — the full data-management toolkit: profiles parsed
//      from flat files into memory, then browsed/filtered through this API.
//   2. DatabaseSession — database-only access that queries selectively
//      without loading entire (possibly large) trials.
// The selection of one method does not preclude the other.
//
// Filter semantics: selecting an Application scopes experiment queries,
// selecting an Experiment scopes trial queries, selecting a Trial scopes
// event/metric/data queries, and node/context/thread/metric selections
// scope data-point queries. Clearing a selection (kNoId / nullopt) widens
// the scope again.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "api/database_api.h"
#include "profile/data_model.h"
#include "profile/trial_data.h"

namespace perfdmf::api {

class DataSession {
 public:
  virtual ~DataSession() = default;

  // ----- hierarchy browsing ---------------------------------------------
  virtual std::vector<profile::Application> get_application_list() = 0;
  virtual std::vector<profile::Experiment> get_experiment_list() = 0;
  virtual std::vector<profile::Trial> get_trial_list() = 0;

  // ----- selections -------------------------------------------------------
  virtual void set_application(std::int64_t id) { application_ = id; }
  virtual void set_experiment(std::int64_t id) { experiment_ = id; }
  virtual void set_trial(std::int64_t id) { trial_ = id; }
  void clear_application() { application_.reset(); }
  void clear_experiment() { experiment_.reset(); }
  void clear_trial() { trial_.reset(); }

  void set_node(std::int32_t node) { node_ = node; }
  void set_context(std::int32_t context) { context_ = context; }
  void set_thread(std::int32_t thread) { thread_ = thread; }
  void set_metric(std::int64_t metric_id) { metric_ = metric_id; }
  void set_group(const std::string& group) { group_ = group; }
  void clear_node() { node_.reset(); }
  void clear_context() { context_.reset(); }
  void clear_thread() { thread_.reset(); }
  void clear_metric() { metric_.reset(); }
  void clear_group() { group_.reset(); }

  std::optional<std::int64_t> selected_application() const { return application_; }
  std::optional<std::int64_t> selected_experiment() const { return experiment_; }
  std::optional<std::int64_t> selected_trial() const { return trial_; }

  // ----- scoped queries (require a selected trial) ------------------------
  virtual std::vector<profile::Metric> get_metrics() = 0;
  virtual std::vector<profile::IntervalEvent> get_interval_events() = 0;
  virtual std::vector<profile::AtomicEvent> get_atomic_events() = 0;
  virtual std::vector<IntervalProfileRow> get_interval_data() = 0;
  virtual std::vector<AtomicProfileRow> get_atomic_data() = 0;

 protected:
  std::optional<std::int64_t> application_;
  std::optional<std::int64_t> experiment_;
  std::optional<std::int64_t> trial_;
  std::optional<std::int32_t> node_;
  std::optional<std::int32_t> context_;
  std::optional<std::int32_t> thread_;
  std::optional<std::int64_t> metric_;
  std::optional<std::string> group_;
};

/// In-memory session over parsed profile data (access method 1). The
/// application/experiment hierarchy is synthesized: one application and
/// one experiment wrapping the loaded trials.
class FileDataSession : public DataSession {
 public:
  FileDataSession() = default;

  /// Add a parsed trial; returns its synthetic trial id (1-based).
  std::int64_t add_trial(profile::TrialData trial);
  /// Parse a path in any supported format and add it.
  std::int64_t add_trial_from_path(const std::string& path);

  const profile::TrialData& trial_data(std::int64_t trial_id) const;

  std::vector<profile::Application> get_application_list() override;
  std::vector<profile::Experiment> get_experiment_list() override;
  std::vector<profile::Trial> get_trial_list() override;
  std::vector<profile::Metric> get_metrics() override;
  std::vector<profile::IntervalEvent> get_interval_events() override;
  std::vector<profile::AtomicEvent> get_atomic_events() override;
  std::vector<IntervalProfileRow> get_interval_data() override;
  std::vector<AtomicProfileRow> get_atomic_data() override;

 private:
  const profile::TrialData& selected() const;

  std::vector<profile::TrialData> trials_;
};

}  // namespace perfdmf::api
