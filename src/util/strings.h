// Small string utilities shared across the framework.
//
// These helpers exist because profile-format parsing is overwhelmingly
// line- and token-oriented; keeping them here avoids N private copies in
// the readers (paper objective: common data utilities for translators).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace perfdmf::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Split into at most `max_fields` whitespace-separated fields; the final
/// field receives the untouched remainder (useful for "columns then a free
/// text name" layouts such as gprof and mpiP).
std::vector<std::string> split_ws_limit(std::string_view s, std::size_t max_fields);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Case-insensitive equality for ASCII (SQL keywords, format sniffing).
bool iequals(std::string_view a, std::string_view b);

/// Strict numeric parsing: the whole view must be consumed.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Parse or throw perfdmf::ParseError with context.
std::int64_t parse_int_or_throw(std::string_view s, std::string_view what);
double parse_double_or_throw(std::string_view s, std::string_view what);

/// Split text into lines; handles both "\n" and "\r\n", drops no lines.
std::vector<std::string> split_lines(std::string_view text);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

}  // namespace perfdmf::util
