#include "io/dynaprof_format.h"

#include <cstdio>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::io {

void DynaprofDataSource::parse_into(const std::string& content,
                                    profile::TrialData& trial) {
  const auto lines = util::split_lines(content);
  if (lines.empty() || !util::starts_with(lines[0], "DynaProf")) {
    throw perfdmf::ParseError("dynaprof: missing 'DynaProf' banner");
  }
  std::string metric_name = "WALLCLOCK";
  std::int32_t process = 0;
  std::int32_t thread_number = 0;

  std::size_t i = 1;
  for (; i < lines.size(); ++i) {
    const std::string line = std::string(util::trim(lines[i]));
    if (util::starts_with(line, "Metric:")) {
      metric_name = std::string(util::trim(line.substr(7)));
    } else if (util::starts_with(line, "Process:")) {
      auto fields = util::split_ws(line.substr(8));
      if (!fields.empty()) {
        process = static_cast<std::int32_t>(
            util::parse_int_or_throw(fields[0], "dynaprof process"));
      }
      if (fields.size() >= 3 && fields[1] == "Thread:") {
        thread_number = static_cast<std::int32_t>(
            util::parse_int_or_throw(fields[2], "dynaprof thread"));
      }
    } else if (util::starts_with(line, "Function Summary")) {
      ++i;
      break;
    }
  }
  if (i >= lines.size()) {
    throw perfdmf::ParseError("dynaprof: no 'Function Summary' section");
  }
  const std::size_t metric = trial.intern_metric(metric_name);
  const std::size_t thread = trial.intern_thread({process, 0, thread_number});

  // Skip the column header line.
  if (i < lines.size() && util::starts_with(util::trim(lines[i]), "Name")) ++i;
  for (; i < lines.size(); ++i) {
    const std::string line = std::string(util::trim(lines[i]));
    if (line.empty()) continue;
    // Columns from the right: the function name may contain spaces, so the
    // last three whitespace fields are calls/excl/incl.
    auto fields = util::split_ws(line);
    if (fields.size() < 4) {
      throw perfdmf::ParseError("dynaprof: short summary line: " + line);
    }
    profile::IntervalDataPoint point;
    point.inclusive =
        util::parse_double_or_throw(fields[fields.size() - 1], "dynaprof incl");
    point.exclusive =
        util::parse_double_or_throw(fields[fields.size() - 2], "dynaprof excl");
    point.num_calls =
        util::parse_double_or_throw(fields[fields.size() - 3], "dynaprof calls");
    std::vector<std::string> name_parts(fields.begin(), fields.end() - 3);
    const std::size_t event = trial.intern_event(util::join(name_parts, " "));
    trial.set_interval_data(event, thread, metric, point);
  }
}

profile::TrialData DynaprofDataSource::parse(const std::string& content) {
  profile::TrialData trial;
  parse_into(content, trial);
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData DynaprofDataSource::load() {
  profile::TrialData trial = parse(util::read_file(file_));
  trial.trial().name = file_.filename().string();
  return trial;
}

std::string render_dynaprof_report(const profile::TrialData& trial,
                                   std::size_t thread_index,
                                   const std::string& metric_name) {
  auto metric = trial.find_metric(metric_name);
  if (!metric) {
    throw perfdmf::InvalidArgument("dynaprof writer: no metric " + metric_name);
  }
  if (thread_index >= trial.threads().size()) {
    throw perfdmf::InvalidArgument("dynaprof writer: bad thread index");
  }
  const profile::ThreadId& id = trial.threads()[thread_index];

  std::string out = "DynaProf 1.0 Output\n";
  out += "Probe: wallclockprobe\n";
  out += "Metric: " + metric_name + "\n";
  out += "Process: " + std::to_string(id.node) +
         "  Thread: " + std::to_string(id.thread) + "\n\n";
  out += "Function Summary\n";
  out += "Name                          Calls         Excl.         Incl.\n";
  for (std::size_t e = 0; e < trial.events().size(); ++e) {
    const profile::IntervalDataPoint* p =
        trial.interval_data(e, thread_index, *metric);
    if (p == nullptr) continue;
    char line[384];
    std::snprintf(line, sizeof line, "%-28s %7.0f %13.8g %13.8g\n",
                  trial.events()[e].name.c_str(), p->num_calls, p->exclusive,
                  p->inclusive);
    out += line;
  }
  return out;
}

}  // namespace perfdmf::io
