#include "sqldb/statement_registry.h"

#include "util/log.h"

namespace perfdmf::sqldb {

StatementRegistry::Guard::Guard(StatementRegistry& registry,
                                std::string_view sql, StatementContext* ctx)
    : registry_(&registry) {
  const std::size_t hint =
      registry.cursor_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kSlots; ++i) {
    Slot& slot = registry.slots_[(hint + i) % kSlots];
    std::unique_lock<std::mutex> lock(slot.mu, std::try_to_lock);
    if (!lock.owns_lock() || slot.used) continue;
    slot.used = true;
    slot.id = registry.next_id_.fetch_add(1, std::memory_order_relaxed);
    slot.thread = util::current_thread_id();
    slot.sql.assign(sql.substr(0, kSqlMax));
    slot.ctx = ctx;
    slot.start = std::chrono::steady_clock::now();
    slot_ = (hint + i) % kSlots;
    registered_ = true;
    return;
  }
}

StatementRegistry::Guard::~Guard() {
  if (!registered_) return;
  Slot& slot = registry_->slots_[slot_];
  // Unconditional lock (not try_lock): a snapshot reader holds a slot
  // lock only for a bounded field copy, so this cannot stall — and the
  // slot MUST be cleared before the StatementContext it points at dies.
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.used = false;
  slot.ctx = nullptr;
  slot.sql.clear();
  slot.thread.clear();
}

std::vector<StatementInfo> StatementRegistry::snapshot() const {
  std::vector<StatementInfo> out;
  const auto now = std::chrono::steady_clock::now();
  for (const Slot& slot : slots_) {
    std::unique_lock<std::mutex> lock(slot.mu, std::try_to_lock);
    if (!lock.owns_lock() || !slot.used) continue;
    StatementInfo info;
    info.id = slot.id;
    info.thread = slot.thread;
    info.sql = slot.sql;
    info.elapsed_ms =
        static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                now - slot.start)
                                .count()) /
        1000.0;
    if (slot.ctx != nullptr) {
      info.phase = slot.ctx->phase_label();
      info.rows = slot.ctx->rows_polled();
      // The deadline is set before registration and immutable afterwards;
      // the slot mutex ordered its writes before this read.
      if (slot.ctx->deadline.armed()) {
        info.deadline_remaining_ms = static_cast<double>(
            slot.ctx->deadline.remaining_or(std::chrono::milliseconds(0))
                .count());
      }
      const std::atomic<bool>* cancel = slot.ctx->cancel;
      info.cancel_requested =
          cancel != nullptr && cancel->load(std::memory_order_relaxed);
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace perfdmf::sqldb
