#include "sqldb/expr_eval.h"

#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

bool is_aggregate_function(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" || upper_name == "AVG" ||
         upper_name == "MIN" || upper_name == "MAX" || upper_name == "STDDEV" ||
         upper_name == "VARIANCE";
}

void bind_expr(Expr& expr, std::span<const BoundColumn> columns) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const std::string qualifier = util::to_lower(expr.table_qualifier);
      std::size_t found = static_cast<std::size_t>(-1);
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (!util::iequals(columns[i].name, expr.column_name)) continue;
        if (!qualifier.empty() && !util::iequals(columns[i].qualifier, qualifier)) {
          continue;
        }
        if (found != static_cast<std::size_t>(-1)) {
          throw DbError("ambiguous column reference '" + expr.column_name + "'");
        }
        found = i;
      }
      if (found == static_cast<std::size_t>(-1)) {
        std::string full = expr.table_qualifier.empty()
                               ? expr.column_name
                               : expr.table_qualifier + "." + expr.column_name;
        throw DbError("unknown column '" + full + "'");
      }
      expr.resolved_index = found;
      break;
    }
    default:
      for (auto& child : expr.children) bind_expr(*child, columns);
  }
}

bool is_truthy(const Value& v) {
  if (v.is_null()) return false;
  switch (v.type()) {
    case ValueType::kInt: return v.as_int() != 0;
    case ValueType::kReal: return v.as_real() != 0.0;
    case ValueType::kText: return !v.as_text().empty();
    case ValueType::kNull: return false;
  }
  return false;
}

bool like_match(const std::string& text, const std::string& pattern) {
  // Iterative matcher with backtracking over the last '%'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t star_p = std::string::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Value eval_binary(const Expr& expr, const Row& row, const Params& params);

Value eval_function(const Expr& expr, const Row& row, const Params& params) {
  const std::string& name = expr.function_name;
  if (is_aggregate_function(name)) {
    throw DbError("aggregate " + name + "() used outside SELECT list / HAVING");
  }
  auto arg = [&](std::size_t i) -> Value {
    if (i >= expr.children.size()) {
      throw DbError(name + "() missing argument " + std::to_string(i + 1));
    }
    return eval_expr(*expr.children[i], row, params);
  };
  if (name == "ABS") {
    Value v = arg(0);
    if (v.is_null()) return v;
    if (v.type() == ValueType::kInt) return Value(std::abs(v.as_int()));
    return Value(std::fabs(v.as_real()));
  }
  if (name == "LOWER") {
    Value v = arg(0);
    if (v.is_null()) return v;
    return Value(util::to_lower(v.as_text()));
  }
  if (name == "UPPER") {
    Value v = arg(0);
    if (v.is_null()) return v;
    return Value(util::to_upper(v.as_text()));
  }
  if (name == "LENGTH") {
    Value v = arg(0);
    if (v.is_null()) return v;
    return Value(static_cast<std::int64_t>(v.as_text().size()));
  }
  if (name == "COALESCE") {
    for (const auto& child : expr.children) {
      Value v = eval_expr(*child, row, params);
      if (!v.is_null()) return v;
    }
    return Value();
  }
  if (name == "SQRT") {
    Value v = arg(0);
    if (v.is_null()) return v;
    return Value(std::sqrt(v.as_real()));
  }
  if (name == "ROUND") {
    Value v = arg(0);
    if (v.is_null()) return v;
    double scale = 1.0;
    if (expr.children.size() > 1) {
      Value digits = arg(1);
      scale = std::pow(10.0, static_cast<double>(digits.as_int()));
    }
    return Value(std::round(v.as_real() * scale) / scale);
  }
  throw DbError("unknown function " + name + "()");
}

Value eval_binary(const Expr& expr, const Row& row, const Params& params) {
  const std::string& op = expr.op;
  // AND/OR need three-valued logic with short-circuiting.
  if (op == "AND") {
    Value a = eval_expr(*expr.children[0], row, params);
    if (!a.is_null() && !is_truthy(a)) return Value(std::int64_t{0});
    Value b = eval_expr(*expr.children[1], row, params);
    if (!b.is_null() && !is_truthy(b)) return Value(std::int64_t{0});
    if (a.is_null() || b.is_null()) return Value();
    return Value(std::int64_t{1});
  }
  if (op == "OR") {
    Value a = eval_expr(*expr.children[0], row, params);
    if (!a.is_null() && is_truthy(a)) return Value(std::int64_t{1});
    Value b = eval_expr(*expr.children[1], row, params);
    if (!b.is_null() && is_truthy(b)) return Value(std::int64_t{1});
    if (a.is_null() || b.is_null()) return Value();
    return Value(std::int64_t{0});
  }

  Value a = eval_expr(*expr.children[0], row, params);
  Value b = eval_expr(*expr.children[1], row, params);

  if (op == "LIKE") {
    if (a.is_null() || b.is_null()) return Value();
    bool matched = like_match(a.to_string(), b.to_string());
    if (expr.negated) matched = !matched;
    return Value(std::int64_t{matched ? 1 : 0});
  }
  if (op == "||") {
    if (a.is_null() || b.is_null()) return Value();
    return Value(a.to_string() + b.to_string());
  }

  if (op == "="|| op == "!=" || op == "<" || op == "<=" || op == ">" || op == ">=") {
    if (a.is_null() || b.is_null()) return Value();  // SQL: NULL compares to NULL
    const int c = a.compare(b);
    bool result = false;
    if (op == "=") result = c == 0;
    else if (op == "!=") result = c != 0;
    else if (op == "<") result = c < 0;
    else if (op == "<=") result = c <= 0;
    else if (op == ">") result = c > 0;
    else result = c >= 0;
    return Value(std::int64_t{result ? 1 : 0});
  }

  // Arithmetic.
  if (a.is_null() || b.is_null()) return Value();
  const bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (op == "+") {
    if (both_int) return Value(a.as_int() + b.as_int());
    return Value(a.as_real() + b.as_real());
  }
  if (op == "-") {
    if (both_int) return Value(a.as_int() - b.as_int());
    return Value(a.as_real() - b.as_real());
  }
  if (op == "*") {
    if (both_int) return Value(a.as_int() * b.as_int());
    return Value(a.as_real() * b.as_real());
  }
  if (op == "/") {
    // SQL-style: integer / integer stays integral only when exact division
    // is not needed by callers; PerfDMF derived metrics want real division.
    const double denominator = b.as_real();
    if (denominator == 0.0) return Value();  // division by zero yields NULL
    return Value(a.as_real() / denominator);
  }
  if (op == "%") {
    if (b.as_int() == 0) return Value();
    return Value(a.as_int() % b.as_int());
  }
  throw DbError("unknown operator '" + op + "'");
}

}  // namespace

Value eval_expr(const Expr& expr, const Row& row, const Params& params) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      if (expr.resolved_index == static_cast<std::size_t>(-1)) {
        throw DbError("unbound column reference '" + expr.column_name + "'");
      }
      if (expr.resolved_index >= row.size()) {
        throw DbError("column index out of range during evaluation");
      }
      return row[expr.resolved_index];
    case ExprKind::kPlaceholder:
      if (expr.placeholder_index >= params.size()) {
        throw DbError("missing bind parameter " +
                      std::to_string(expr.placeholder_index + 1));
      }
      return params[expr.placeholder_index];
    case ExprKind::kUnary: {
      Value v = eval_expr(*expr.children[0], row, params);
      if (expr.op == "-") {
        if (v.is_null()) return v;
        if (v.type() == ValueType::kInt) return Value(-v.as_int());
        return Value(-v.as_real());
      }
      if (expr.op == "NOT") {
        if (v.is_null()) return v;
        return Value(std::int64_t{is_truthy(v) ? 0 : 1});
      }
      throw DbError("unknown unary operator '" + expr.op + "'");
    }
    case ExprKind::kBinary:
      return eval_binary(expr, row, params);
    case ExprKind::kFunction:
      return eval_function(expr, row, params);
    case ExprKind::kIsNull: {
      Value v = eval_expr(*expr.children[0], row, params);
      bool null = v.is_null();
      if (expr.negated) null = !null;
      return Value(std::int64_t{null ? 1 : 0});
    }
    case ExprKind::kInList: {
      Value needle = eval_expr(*expr.children[0], row, params);
      if (needle.is_null()) return Value();
      bool found = false;
      bool saw_null = false;
      for (std::size_t i = 1; i < expr.children.size(); ++i) {
        Value candidate = eval_expr(*expr.children[i], row, params);
        if (candidate.is_null()) {
          saw_null = true;
          continue;
        }
        if (needle == candidate) {
          found = true;
          break;
        }
      }
      if (!found && saw_null) return Value();  // unknown
      if (expr.negated) found = !found;
      return Value(std::int64_t{found ? 1 : 0});
    }
    case ExprKind::kBetween: {
      Value v = eval_expr(*expr.children[0], row, params);
      Value lo = eval_expr(*expr.children[1], row, params);
      Value hi = eval_expr(*expr.children[2], row, params);
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value();
      bool inside = v >= lo && v <= hi;
      if (expr.negated) inside = !inside;
      return Value(std::int64_t{inside ? 1 : 0});
    }
    case ExprKind::kStar:
      throw DbError("'*' is only valid inside COUNT(*)");
  }
  throw DbError("unreachable expression kind");
}

std::vector<Expr*> find_aggregates(Expr& expr) {
  std::vector<Expr*> out;
  if (expr.kind == ExprKind::kFunction && is_aggregate_function(expr.function_name)) {
    for (auto& child : expr.children) {
      if (!find_aggregates(*child).empty()) {
        throw DbError("nested aggregate functions are not supported");
      }
    }
    out.push_back(&expr);
    return out;
  }
  for (auto& child : expr.children) {
    auto inner = find_aggregates(*child);
    out.insert(out.end(), inner.begin(), inner.end());
  }
  return out;
}

}  // namespace perfdmf::sqldb
