# Empty compiler generated dependencies file for perfdmf_sqldb.
# This may be replaced when dependencies are built.
