// In-memory table storage with multi-version row slots and ordered indexes.
//
// Row identifiers are stable slot numbers. Each slot holds a newest-first
// chain of RowVersions; DML installs a new version at the head stamped with
// the writer's CommitStamp, and readers resolve the chain against their
// ReadView without blocking — see mvcc.h for the visibility rules. Slots
// whose newest committed version is a delete are reused by later INSERTs
// (the old chain is kept so older snapshots keep reading it), and vacuum()
// — run from checkpoint under full exclusion — collapses chains, frees
// dead slots, and rebuilds the indexes.
//
// Index entries are append-mostly: a (key, RowId) pair is added when a
// version introduces the key and never removed by DML, so lookups can
// return slots whose visible version no longer matches. Every caller
// re-checks the predicate against the resolved version; vacuum rebuilds
// the maps exactly.
//
// Thread contract: concurrent calls are safe between any number of readers
// (fetch/scan/index_* with a ReadView) and ONE writer (insert/update/erase
// with a stamp) — the engine's writer mutex provides the single-writer
// guarantee. create_index/add_column/drop_column/vacuum and the legacy
// stamp-less mutations require full external exclusion.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "sqldb/mvcc.h"
#include "sqldb/schema.h"

namespace perfdmf::sqldb {

using RowId = std::uint64_t;
using Row = std::vector<Value>;

/// One version of one row. `data`, `older` and `begin_stamp` are immutable
/// once the version is published into a slot chain; the deleting writer
/// races readers on `end_stamp`, and the *_cache fields memoize resolved
/// commit timestamps so settled chains stop chasing their stamps.
struct RowVersion {
  Row data;
  RowVersion* older = nullptr;
  CommitStamp* begin_stamp = nullptr;
  std::atomic<std::uint64_t> begin_cache;
  std::atomic<CommitStamp*> end_stamp{nullptr};
  std::atomic<std::uint64_t> end_cache{0};  // 0 = never deleted

  RowVersion(Row d, CommitStamp* s, RowVersion* o)
      : data(std::move(d)),
        older(o),
        begin_stamp(s),
        begin_cache(s ? kTsPending : 0) {}
};

class Table {
 public:
  explicit Table(TableSchema schema);
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  std::size_t live_row_count() const {
    const auto n = live_rows_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  std::size_t slot_count() const {
    return slot_high_.load(std::memory_order_acquire);
  }

  // --- Versioned access -----------------------------------------------

  /// Validate, coerce, fill defaults/auto-increment, maintain indexes.
  /// Installs a version stamped with `stamp` (pending until the write unit
  /// commits). Reuses a committed-deleted slot when one is available.
  RowId insert(Row row, CommitStamp* stamp, const ReadView& view);

  /// Install a replacement version for the row `view` sees at `id`.
  void update(RowId id, Row row, CommitStamp* stamp, const ReadView& view);

  /// Mark the version `view` sees at `id` as deleted by `stamp`.
  void erase(RowId id, CommitStamp* stamp, const ReadView& view);

  /// The row `view` sees at `id`, or nullptr. The reference stays valid for
  /// the duration of the reader's statement: versions are only freed by
  /// vacuum(), which requires full exclusion.
  const Row* fetch(RowId id, const ReadView& view) const;

  bool is_live(RowId id, const ReadView& view) const {
    return fetch(id, view) != nullptr;
  }

  const Row& row(RowId id, const ReadView& view) const;

  /// Visit every row `view` sees, in slot order. Slot heads are copied out
  /// in batches under a short shared latch so a long scan never starves
  /// the writer.
  template <typename Fn>
  void scan(const ReadView& view, Fn&& fn) const {
    std::vector<std::pair<RowId, const RowVersion*>> batch;
    RowId next = 0;
    while (collect_batch(next, batch)) {
      for (const auto& [id, head] : batch) {
        if (const RowVersion* v = resolve_visible(head, view)) fn(id, v->data);
      }
    }
  }

  // --- Legacy stamp-less access (requires external exclusion) -----------
  //
  // Bulk-load / scratch-table path: snapshot load, system-table and view
  // materialisation, and single-threaded tests. Versions are committed at
  // timestamp 0 (visible to every view); mutations act on the latest
  // committed version in place.

  RowId insert(Row row) { return insert(std::move(row), nullptr, ReadView::latest()); }
  void update(RowId id, Row row);
  void erase(RowId id);
  bool is_live(RowId id) const { return is_live(id, ReadView::latest()); }
  const Row& row(RowId id) const { return row(id, ReadView::latest()); }

  template <typename Fn>
  void scan(Fn&& fn) const {
    scan(ReadView::latest(), std::forward<Fn>(fn));
  }

  // --- Indexes ----------------------------------------------------------

  /// Create an ordered secondary index over one column. Idempotent.
  /// Requires full exclusion (autocommit CREATE INDEX runs under the DDL
  /// guard); entries for every non-aborted version are added so a writer
  /// indexing mid-transaction can use the index for its own pending rows.
  void create_index(std::size_t column_index, bool unique);
  bool has_index(std::size_t column_index) const;
  bool has_unique_index(std::size_t column_index) const;

  /// RowIds whose column equals `key` (via an index when present, else
  /// nullopt so the caller falls back to a scan). May include slots whose
  /// visible version no longer carries the key — callers re-check.
  std::optional<std::vector<RowId>> index_equal(std::size_t column_index,
                                                const Value& key) const;

  /// RowIds inside [lo, hi] (either bound may be absent; a bound is
  /// excluded from the range when its *_inclusive flag is false, so strict
  /// inequalities fetch exactly the qualifying keys).
  std::optional<std::vector<RowId>> index_range(std::size_t column_index,
                                                const std::optional<Value>& lo,
                                                const std::optional<Value>& hi,
                                                bool lo_inclusive = true,
                                                bool hi_inclusive = true) const;

  /// Next value the auto-increment primary key would take (for reflection).
  std::int64_t next_auto_increment() const {
    return next_auto_.load(std::memory_order_relaxed);
  }
  void bump_auto_increment(std::int64_t at_least);

  /// Schema evolution (flexible-schema support, paper §3.2). Existing rows
  /// are padded with the default value / have the column removed. Requires
  /// full exclusion: every version in every chain is rewritten in place.
  void add_column(ColumnDef column);
  void drop_column(const std::string& name);

  // --- MVCC maintenance -------------------------------------------------

  /// Revert an optimistic live-row-count adjustment (write-unit rollback).
  void adjust_live(std::int64_t delta) {
    live_rows_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Collapse every chain to its newest committed version, free slots whose
  /// row is deleted, fold resolved stamps into the timestamp caches, rebuild
  /// the indexes exactly, and compact trailing free slots. Requires full
  /// exclusion and no pending stamps (checkpoint guarantees both).
  /// Returns the number of versions reclaimed.
  std::size_t vacuum();

  /// Resolve `head` against `view` per the mvcc.h visibility rules.
  static const RowVersion* resolve_visible(const RowVersion* head,
                                           const ReadView& view);

 private:
  struct Slot {
    std::atomic<RowVersion*> head{nullptr};
  };
  struct Index {
    bool unique = false;
    std::multimap<Value, RowId> entries;
  };

  Row normalize(Row row) const;
  Row prepare_insert(Row row);
  /// Add (row[column], id) to every index, skipping pairs already present.
  void index_add(RowId id, const Row& row);
  void index_add_one(Index& index, const Value& key, RowId id);
  void check_unique_locked(const Row& row, std::optional<RowId> self,
                           const ReadView& view) const;
  /// Pop a reusable committed-deleted slot, or allocate a fresh one.
  /// Caller holds the exclusive latch.
  RowId allocate_slot_locked();
  void free_chain(RowVersion* head);
  bool collect_batch(RowId& next,
                     std::vector<std::pair<RowId, const RowVersion*>>& out) const;

  TableSchema schema_;
  mutable std::shared_mutex latch_;
  std::deque<Slot> slots_;
  std::vector<RowId> free_slots_;  // candidates; re-validated before reuse
  std::atomic<std::size_t> slot_high_{0};
  std::atomic<std::int64_t> live_rows_{0};
  std::map<std::size_t, Index> indexes_;  // column index -> index
  std::atomic<std::int64_t> next_auto_{1};
};

}  // namespace perfdmf::sqldb
