#include "util/file.h"

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>

#include "util/error.h"

namespace perfdmf::util {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file for reading: " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw IoError("read failed: " + path.string());
  return std::move(out).str();
}

void write_file(const std::filesystem::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open file for writing: " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw IoError("write failed: " + path.string());
}

void append_file(const std::filesystem::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw IoError("cannot open file for appending: " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) throw IoError("append failed: " + path.string());
}

std::vector<std::filesystem::path> list_files(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) throw IoError("not a directory: " + dir.string());
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::filesystem::path make_temp_dir(const std::string& prefix) {
  namespace fs = std::filesystem;
  static std::mt19937_64 rng{std::random_device{}()};
  const fs::path root = fs::temp_directory_path();
  for (int attempt = 0; attempt < 64; ++attempt) {
    fs::path candidate = root / (prefix + "-" + std::to_string(rng()));
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) return candidate;
  }
  throw IoError("could not create temporary directory under " + root.string());
}

ScopedTempDir::ScopedTempDir(const std::string& prefix)
    : path_(make_temp_dir(prefix)) {}

ScopedTempDir::~ScopedTempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort in a destructor
  }
}

ScopedTempDir::ScopedTempDir(ScopedTempDir&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

}  // namespace perfdmf::util
