file(REMOVE_RECURSE
  "CMakeFiles/test_sqldb_parser.dir/test_sqldb_parser.cpp.o"
  "CMakeFiles/test_sqldb_parser.dir/test_sqldb_parser.cpp.o.d"
  "test_sqldb_parser"
  "test_sqldb_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sqldb_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
