# Empty dependencies file for perfdmf_io.
# This may be replaced when dependencies are built.
