
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/access_control.cpp" "src/CMakeFiles/perfdmf_api.dir/api/access_control.cpp.o" "gcc" "src/CMakeFiles/perfdmf_api.dir/api/access_control.cpp.o.d"
  "/root/repo/src/api/data_session.cpp" "src/CMakeFiles/perfdmf_api.dir/api/data_session.cpp.o" "gcc" "src/CMakeFiles/perfdmf_api.dir/api/data_session.cpp.o.d"
  "/root/repo/src/api/database_api.cpp" "src/CMakeFiles/perfdmf_api.dir/api/database_api.cpp.o" "gcc" "src/CMakeFiles/perfdmf_api.dir/api/database_api.cpp.o.d"
  "/root/repo/src/api/database_session.cpp" "src/CMakeFiles/perfdmf_api.dir/api/database_session.cpp.o" "gcc" "src/CMakeFiles/perfdmf_api.dir/api/database_session.cpp.o.d"
  "/root/repo/src/api/file_session.cpp" "src/CMakeFiles/perfdmf_api.dir/api/file_session.cpp.o" "gcc" "src/CMakeFiles/perfdmf_api.dir/api/file_session.cpp.o.d"
  "/root/repo/src/api/schema_bootstrap.cpp" "src/CMakeFiles/perfdmf_api.dir/api/schema_bootstrap.cpp.o" "gcc" "src/CMakeFiles/perfdmf_api.dir/api/schema_bootstrap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/perfdmf_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/perfdmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
