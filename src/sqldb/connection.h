// JDBC-shaped connectivity layer.
//
// The paper's implementation reaches every supported DBMS through JDBC so
// analysis code never sees vendor SQL. This layer reproduces the shapes
// PerfDMF depends on: Connection, Statement, PreparedStatement with '?'
// binding, ResultSet cursors, and DatabaseMetaData column reflection
// (the getMetaData() mechanism behind the flexible schema, paper §3.2).
//
// Concurrency: a Connection coordinates with every other connection to
// the same Database through the database's LockManager. Statements are
// classified at prepare/parse time; SELECTs take the lock shared so
// read-only queries from different connections (or threads) execute in
// parallel, while DML/DDL/transactions serialize exclusively. Several
// lightweight connections may share one Database (the multi-client
// analysis-server deployment); a single Connection may also still be
// shared by several threads, as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/database.h"

namespace perfdmf::sqldb {

/// Cursor over a materialized query result. Navigation follows JDBC:
/// the cursor starts before the first row; next() advances and reports
/// whether a row is available. Columns are addressed 1-based by position
/// or by (case-insensitive) name.
class ResultSet {
 public:
  explicit ResultSet(ResultSetData data);

  bool next();
  std::size_t row_count() const { return data_.rows.size(); }
  std::size_t column_count() const { return data_.column_names.size(); }
  const std::vector<std::string>& column_names() const { return data_.column_names; }

  /// 1-based positional access (JDBC convention).
  Value get(std::size_t index) const;
  Value get(const std::string& column_name) const;

  std::int64_t get_int(std::size_t index) const { return get(index).as_int(); }
  double get_double(std::size_t index) const { return get(index).as_real(); }
  std::string get_string(std::size_t index) const;
  bool is_null(std::size_t index) const { return get(index).is_null(); }

  std::int64_t get_int(const std::string& name) const { return get(name).as_int(); }
  double get_double(const std::string& name) const { return get(name).as_real(); }
  std::string get_string(const std::string& name) const;
  bool is_null(const std::string& name) const { return get(name).is_null(); }

 private:
  const Row& current() const;

  ResultSetData data_;
  std::ptrdiff_t cursor_ = -1;
};

class Connection;

/// Counters for a Connection's statement/plan cache.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  // entries dropped on schema-epoch change
  std::uint64_t evictions = 0;      // entries dropped by LRU capacity
};

/// A pre-parsed statement with '?' parameter binding (1-based setters).
/// A PreparedStatement belongs to the thread using it (its AST is bound
/// in place during execution); share the Connection, not the statement.
class PreparedStatement {
 public:
  PreparedStatement(Connection& connection, std::string sql);

  void set_int(std::size_t index, std::int64_t value);
  void set_double(std::size_t index, double value);
  void set_string(std::size_t index, std::string value);
  void set_null(std::size_t index);
  void set_value(std::size_t index, Value value);
  void clear_parameters();

  ResultSet execute_query();
  /// Returns the affected-row count.
  std::size_t execute_update();

  std::size_t parameter_count() const { return statement_.placeholder_count; }

  /// Whether this statement only reads (classified once, at parse time).
  bool is_read_only() const {
    return classify_statement(statement_) == StatementClass::kRead;
  }

 private:
  /// Debug-build enforcement of the thread-affinity rule above: the
  /// first thread to bind or execute becomes the owner; any other thread
  /// trips an assertion (catches cross-thread sharing without TSan).
  void debug_claim_thread();

  Connection& connection_;
  std::string sql_;
  Statement statement_;
  Params params_;
  std::atomic<std::thread::id> owner_thread_{};
};

/// Reflection over the catalog, mirroring java.sql.DatabaseMetaData.
class DatabaseMetaData {
 public:
  explicit DatabaseMetaData(Connection& connection) : connection_(connection) {}

  std::vector<std::string> get_tables();
  std::vector<std::string> get_views();

  struct ColumnInfo {
    std::string name;
    ValueType type;
    bool not_null;
    bool primary_key;
  };
  std::vector<ColumnInfo> get_columns(const std::string& table);

  struct ForeignKeyInfo {
    std::string column;
    std::string parent_table;
    std::string parent_column;
  };
  std::vector<ForeignKeyInfo> get_foreign_keys(const std::string& table);

 private:
  Connection& connection_;
};

class Connection {
 public:
  /// In-memory database.
  Connection();
  /// File-backed database at `directory` (created / recovered). What
  /// recovery found — corrupt WAL records, a rescued snapshot, replay
  /// failures — is in recovery_report().
  explicit Connection(const std::filesystem::path& directory);
  Connection(const std::filesystem::path& directory,
             const DurabilityOptions& options);
  /// Lightweight connection over an existing (shared) database. All
  /// connections to one Database coordinate through its lock manager,
  /// so read-only statements from different connections run in parallel
  /// while writes serialize.
  explicit Connection(std::shared_ptr<Database> database);

  /// Execute SQL directly. Parsed statements are cached on this
  /// connection keyed by the SQL text (LRU), so repeated shapes —
  /// DatabaseAPI's per-trial INSERT/SELECT loops — skip re-parsing. The
  /// cache is invalidated by DDL through the database's schema epoch.
  ResultSet execute(std::string_view sql, const Params& params = {});
  std::size_t execute_update(std::string_view sql, const Params& params = {});

  /// Plan-cache observability and sizing. Capacity 0 disables caching.
  PlanCacheStats plan_cache_stats() const;
  void set_plan_cache_capacity(std::size_t capacity);

  PreparedStatement prepare(std::string sql) {
    return PreparedStatement(*this, std::move(sql));
  }

  DatabaseMetaData get_meta_data() { return DatabaseMetaData(*this); }

  /// Transactions hold the database's exclusive lock from begin() to
  /// commit()/rollback() and are thread-affine: finish a transaction on
  /// the thread that began it.
  void begin();
  void commit();
  void rollback();
  void checkpoint();

  // ----- statement governance ------------------------------------------
  /// Per-statement deadline for everything executed through this
  /// connection: row loops, lock waits, and admission queueing all
  /// observe it; expiry raises DbError{kTimeout} with the statement
  /// rolled back. 0 disables (default; initial value comes from
  /// PERFDMF_STMT_TIMEOUT_MS).
  void set_statement_timeout_ms(std::int64_t ms) { statement_timeout_ms_ = ms; }
  std::int64_t statement_timeout_ms() const { return statement_timeout_ms_; }

  /// Per-statement memory budget in bytes for the executor's hash-join /
  /// group-by / Top-K state. Crossing it degrades to the fallback
  /// operators; crossing 4x errors with DbError{kMemBudget}. 0 disables
  /// (default; initial value comes from PERFDMF_STMT_MEM_BYTES).
  void set_statement_mem_bytes(std::uint64_t bytes) {
    statement_mem_bytes_ = bytes;
  }
  std::uint64_t statement_mem_bytes() const { return statement_mem_bytes_; }

  /// Cancel the statement this connection is currently executing —
  /// callable from any thread. The victim observes the flag at its next
  /// cancellation point and unwinds with DbError{kCancelled}; if no
  /// statement is in flight, the next one is cancelled promptly instead.
  void cancel() { cancel_flag_.store(true, std::memory_order_relaxed); }
  /// Withdraw a cancel() that has not been delivered yet.
  void clear_cancel() { cancel_flag_.store(false, std::memory_order_relaxed); }

  Database& database() { return *database_; }
  /// The shared database handle, for opening sibling connections.
  const std::shared_ptr<Database>& database_ptr() const { return database_; }

  /// What opening the database's files found (clean for in-memory).
  const RecoveryReport& recovery_report() const {
    return database_->recovery_report();
  }

 private:
  friend class PreparedStatement;

  /// Classify, admit (governor), take the right lock, and execute.
  ResultSetData run_statement(Statement& stmt, const Params& params,
                              std::string_view sql);
  /// run_statement's body, running under an installed StatementContext.
  ResultSetData run_governed(Statement& stmt, const Params& params,
                             std::string_view sql, StatementContext& ctx);
  /// Fresh context from this connection's timeout/budget/cancel state.
  StatementContext make_statement_context();
  /// Seed timeout/budget defaults from PERFDMF_STMT_TIMEOUT_MS and
  /// PERFDMF_STMT_MEM_BYTES.
  void init_governance_from_env();

  // ----- statement/plan cache -----------------------------------------
  // A cached AST is bound in place during execution, so an entry is
  // leased exclusively (in_use) while a statement runs; a second thread
  // executing the same SQL text concurrently falls back to a fresh
  // parse. Entries carry the schema epoch they were parsed under and are
  // dropped when DDL has bumped it since.
  struct CacheEntry {
    std::unique_ptr<Statement> statement;
    std::uint64_t schema_epoch = 0;
    bool in_use = false;
    std::list<std::string>::iterator lru;  // position in lru_
  };
  struct PlanLease {
    Statement* statement = nullptr;
    std::unique_ptr<Statement> owned;  // set when not served from cache
    std::string key;
    bool from_cache = false;
    bool cache_on_release = false;
  };

  ResultSetData run_cached(std::string_view sql, const Params& params);
  PlanLease lease_plan(std::string_view sql);
  void release_plan(PlanLease& lease);
  void evict_to_capacity_locked();

  std::shared_ptr<Database> database_;

  std::int64_t statement_timeout_ms_ = 0;
  std::uint64_t statement_mem_bytes_ = 0;
  std::atomic<bool> cancel_flag_{false};

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  // front = most recently used
  std::size_t cache_capacity_ = 64;
  PlanCacheStats cache_stats_;
};

}  // namespace perfdmf::sqldb
