# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paraprof_text "/root/repo/build/examples/paraprof_text")
set_tests_properties(example_paraprof_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_speedup_analyzer "/root/repo/build/examples/speedup_analyzer" "8")
set_tests_properties(example_speedup_analyzer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_perfexplorer_mining "/root/repo/build/examples/perfexplorer_mining" "48")
set_tests_properties(example_perfexplorer_mining PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_usage "/root/repo/build/examples/perfdmf_cli")
set_tests_properties(example_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
