#include "profile/summary.h"

#include <algorithm>
#include <limits>

namespace perfdmf::profile {

std::vector<IntervalSummary> compute_interval_summaries(const TrialData& trial) {
  // Key: event * n_metrics + metric (both dense indexes).
  const std::size_t n_metrics = std::max<std::size_t>(1, trial.metrics().size());
  std::map<std::size_t, IntervalSummary> summaries;
  trial.for_each_interval([&](std::size_t event, std::size_t thread,
                              std::size_t metric, const IntervalDataPoint& p) {
    (void)thread;
    auto [it, inserted] = summaries.try_emplace(event * n_metrics + metric);
    IntervalSummary& s = it->second;
    if (inserted) {
      s.event_index = event;
      s.metric_index = metric;
    }
    ++s.thread_count;
    s.total.inclusive += p.inclusive;
    s.total.exclusive += p.exclusive;
    s.total.inclusive_pct += p.inclusive_pct;
    s.total.exclusive_pct += p.exclusive_pct;
    s.total.num_calls += p.num_calls;
    s.total.num_subrs += p.num_subrs;
  });

  std::vector<IntervalSummary> out;
  out.reserve(summaries.size());
  for (auto& [key, s] : summaries) {
    const double n = static_cast<double>(s.thread_count);
    s.total.inclusive_per_call =
        s.total.num_calls > 0.0 ? s.total.inclusive / s.total.num_calls : 0.0;
    s.mean.inclusive = s.total.inclusive / n;
    s.mean.exclusive = s.total.exclusive / n;
    s.mean.inclusive_pct = s.total.inclusive_pct / n;
    s.mean.exclusive_pct = s.total.exclusive_pct / n;
    s.mean.num_calls = s.total.num_calls / n;
    s.mean.num_subrs = s.total.num_subrs / n;
    s.mean.inclusive_per_call =
        s.mean.num_calls > 0.0 ? s.mean.inclusive / s.mean.num_calls : 0.0;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<AtomicSummary> compute_atomic_summaries(const TrialData& trial) {
  std::map<std::size_t, AtomicSummary> summaries;
  trial.for_each_atomic([&](std::size_t atomic, std::size_t thread,
                            const AtomicDataPoint& p) {
    (void)thread;
    auto [it, inserted] = summaries.try_emplace(atomic);
    AtomicSummary& s = it->second;
    if (inserted) {
      s.atomic_index = atomic;
      s.minimum = std::numeric_limits<double>::infinity();
      s.maximum = -std::numeric_limits<double>::infinity();
    }
    ++s.thread_count;
    s.total_samples += p.sample_count;
    s.minimum = std::min(s.minimum, p.minimum);
    s.maximum = std::max(s.maximum, p.maximum);
    s.mean_of_means += p.mean;
  });
  std::vector<AtomicSummary> out;
  out.reserve(summaries.size());
  for (auto& [key, s] : summaries) {
    s.mean_of_means /= static_cast<double>(s.thread_count);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace perfdmf::profile
