// Tests for the CUBE-style trial algebra (paper §7 planned integration).
#include <gtest/gtest.h>

#include "analysis/algebra.h"
#include "io/synth.h"
#include "util/error.h"

using namespace perfdmf;
using namespace perfdmf::analysis;

namespace {

profile::TrialData simple_trial(const std::string& name, double scale,
                                std::int32_t nodes = 2) {
  profile::TrialData trial;
  trial.trial().name = name;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e1 = trial.intern_event("alpha", "comp");
  const std::size_t e2 = trial.intern_event("beta", "comp");
  for (std::int32_t n = 0; n < nodes; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.inclusive = 100.0 * scale;
    p.exclusive = 60.0 * scale;
    p.num_calls = 10.0 * scale;
    trial.set_interval_data(e1, t, m, p);
    p.inclusive = 40.0 * scale;
    p.exclusive = 40.0 * scale;
    p.num_calls = 4.0 * scale;
    trial.set_interval_data(e2, t, m, p);
  }
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

}  // namespace

TEST(TrialAlgebra, DifferenceOfAlignedTrials) {
  auto a = simple_trial("a", 3.0);
  auto b = simple_trial("b", 1.0);
  auto diff = trial_difference(a, b);
  EXPECT_EQ(diff.trial().name, "a - b");
  const auto e = diff.find_event("alpha");
  const auto m = diff.find_metric("TIME");
  const auto t = diff.find_thread({0, 0, 0});
  ASSERT_TRUE(e && m && t);
  const auto* p = diff.interval_data(*e, *t, *m);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 120.0);  // 180 - 60
  EXPECT_DOUBLE_EQ(p->inclusive, 200.0);  // 300 - 100
  EXPECT_DOUBLE_EQ(p->num_calls, 20.0);
}

TEST(TrialAlgebra, DifferenceSelfIsZero) {
  auto a = simple_trial("a", 2.0);
  auto diff = trial_difference(a, a);
  diff.for_each_interval([](std::size_t, std::size_t, std::size_t,
                            const profile::IntervalDataPoint& p) {
    EXPECT_DOUBLE_EQ(p.inclusive, 0.0);
    EXPECT_DOUBLE_EQ(p.exclusive, 0.0);
  });
}

TEST(TrialAlgebra, DifferenceKeepsStructuralExtras) {
  auto a = simple_trial("a", 1.0);
  auto b = simple_trial("b", 1.0);
  // Add an event only in b.
  const std::size_t extra = b.intern_event("gamma");
  profile::IntervalDataPoint p;
  p.exclusive = 7.0;
  p.inclusive = 7.0;
  b.set_interval_data(extra, 0, 0, p);

  auto diff = trial_difference(a, b);
  const auto ge = diff.find_event("gamma");
  ASSERT_TRUE(ge.has_value());
  const auto* q = diff.interval_data(*ge, *diff.find_thread({0, 0, 0}),
                                     *diff.find_metric("TIME"));
  ASSERT_NE(q, nullptr);
  EXPECT_DOUBLE_EQ(q->exclusive, -7.0);  // 0 - 7
}

TEST(TrialAlgebra, MergeSumsAlignedPoints) {
  auto a = simple_trial("a", 1.0);
  auto b = simple_trial("b", 2.0);
  auto merged = trial_merge(a, b);
  const auto* p = merged.interval_data(*merged.find_event("beta"),
                                       *merged.find_thread({1, 0, 0}),
                                       *merged.find_metric("TIME"));
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 120.0);  // 40 + 80
}

TEST(TrialAlgebra, MergeOfDisjointThreadsIsUnion) {
  auto a = simple_trial("a", 1.0, 2);  // nodes 0,1
  profile::TrialData b;
  b.trial().name = "b";
  const std::size_t m = b.intern_metric("TIME");
  const std::size_t e = b.intern_event("alpha", "comp");
  const std::size_t t = b.intern_thread({5, 0, 0});
  profile::IntervalDataPoint p;
  p.exclusive = 9.0;
  b.set_interval_data(e, t, m, p);

  auto merged = trial_merge(a, b);
  EXPECT_EQ(merged.threads().size(), 3u);
  EXPECT_DOUBLE_EQ(merged
                       .interval_data(*merged.find_event("alpha"),
                                      *merged.find_thread({5, 0, 0}),
                                      *merged.find_metric("TIME"))
                       ->exclusive,
                   9.0);
}

TEST(TrialAlgebra, MeanOfThreeTrials) {
  auto a = simple_trial("a", 1.0);
  auto b = simple_trial("b", 2.0);
  auto c = simple_trial("c", 3.0);
  auto mean = trial_mean({&a, &b, &c});
  const auto* p = mean.interval_data(*mean.find_event("alpha"),
                                     *mean.find_thread({0, 0, 0}),
                                     *mean.find_metric("TIME"));
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 120.0);  // (60+120+180)/3
  EXPECT_DOUBLE_EQ(p->num_calls, 20.0);
}

TEST(TrialAlgebra, MeanDividesByContributingTrials) {
  auto a = simple_trial("a", 1.0);
  auto b = simple_trial("b", 3.0);
  const std::size_t extra = b.intern_event("gamma");
  profile::IntervalDataPoint p;
  p.exclusive = 10.0;
  b.set_interval_data(extra, 0, 0, p);
  auto mean = trial_mean({&a, &b});
  // gamma exists only in b -> mean over 1 contributor.
  const auto* q = mean.interval_data(*mean.find_event("gamma"),
                                     *mean.find_thread({0, 0, 0}),
                                     *mean.find_metric("TIME"));
  ASSERT_NE(q, nullptr);
  EXPECT_DOUBLE_EQ(q->exclusive, 10.0);
}

TEST(TrialAlgebra, MeanOfNothingThrows) {
  EXPECT_THROW(trial_mean({}), InvalidArgument);
}

TEST(TrialAlgebra, MeanIdentity) {
  auto a = simple_trial("a", 1.5);
  auto mean = trial_mean({&a});
  a.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                          const profile::IntervalDataPoint& p) {
    const auto* q = mean.interval_data(
        *mean.find_event(a.events()[e].name),
        *mean.find_thread(a.threads()[t]), *mean.find_metric(a.metrics()[m].name));
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(q->exclusive, p.exclusive);
  });
}

TEST(TrialAlgebra, CombineCustomOperator) {
  auto a = simple_trial("a", 2.0);
  auto b = simple_trial("b", 1.0);
  auto ratio = trial_combine(
      a, b,
      [](const profile::IntervalDataPoint& pa,
         const profile::IntervalDataPoint& pb) {
        profile::IntervalDataPoint out;
        out.exclusive = pb.exclusive != 0.0 ? pa.exclusive / pb.exclusive : 0.0;
        out.inclusive = pb.inclusive != 0.0 ? pa.inclusive / pb.inclusive : 0.0;
        return out;
      },
      false, false);
  const auto* p = ratio.interval_data(*ratio.find_event("alpha"),
                                      *ratio.find_thread({0, 0, 0}),
                                      *ratio.find_metric("TIME"));
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 2.0);
}

TEST(TrialAlgebra, CombineDropPolicies) {
  auto a = simple_trial("a", 1.0);
  auto b = simple_trial("b", 1.0);
  b.intern_event("gamma");
  profile::IntervalDataPoint p;
  p.exclusive = 1.0;
  b.set_interval_data(*b.find_event("gamma"), 0, 0, p);

  auto add = [](const profile::IntervalDataPoint& x,
                const profile::IntervalDataPoint& y) {
    profile::IntervalDataPoint out;
    out.exclusive = x.exclusive + y.exclusive;
    out.inclusive = x.inclusive + y.inclusive;
    return out;
  };
  auto strict = trial_combine(a, b, add, false, false);
  EXPECT_FALSE(strict.find_event("gamma").has_value());
  auto keep_b = trial_combine(a, b, add, false, true);
  EXPECT_TRUE(keep_b.find_event("gamma").has_value());
}

TEST(StructuralDiffTest, DetectsAsymmetries) {
  auto a = simple_trial("a", 1.0, 3);
  auto b = simple_trial("b", 1.0, 2);
  b.intern_metric("PAPI_FP_OPS");
  a.intern_event("only_a");

  auto diff = structural_diff(a, b);
  EXPECT_FALSE(diff.identical_structure());
  ASSERT_EQ(diff.events_only_in_a.size(), 1u);
  EXPECT_EQ(diff.events_only_in_a[0], "only_a");
  ASSERT_EQ(diff.metrics_only_in_b.size(), 1u);
  EXPECT_EQ(diff.metrics_only_in_b[0], "PAPI_FP_OPS");
  EXPECT_EQ(diff.threads_only_in_a, 1u);  // node 2
  EXPECT_EQ(diff.threads_only_in_b, 0u);
}

TEST(StructuralDiffTest, IdenticalTrials) {
  auto a = simple_trial("a", 1.0);
  auto diff = structural_diff(a, a);
  EXPECT_TRUE(diff.identical_structure());
}

TEST(TrialAlgebra, DifferenceOfSyntheticScalingTrialsShowsImprovement) {
  io::synth::ScalingSpec spec;
  auto slow = io::synth::generate_scaling_trial(spec, 2);
  auto fast = io::synth::generate_scaling_trial(spec, 8);
  // Threads differ (2 vs 8 ranks); compare rank 0 only via the diff on
  // aligned points: exclusive times should drop (positive delta).
  auto diff = trial_difference(slow, fast);
  const auto e = diff.find_event("hydro_sweep");
  const auto m = diff.find_metric("TIME");
  const auto t = diff.find_thread({0, 0, 0});
  ASSERT_TRUE(e && m && t);
  EXPECT_GT(diff.interval_data(*e, *t, *m)->exclusive, 0.0);
}
