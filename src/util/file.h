// Filesystem helpers used by the profile readers/writers and the WAL.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace perfdmf::util {

/// Read an entire file into a string. Throws IoError on failure.
std::string read_file(const std::filesystem::path& path);

/// Write (truncate) a file from a string. Throws IoError on failure.
void write_file(const std::filesystem::path& path, std::string_view content);

/// Append to a file, creating it if necessary. Throws IoError on failure.
void append_file(const std::filesystem::path& path, std::string_view content);

/// Non-recursive listing of regular files in a directory, sorted by name.
std::vector<std::filesystem::path> list_files(const std::filesystem::path& dir);

/// Create a unique temporary directory under the system temp root.
/// The caller owns removal; tests use ScopedTempDir below.
std::filesystem::path make_temp_dir(const std::string& prefix);

/// RAII temporary directory: created on construction, recursively removed
/// on destruction. Move-only.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "perfdmf");
  ~ScopedTempDir();
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  ScopedTempDir(ScopedTempDir&& other) noexcept;
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace perfdmf::util
