# Empty compiler generated dependencies file for perfdmf_explorer.
# This may be replaced when dependencies are built.
