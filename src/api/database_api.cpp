#include "api/database_api.h"

#include <algorithm>
#include <cmath>

#include "api/schema_bootstrap.h"
#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/timer.h"

namespace perfdmf::api {

using sqldb::Params;
using sqldb::ResultSet;
using sqldb::Value;

namespace {

const std::vector<std::string> kApplicationCore = {"id", "name"};
const std::vector<std::string> kExperimentCore = {"id", "application", "name"};
const std::vector<std::string> kTrialCore = {"id",         "experiment",
                                             "name",       "node_count",
                                             "contexts_per_node",
                                             "threads_per_context"};

bool is_core(const std::string& column, const std::vector<std::string>& core) {
  for (const auto& c : core) {
    if (util::iequals(c, column)) return true;
  }
  return false;
}

/// RAII transaction for multi-statement read-modify-write sequences that
/// must not interleave with writers on sibling connections (the exclusive
/// lock is held from begin() to commit()). Joins an enclosing transaction
/// when the calling thread already owns one — the outer owner commits —
/// and rolls back on destruction if commit() was never reached.
class ScopedTransaction {
 public:
  explicit ScopedTransaction(sqldb::Connection& connection)
      : connection_(connection),
        owned_(!connection.database().locks().owned_by_this_thread()) {
    if (owned_) connection_.begin();
  }

  ~ScopedTransaction() {
    if (owned_ && !done_) {
      try {
        connection_.rollback();
      } catch (...) {
        // Unwinding already; the original exception carries the cause.
      }
    }
  }

  void commit() {
    if (owned_) connection_.commit();
    done_ = true;
  }

  ScopedTransaction(const ScopedTransaction&) = delete;
  ScopedTransaction& operator=(const ScopedTransaction&) = delete;

 private:
  sqldb::Connection& connection_;
  bool owned_;
  bool done_ = false;
};

}  // namespace

DatabaseAPI::DatabaseAPI(std::shared_ptr<sqldb::Connection> connection)
    : connection_(std::move(connection)) {
  if (!schema_present(*connection_)) bootstrap_schema(*connection_);
}

// ---------------------------------------------------------- flexible rows

profile::Metadata DatabaseAPI::read_fields(
    const std::string& table, ResultSet& rs,
    const std::vector<std::string>& core_columns) {
  profile::Metadata fields;
  for (const auto& column : rs.column_names()) {
    if (is_core(column, core_columns)) continue;
    if (!rs.is_null(column)) fields[column] = rs.get_string(column);
  }
  (void)table;
  return fields;
}

void DatabaseAPI::save_row_with_fields(
    const std::string& table,
    const std::vector<std::pair<std::string, Value>>& core_values,
    std::int64_t& id, const profile::Metadata& fields, bool extend_schema) {
  // The reflect → extend → write sequence below is a check-then-act:
  // without a transaction, two connections saving rows with the same new
  // metadata column can both see it missing and both ALTER, and the
  // MAX(id) fetch after the INSERT can read a row another connection just
  // assigned. The transaction holds the exclusive lock across the whole
  // sequence, making it atomic against sibling connections.
  ScopedTransaction txn(*connection_);

  // Discover the live column set (flexible schema, paper §3.2).
  auto meta = connection_->get_meta_data();
  auto columns = meta.get_columns(table);
  auto has_column = [&](const std::string& name) {
    for (const auto& c : columns) {
      if (util::iequals(c.name, name)) return true;
    }
    return false;
  };

  if (extend_schema) {
    bool altered = false;
    for (const auto& [name, value] : fields) {
      if (!has_column(name)) {
        connection_->execute_update("ALTER TABLE " + table + " ADD COLUMN \"" +
                                    name + "\" TEXT");
        altered = true;
      }
    }
    if (altered) columns = meta.get_columns(table);
  }

  // Collect the (column, value) pairs we can store.
  std::vector<std::pair<std::string, Value>> writes = core_values;
  for (const auto& [name, value] : fields) {
    if (is_core(name, {"id"})) continue;
    if (has_column(name)) writes.emplace_back(name, Value(value));
  }

  if (id == profile::kNoId) {
    std::string sql = "INSERT INTO " + table + " (";
    std::string placeholders;
    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (i) {
        sql += ", ";
        placeholders += ", ";
      }
      sql += "\"" + writes[i].first + "\"";
      placeholders += "?";
    }
    sql += ") VALUES (" + placeholders + ")";
    auto stmt = connection_->prepare(sql);
    for (std::size_t i = 0; i < writes.size(); ++i) {
      stmt.set_value(i + 1, writes[i].second);
    }
    stmt.execute_update();
    // Fetch the id just assigned (safe: the surrounding transaction holds
    // the exclusive lock across the INSERT and this read).
    auto rs = connection_->execute("SELECT MAX(id) FROM " + table);
    rs.next();
    id = rs.get_int(1);
  } else {
    std::string sql = "UPDATE " + table + " SET ";
    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (i) sql += ", ";
      sql += "\"" + writes[i].first + "\" = ?";
    }
    sql += " WHERE id = ?";
    auto stmt = connection_->prepare(sql);
    for (std::size_t i = 0; i < writes.size(); ++i) {
      stmt.set_value(i + 1, writes[i].second);
    }
    stmt.set_int(writes.size() + 1, id);
    if (stmt.execute_update() == 0) {
      throw DbError("no row with id " + std::to_string(id) + " in " + table);
    }
  }

  txn.commit();
}

// ------------------------------------------------------------ application

std::vector<profile::Application> DatabaseAPI::list_applications() {
  auto rs = connection_->execute("SELECT * FROM application ORDER BY id");
  std::vector<profile::Application> out;
  while (rs.next()) {
    profile::Application app;
    app.id = rs.get_int("id");
    app.name = rs.get_string("name");
    app.fields = read_fields("application", rs, kApplicationCore);
    out.push_back(std::move(app));
  }
  return out;
}

std::optional<profile::Application> DatabaseAPI::get_application(std::int64_t id) {
  auto stmt = connection_->prepare("SELECT * FROM application WHERE id = ?");
  stmt.set_int(1, id);
  auto rs = stmt.execute_query();
  if (!rs.next()) return std::nullopt;
  profile::Application app;
  app.id = rs.get_int("id");
  app.name = rs.get_string("name");
  app.fields = read_fields("application", rs, kApplicationCore);
  return app;
}

std::optional<profile::Application> DatabaseAPI::find_application(
    const std::string& name) {
  auto stmt = connection_->prepare("SELECT id FROM application WHERE name = ?");
  stmt.set_string(1, name);
  auto rs = stmt.execute_query();
  if (!rs.next()) return std::nullopt;
  return get_application(rs.get_int(1));
}

void DatabaseAPI::save_application(profile::Application& app, bool extend_schema) {
  save_row_with_fields("application", {{"name", Value(app.name)}}, app.id,
                       app.fields, extend_schema);
}

// ------------------------------------------------------------- experiment

std::vector<profile::Experiment> DatabaseAPI::list_experiments(
    std::int64_t application_id) {
  auto stmt = connection_->prepare(
      "SELECT * FROM experiment WHERE application = ? ORDER BY id");
  stmt.set_int(1, application_id);
  auto rs = stmt.execute_query();
  std::vector<profile::Experiment> out;
  while (rs.next()) {
    profile::Experiment experiment;
    experiment.id = rs.get_int("id");
    experiment.application_id = rs.get_int("application");
    experiment.name = rs.get_string("name");
    experiment.fields = read_fields("experiment", rs, kExperimentCore);
    out.push_back(std::move(experiment));
  }
  return out;
}

std::optional<profile::Experiment> DatabaseAPI::get_experiment(std::int64_t id) {
  auto stmt = connection_->prepare("SELECT * FROM experiment WHERE id = ?");
  stmt.set_int(1, id);
  auto rs = stmt.execute_query();
  if (!rs.next()) return std::nullopt;
  profile::Experiment experiment;
  experiment.id = rs.get_int("id");
  experiment.application_id = rs.get_int("application");
  experiment.name = rs.get_string("name");
  experiment.fields = read_fields("experiment", rs, kExperimentCore);
  return experiment;
}

void DatabaseAPI::save_experiment(profile::Experiment& experiment,
                                  bool extend_schema) {
  if (experiment.application_id == profile::kNoId) {
    throw InvalidArgument("experiment.application_id must be set before save");
  }
  save_row_with_fields("experiment",
                       {{"application", Value(experiment.application_id)},
                        {"name", Value(experiment.name)}},
                       experiment.id, experiment.fields, extend_schema);
}

// ------------------------------------------------------------------ trial

std::vector<profile::Trial> DatabaseAPI::list_trials(std::int64_t experiment_id) {
  auto stmt =
      connection_->prepare("SELECT * FROM trial WHERE experiment = ? ORDER BY id");
  stmt.set_int(1, experiment_id);
  auto rs = stmt.execute_query();
  std::vector<profile::Trial> out;
  while (rs.next()) {
    profile::Trial trial;
    trial.id = rs.get_int("id");
    trial.experiment_id = rs.get_int("experiment");
    trial.name = rs.get_string("name");
    if (!rs.is_null("node_count")) trial.node_count = rs.get_int("node_count");
    if (!rs.is_null("contexts_per_node")) {
      trial.contexts_per_node = rs.get_int("contexts_per_node");
    }
    if (!rs.is_null("threads_per_context")) {
      trial.threads_per_context = rs.get_int("threads_per_context");
    }
    trial.fields = read_fields("trial", rs, kTrialCore);
    out.push_back(std::move(trial));
  }
  return out;
}

std::optional<profile::Trial> DatabaseAPI::get_trial(std::int64_t id) {
  auto stmt = connection_->prepare("SELECT * FROM trial WHERE id = ?");
  stmt.set_int(1, id);
  auto rs = stmt.execute_query();
  if (!rs.next()) return std::nullopt;
  profile::Trial trial;
  trial.id = rs.get_int("id");
  trial.experiment_id = rs.get_int("experiment");
  trial.name = rs.get_string("name");
  if (!rs.is_null("node_count")) trial.node_count = rs.get_int("node_count");
  if (!rs.is_null("contexts_per_node")) {
    trial.contexts_per_node = rs.get_int("contexts_per_node");
  }
  if (!rs.is_null("threads_per_context")) {
    trial.threads_per_context = rs.get_int("threads_per_context");
  }
  trial.fields = read_fields("trial", rs, kTrialCore);
  return trial;
}

void DatabaseAPI::save_trial(profile::Trial& trial, bool extend_schema) {
  if (trial.experiment_id == profile::kNoId) {
    throw InvalidArgument("trial.experiment_id must be set before save");
  }
  save_row_with_fields(
      "trial",
      {{"experiment", Value(trial.experiment_id)},
       {"name", Value(trial.name)},
       {"node_count", Value(trial.node_count)},
       {"contexts_per_node", Value(trial.contexts_per_node)},
       {"threads_per_context", Value(trial.threads_per_context)}},
      trial.id, trial.fields, extend_schema);
}

void DatabaseAPI::delete_trial(std::int64_t trial_id) {
  // Children first (the engine enforces restrict semantics on FKs). The
  // engine has no subqueries, so collect child ids through the API.
  std::vector<std::int64_t> event_ids;
  for (const auto& event : get_interval_events(trial_id)) {
    event_ids.push_back(event.id);
  }
  std::vector<std::int64_t> atomic_ids;
  for (const auto& event : get_atomic_events(trial_id)) {
    atomic_ids.push_back(event.id);
  }

  connection_->begin();
  try {
    auto run_for = [&](const std::string& sql,
                       const std::vector<std::int64_t>& ids) {
      auto stmt = connection_->prepare(sql);
      for (std::int64_t id : ids) {
        stmt.set_int(1, id);
        stmt.execute_update();
      }
    };
    run_for("DELETE FROM interval_location_profile WHERE interval_event = ?",
            event_ids);
    run_for("DELETE FROM interval_total_summary WHERE interval_event = ?",
            event_ids);
    run_for("DELETE FROM interval_mean_summary WHERE interval_event = ?",
            event_ids);
    run_for("DELETE FROM atomic_location_profile WHERE atomic_event = ?",
            atomic_ids);
    run_for("DELETE FROM interval_event WHERE trial = ?", {trial_id});
    run_for("DELETE FROM atomic_event WHERE trial = ?", {trial_id});
    run_for("DELETE FROM metric WHERE trial = ?", {trial_id});
    run_for("DELETE FROM analysis_result WHERE trial = ?", {trial_id});
    run_for("DELETE FROM trial WHERE id = ?", {trial_id});
    connection_->commit();
  } catch (...) {
    connection_->rollback();
    throw;
  }
}

// ------------------------------------------------------------ bulk upload

std::int64_t DatabaseAPI::upload_trial(const profile::TrialData& data,
                                       std::int64_t experiment_id,
                                       bool extend_schema) {
  util::WallTimer upload_timer;
  std::uint64_t uploaded_rows = 0;
  profile::Trial trial = data.trial();
  trial.id = profile::kNoId;
  trial.experiment_id = experiment_id;
  save_trial(trial, extend_schema);

  connection_->begin();
  try {
    // Metrics.
    std::vector<std::int64_t> metric_ids;
    {
      auto stmt = connection_->prepare(
          "INSERT INTO metric (trial, name, derived) VALUES (?, ?, ?)");
      for (const auto& metric : data.metrics()) {
        stmt.set_int(1, trial.id);
        stmt.set_string(2, metric.name);
        stmt.set_int(3, metric.derived ? 1 : 0);
        stmt.execute_update();
      }
      auto rs = connection_->execute(
          "SELECT id FROM metric WHERE trial = " + std::to_string(trial.id) +
          " ORDER BY id");
      while (rs.next()) metric_ids.push_back(rs.get_int(1));
    }

    // Interval events.
    std::vector<std::int64_t> event_ids;
    {
      auto stmt = connection_->prepare(
          "INSERT INTO interval_event (trial, name, group_name) VALUES (?, ?, ?)");
      for (const auto& event : data.events()) {
        stmt.set_int(1, trial.id);
        stmt.set_string(2, event.name);
        stmt.set_string(3, event.group);
        stmt.execute_update();
      }
      auto rs = connection_->execute(
          "SELECT id FROM interval_event WHERE trial = " +
          std::to_string(trial.id) + " ORDER BY id");
      while (rs.next()) event_ids.push_back(rs.get_int(1));
    }

    // Atomic events.
    std::vector<std::int64_t> atomic_ids;
    {
      auto stmt = connection_->prepare(
          "INSERT INTO atomic_event (trial, name, group_name) VALUES (?, ?, ?)");
      for (const auto& event : data.atomic_events()) {
        stmt.set_int(1, trial.id);
        stmt.set_string(2, event.name);
        stmt.set_string(3, event.group);
        stmt.execute_update();
      }
      auto rs = connection_->execute("SELECT id FROM atomic_event WHERE trial = " +
                                     std::to_string(trial.id) + " ORDER BY id");
      while (rs.next()) atomic_ids.push_back(rs.get_int(1));
    }

    // Location profiles (the bulk of the data: one row per point).
    {
      auto stmt = connection_->prepare(
          "INSERT INTO interval_location_profile (interval_event, node, context,"
          " thread, metric, inclusive_percentage, inclusive,"
          " exclusive_percentage, exclusive, inclusive_per_call, num_calls,"
          " num_subrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)");
      data.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                                 const profile::IntervalDataPoint& p) {
        const profile::ThreadId& id = data.threads()[t];
        stmt.set_int(1, event_ids.at(e));
        stmt.set_int(2, id.node);
        stmt.set_int(3, id.context);
        stmt.set_int(4, id.thread);
        stmt.set_int(5, metric_ids.at(m));
        stmt.set_double(6, p.inclusive_pct);
        stmt.set_double(7, p.inclusive);
        stmt.set_double(8, p.exclusive_pct);
        stmt.set_double(9, p.exclusive);
        stmt.set_double(10, p.inclusive_per_call);
        stmt.set_double(11, p.num_calls);
        stmt.set_double(12, p.num_subrs);
        stmt.execute_update();
      });
    }

    // Total & mean summary tables.
    {
      const auto summaries = profile::compute_interval_summaries(data);
      auto insert_summary = [&](const char* table,
                                const profile::IntervalSummary& s,
                                const profile::IntervalDataPoint& p) {
        auto stmt = connection_->prepare(
            std::string("INSERT INTO ") + table +
            " (interval_event, metric, inclusive_percentage, inclusive,"
            " exclusive_percentage, exclusive, inclusive_per_call, num_calls,"
            " num_subrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)");
        stmt.set_int(1, event_ids.at(s.event_index));
        stmt.set_int(2, metric_ids.at(s.metric_index));
        stmt.set_double(3, p.inclusive_pct);
        stmt.set_double(4, p.inclusive);
        stmt.set_double(5, p.exclusive_pct);
        stmt.set_double(6, p.exclusive);
        stmt.set_double(7, p.inclusive_per_call);
        stmt.set_double(8, p.num_calls);
        stmt.set_double(9, p.num_subrs);
        stmt.execute_update();
      };
      for (const auto& s : summaries) {
        insert_summary("interval_total_summary", s, s.total);
        insert_summary("interval_mean_summary", s, s.mean);
      }
      uploaded_rows += 2 * summaries.size();
    }

    // Atomic location profiles.
    {
      auto stmt = connection_->prepare(
          "INSERT INTO atomic_location_profile (atomic_event, node, context,"
          " thread, sample_count, maximum_value, minimum_value, mean_value,"
          " standard_deviation) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)");
      data.for_each_atomic([&](std::size_t a, std::size_t t,
                               const profile::AtomicDataPoint& p) {
        const profile::ThreadId& id = data.threads()[t];
        stmt.set_int(1, atomic_ids.at(a));
        stmt.set_int(2, id.node);
        stmt.set_int(3, id.context);
        stmt.set_int(4, id.thread);
        stmt.set_double(5, p.sample_count);
        stmt.set_double(6, p.maximum);
        stmt.set_double(7, p.minimum);
        stmt.set_double(8, p.mean);
        stmt.set_double(9, p.std_dev);
        stmt.execute_update();
      });
    }

    connection_->commit();
  } catch (...) {
    connection_->rollback();
    // Remove the orphaned trial row written before the transaction.
    auto stmt = connection_->prepare("DELETE FROM trial WHERE id = ?");
    stmt.set_int(1, trial.id);
    stmt.execute_update();
    throw;
  }

  uploaded_rows += data.metrics().size() + data.events().size() +
                   data.atomic_events().size() + data.interval_point_count() +
                   data.atomic_point_count();
  auto& registry = telemetry::MetricsRegistry::instance();
  static auto& uploads = registry.counter("api.trial.uploads");
  static auto& upload_rows = registry.counter("api.trial.upload_rows");
  static auto& upload_micros = registry.histogram("api.trial.upload_micros");
  uploads.add();
  upload_rows.add(uploaded_rows);
  upload_micros.record(static_cast<std::uint64_t>(upload_timer.seconds() * 1e6));
  return trial.id;
}

// -------------------------------------------------------------- full load

profile::TrialData DatabaseAPI::load_trial(std::int64_t trial_id) {
  util::WallTimer load_timer;
  std::uint64_t loaded_rows = 0;
  auto stored = get_trial(trial_id);
  if (!stored) throw DbError("no trial with id " + std::to_string(trial_id));

  profile::TrialData data;
  data.trial() = *stored;

  // id -> dense index maps.
  std::unordered_map<std::int64_t, std::size_t> metric_of;
  std::unordered_map<std::int64_t, std::size_t> event_of;
  std::unordered_map<std::int64_t, std::size_t> atomic_of;

  for (const auto& metric : get_metrics(trial_id)) {
    const std::size_t index = data.intern_metric(metric.name);
    data.metric(index).derived = metric.derived;
    data.metric(index).id = metric.id;
    metric_of[metric.id] = index;
  }
  for (const auto& event : get_interval_events(trial_id)) {
    const std::size_t index = data.intern_event(event.name, event.group);
    data.event(index).id = event.id;
    event_of[event.id] = index;
  }
  for (const auto& event : get_atomic_events(trial_id)) {
    const std::size_t index = data.intern_atomic_event(event.name, event.group);
    data.atomic_event(index).id = event.id;
    atomic_of[event.id] = index;
  }

  for (const auto& row : get_interval_data(trial_id)) {
    const std::size_t thread = data.intern_thread(row.thread);
    data.set_interval_data(event_of.at(row.event_id), thread,
                           metric_of.at(row.metric_id), row.data);
    ++loaded_rows;
  }
  for (const auto& row : get_atomic_data(trial_id)) {
    const std::size_t thread = data.intern_thread(row.thread);
    data.set_atomic_data(atomic_of.at(row.event_id), thread, row.data);
    ++loaded_rows;
  }

  data.infer_dimensions();

  auto& registry = telemetry::MetricsRegistry::instance();
  static auto& loads = registry.counter("api.trial.loads");
  static auto& load_rows = registry.counter("api.trial.load_rows");
  static auto& load_micros = registry.histogram("api.trial.load_micros");
  loads.add();
  load_rows.add(loaded_rows);
  load_micros.record(static_cast<std::uint64_t>(load_timer.seconds() * 1e6));
  return data;
}

// ------------------------------------------------------ selective queries

std::vector<profile::Metric> DatabaseAPI::get_metrics(std::int64_t trial_id) {
  auto stmt = connection_->prepare(
      "SELECT id, name, derived FROM metric WHERE trial = ? ORDER BY id");
  stmt.set_int(1, trial_id);
  auto rs = stmt.execute_query();
  std::vector<profile::Metric> out;
  while (rs.next()) {
    profile::Metric metric;
    metric.id = rs.get_int(1);
    metric.name = rs.get_string(2);
    metric.derived = rs.get_int(3) != 0;
    out.push_back(std::move(metric));
  }
  return out;
}

std::vector<profile::IntervalEvent> DatabaseAPI::get_interval_events(
    std::int64_t trial_id) {
  auto stmt = connection_->prepare(
      "SELECT id, name, group_name FROM interval_event WHERE trial = ?"
      " ORDER BY id");
  stmt.set_int(1, trial_id);
  auto rs = stmt.execute_query();
  std::vector<profile::IntervalEvent> out;
  while (rs.next()) {
    profile::IntervalEvent event;
    event.id = rs.get_int(1);
    event.name = rs.get_string(2);
    event.group = rs.get_string(3);
    out.push_back(std::move(event));
  }
  return out;
}

std::vector<profile::AtomicEvent> DatabaseAPI::get_atomic_events(
    std::int64_t trial_id) {
  auto stmt = connection_->prepare(
      "SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id");
  stmt.set_int(1, trial_id);
  auto rs = stmt.execute_query();
  std::vector<profile::AtomicEvent> out;
  while (rs.next()) {
    profile::AtomicEvent event;
    event.id = rs.get_int(1);
    event.name = rs.get_string(2);
    event.group = rs.get_string(3);
    out.push_back(std::move(event));
  }
  return out;
}

std::vector<IntervalProfileRow> DatabaseAPI::get_interval_data(
    std::int64_t trial_id, const DataFilter& filter) {
  std::string sql =
      "SELECT e.id, e.name, p.node, p.context, p.thread, p.metric, "
      " p.inclusive, p.exclusive, p.inclusive_percentage,"
      " p.exclusive_percentage, p.inclusive_per_call, p.num_calls, p.num_subrs"
      " FROM interval_event e JOIN interval_location_profile p"
      " ON p.interval_event = e.id WHERE e.trial = ?";
  Params params;
  params.push_back(Value(trial_id));
  auto add = [&](const char* clause, Value v) {
    sql += clause;
    params.push_back(std::move(v));
  };
  if (filter.event_id) add(" AND e.id = ?", Value(*filter.event_id));
  if (filter.event_group) add(" AND e.group_name = ?", Value(*filter.event_group));
  if (filter.metric_id) add(" AND p.metric = ?", Value(*filter.metric_id));
  if (filter.node) add(" AND p.node = ?", Value(std::int64_t{*filter.node}));
  if (filter.context) {
    add(" AND p.context = ?", Value(std::int64_t{*filter.context}));
  }
  if (filter.thread) add(" AND p.thread = ?", Value(std::int64_t{*filter.thread}));

  auto rs = connection_->execute(sql, params);
  std::vector<IntervalProfileRow> out;
  out.reserve(rs.row_count());
  while (rs.next()) {
    IntervalProfileRow row;
    row.event_id = rs.get_int(1);
    row.event_name = rs.get_string(2);
    row.thread.node = static_cast<std::int32_t>(rs.get_int(3));
    row.thread.context = static_cast<std::int32_t>(rs.get_int(4));
    row.thread.thread = static_cast<std::int32_t>(rs.get_int(5));
    row.metric_id = rs.get_int(6);
    row.data.inclusive = rs.get_double(7);
    row.data.exclusive = rs.get_double(8);
    row.data.inclusive_pct = rs.get_double(9);
    row.data.exclusive_pct = rs.get_double(10);
    row.data.inclusive_per_call = rs.get_double(11);
    row.data.num_calls = rs.get_double(12);
    row.data.num_subrs = rs.get_double(13);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<AtomicProfileRow> DatabaseAPI::get_atomic_data(
    std::int64_t trial_id, const DataFilter& filter) {
  std::string sql =
      "SELECT e.id, e.name, p.node, p.context, p.thread, p.sample_count,"
      " p.maximum_value, p.minimum_value, p.mean_value, p.standard_deviation"
      " FROM atomic_event e JOIN atomic_location_profile p"
      " ON p.atomic_event = e.id WHERE e.trial = ?";
  Params params;
  params.push_back(Value(trial_id));
  if (filter.event_id) {
    sql += " AND e.id = ?";
    params.push_back(Value(*filter.event_id));
  }
  if (filter.node) {
    sql += " AND p.node = ?";
    params.push_back(Value(std::int64_t{*filter.node}));
  }
  if (filter.context) {
    sql += " AND p.context = ?";
    params.push_back(Value(std::int64_t{*filter.context}));
  }
  if (filter.thread) {
    sql += " AND p.thread = ?";
    params.push_back(Value(std::int64_t{*filter.thread}));
  }
  auto rs = connection_->execute(sql, params);
  std::vector<AtomicProfileRow> out;
  while (rs.next()) {
    AtomicProfileRow row;
    row.event_id = rs.get_int(1);
    row.event_name = rs.get_string(2);
    row.thread.node = static_cast<std::int32_t>(rs.get_int(3));
    row.thread.context = static_cast<std::int32_t>(rs.get_int(4));
    row.thread.thread = static_cast<std::int32_t>(rs.get_int(5));
    row.data.sample_count = rs.get_double(6);
    row.data.maximum = rs.get_double(7);
    row.data.minimum = rs.get_double(8);
    row.data.mean = rs.get_double(9);
    row.data.std_dev = rs.get_double(10);
    out.push_back(std::move(row));
  }
  return out;
}

AggregateSummary DatabaseAPI::aggregate_interval_column(std::int64_t trial_id,
                                                        std::int64_t event_id,
                                                        const std::string& column,
                                                        const DataFilter& filter) {
  static const char* kAllowed[] = {
      "inclusive",          "exclusive",          "inclusive_percentage",
      "exclusive_percentage", "inclusive_per_call", "num_calls",
      "num_subrs"};
  bool ok = false;
  for (const char* c : kAllowed) {
    if (util::iequals(c, column)) ok = true;
  }
  if (!ok) throw InvalidArgument("not an aggregatable profile column: " + column);

  std::string sql = "SELECT COUNT(p." + column + "), MIN(p." + column +
                    "), MAX(p." + column + "), AVG(p." + column + "), STDDEV(p." +
                    column +
                    ") FROM interval_event e JOIN interval_location_profile p"
                    " ON p.interval_event = e.id WHERE e.trial = ? AND e.id = ?";
  Params params;
  params.push_back(Value(trial_id));
  params.push_back(Value(event_id));
  if (filter.metric_id) {
    sql += " AND p.metric = ?";
    params.push_back(Value(*filter.metric_id));
  }
  if (filter.node) {
    sql += " AND p.node = ?";
    params.push_back(Value(std::int64_t{*filter.node}));
  }
  auto rs = connection_->execute(sql, params);
  AggregateSummary out;
  if (rs.next()) {
    out.count = static_cast<std::size_t>(rs.get_int(1));
    if (out.count > 0) {
      out.minimum = rs.get_double(2);
      out.maximum = rs.get_double(3);
      out.mean = rs.get_double(4);
      out.std_dev = rs.is_null(5) ? 0.0 : rs.get_double(5);
    }
  }
  return out;
}

// --------------------------------------------------------- derived metric

std::int64_t DatabaseAPI::save_derived_metric(std::int64_t trial_id,
                                              const profile::TrialData& data,
                                              const std::string& metric_name) {
  auto metric_index = data.find_metric(metric_name);
  if (!metric_index) {
    throw InvalidArgument("trial data has no metric '" + metric_name + "'");
  }
  // Map event names to the trial's stored event ids.
  std::unordered_map<std::string, std::int64_t> event_id_of;
  for (const auto& event : get_interval_events(trial_id)) {
    event_id_of[event.name] = event.id;
  }

  connection_->begin();
  std::int64_t metric_id = profile::kNoId;
  try {
    {
      auto stmt = connection_->prepare(
          "INSERT INTO metric (trial, name, derived) VALUES (?, ?, 1)");
      stmt.set_int(1, trial_id);
      stmt.set_string(2, metric_name);
      stmt.execute_update();
      auto rs = connection_->execute("SELECT MAX(id) FROM metric");
      rs.next();
      metric_id = rs.get_int(1);
    }
    auto stmt = connection_->prepare(
        "INSERT INTO interval_location_profile (interval_event, node, context,"
        " thread, metric, inclusive_percentage, inclusive,"
        " exclusive_percentage, exclusive, inclusive_per_call, num_calls,"
        " num_subrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)");
    data.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                               const profile::IntervalDataPoint& p) {
      if (m != *metric_index) return;
      auto it = event_id_of.find(data.events()[e].name);
      if (it == event_id_of.end()) return;  // event unknown to the trial
      const profile::ThreadId& id = data.threads()[t];
      stmt.set_int(1, it->second);
      stmt.set_int(2, id.node);
      stmt.set_int(3, id.context);
      stmt.set_int(4, id.thread);
      stmt.set_int(5, metric_id);
      stmt.set_double(6, p.inclusive_pct);
      stmt.set_double(7, p.inclusive);
      stmt.set_double(8, p.exclusive_pct);
      stmt.set_double(9, p.exclusive);
      stmt.set_double(10, p.inclusive_per_call);
      stmt.set_double(11, p.num_calls);
      stmt.set_double(12, p.num_subrs);
      stmt.execute_update();
    });
    connection_->commit();
  } catch (...) {
    connection_->rollback();
    throw;
  }
  return metric_id;
}

// -------------------------------------------------------- analysis results

std::int64_t DatabaseAPI::save_analysis_result(std::int64_t trial_id,
                                               const std::string& name,
                                               const std::string& kind,
                                               const std::string& content) {
  // AnalysisServer workers insert results concurrently over sibling
  // connections; the transaction keeps the INSERT and the id fetch from
  // interleaving with another worker's insert (which would hand this
  // request someone else's result_id).
  ScopedTransaction txn(*connection_);
  auto stmt = connection_->prepare(
      "INSERT INTO analysis_result (trial, name, kind, content)"
      " VALUES (?, ?, ?, ?)");
  stmt.set_int(1, trial_id);
  stmt.set_string(2, name);
  stmt.set_string(3, kind);
  stmt.set_string(4, content);
  stmt.execute_update();
  auto rs = connection_->execute("SELECT MAX(id) FROM analysis_result");
  rs.next();
  const std::int64_t id = rs.get_int(1);
  txn.commit();
  return id;
}

std::vector<DatabaseAPI::AnalysisResult> DatabaseAPI::list_analysis_results(
    std::int64_t trial_id) {
  auto stmt = connection_->prepare(
      "SELECT id, name, kind, content FROM analysis_result WHERE trial = ?"
      " ORDER BY id");
  stmt.set_int(1, trial_id);
  auto rs = stmt.execute_query();
  std::vector<AnalysisResult> out;
  while (rs.next()) {
    out.push_back({rs.get_int(1), rs.get_string(2), rs.get_string(3),
                   rs.get_string(4)});
  }
  return out;
}

}  // namespace perfdmf::api
