// Introspection: EXPLAIN ANALYZE operator stats, the live system tables
// (PERFDMF_STATEMENTS / PERFDMF_TRANSACTIONS / PERFDMF_LOCKS /
// PERFDMF_WAL), phase attribution for admission waits, and the JSON /
// Chrome-trace exports.
//
// The contract under test (DESIGN.md "Observability"):
//
//   - EXPLAIN ANALYZE's operator chain is self-consistent: each
//     operator's rows_in equals the preceding operator's rows_out, and
//     the operator times are disjoint intervals (their sum is bounded by
//     the statement total);
//   - the live tables answer SELECTs mid-workload without ever blocking
//     the statements they report on (they read atomics and per-slot
//     try-locks only), so they are safe to hammer from reader threads
//     while writers run DML/DDL — this file carries the TSan-swept
//     churn test;
//   - every export (metrics_to_json, traces_to_json,
//     traces_to_chrome_json) emits valid JSON even for SQL text full of
//     quotes, backslashes and newlines.
//
// EXPLAIN ANALYZE and the live tables are independent of the telemetry
// kill switch: operator stats come from direct steady-clock reads and
// the registry/lock/WAL state is plain engine state, so everything here
// runs under -DPERFDMF_TELEMETRY=OFF too (ring/trace assertions are
// gated on telemetry::compiled_in()).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/connection.h"
#include "sqldb/database.h"
#include "sqldb/system_tables.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"
#include "util/json.h"

using namespace perfdmf::sqldb;
using perfdmf::DbError;
namespace telemetry = perfdmf::telemetry;
namespace json = perfdmf::util::json;

namespace {

// One "analyze <label>: rows_in=N rows_out=N time_us=N ..." plan row.
struct OpLine {
  std::string label;
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t time_us = 0;
  bool degraded = false;
};

std::vector<OpLine> run_analyze(Connection& conn, const std::string& sql) {
  auto rs = conn.execute(sql);
  std::vector<OpLine> ops;
  while (rs.next()) {
    const std::string line = rs.get_string(1);
    if (line.rfind("analyze ", 0) != 0) continue;
    OpLine op;
    op.label = line.substr(8, line.find(':') - 8);
    auto field = [&](const char* key) -> std::uint64_t {
      const auto pos = line.find(std::string(key) + "=");
      if (pos == std::string::npos) return 0;
      return std::strtoull(line.c_str() + pos + std::strlen(key) + 1, nullptr,
                           10);
    };
    op.rows_in = field("rows_in");
    op.rows_out = field("rows_out");
    op.time_us = field("time_us");
    op.degraded = line.find(" degraded") != std::string::npos;
    ops.push_back(std::move(op));
  }
  return ops;
}

void expect_chained(const std::vector<OpLine>& ops) {
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].rows_in, ops[i - 1].rows_out)
        << ops[i].label << " rows_in vs " << ops[i - 1].label << " rows_out";
  }
}

bool has_op(const std::vector<OpLine>& ops, const std::string& prefix) {
  for (const auto& op : ops) {
    if (op.label.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

class ExplainAnalyze : public ::testing::Test {
 protected:
  void SetUp() override {
    conn.execute_update(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR)");
    conn.execute_update(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept_id INTEGER, "
        "salary DOUBLE)");
    conn.begin();
    for (int d = 0; d < 5; ++d) {
      conn.execute_update("INSERT INTO dept (id, name) VALUES (" +
                          std::to_string(d) + ", 'dept" + std::to_string(d) +
                          "')");
    }
    auto stmt =
        conn.prepare("INSERT INTO emp (dept_id, salary) VALUES (?, ?)");
    for (int i = 0; i < 200; ++i) {
      stmt.set_int(1, i % 5);
      stmt.set_double(2, i * 1.5);
      stmt.execute_update();
    }
    conn.commit();
  }

  Connection conn;
};

TEST_F(ExplainAnalyze, JoinGroupByChainIsConsistent) {
  const auto ops = run_analyze(
      conn,
      "EXPLAIN ANALYZE SELECT d.name, COUNT(*) FROM emp e "
      "JOIN dept d ON e.dept_id = d.id WHERE e.salary >= 0 GROUP BY d.name");
  ASSERT_GE(ops.size(), 4u);
  EXPECT_TRUE(has_op(ops, "from e"));
  EXPECT_TRUE(has_op(ops, "join d"));
  EXPECT_TRUE(has_op(ops, "filter"));
  EXPECT_TRUE(has_op(ops, "group-by"));
  expect_chained(ops);
  // 200 emp rows all match a dept and pass the filter; 5 groups out.
  EXPECT_EQ(ops.front().rows_out, 200u);
  EXPECT_EQ(ops.back().rows_out, 5u);
}

TEST_F(ExplainAnalyze, TopKChainIsConsistent) {
  const auto ops = run_analyze(
      conn,
      "EXPLAIN ANALYZE SELECT id, salary FROM emp ORDER BY salary DESC "
      "LIMIT 7");
  ASSERT_GE(ops.size(), 4u);
  EXPECT_TRUE(has_op(ops, "from emp"));
  EXPECT_TRUE(has_op(ops, "project"));
  EXPECT_TRUE(has_op(ops, "order-by"));
  EXPECT_TRUE(has_op(ops, "limit"));
  expect_chained(ops);
  // Top-K retains at most LIMIT rows through the sort.
  EXPECT_EQ(ops.back().rows_out, 7u);
}

TEST_F(ExplainAnalyze, DegradedPlansStayConsistentAndAreFlagged) {
  conn.set_statement_mem_bytes(512);  // far below the hash estimates
  const auto ops = run_analyze(
      conn,
      "EXPLAIN ANALYZE SELECT d.name, COUNT(*) FROM emp e "
      "JOIN dept d ON e.dept_id = d.id GROUP BY d.name");
  conn.set_statement_mem_bytes(0);
  ASSERT_GE(ops.size(), 3u);
  expect_chained(ops);
  bool any_degraded = false;
  for (const auto& op : ops) any_degraded |= op.degraded;
  EXPECT_TRUE(any_degraded) << "512-byte budget should degrade an operator";
  // The degraded fallback still produces the same row flow.
  EXPECT_EQ(ops.back().rows_out, 5u);
}

TEST_F(ExplainAnalyze, OperatorMicrosSumWithinRingTotal) {
  if (!telemetry::compiled_in()) GTEST_SKIP() << "telemetry compiled out";
  auto& ring = telemetry::TraceRing::instance();
  ring.clear();
  const std::string sql =
      "EXPLAIN ANALYZE SELECT dept_id, SUM(salary) FROM emp "
      "GROUP BY dept_id ORDER BY 2 DESC LIMIT 3";
  const auto ops = run_analyze(conn, sql);
  ASSERT_GE(ops.size(), 3u);
  // force_trace() pinned the run into the ring, with the annotated plan.
  const auto traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].sql, sql);
  EXPECT_NE(traces[0].plan.find("analyze "), std::string::npos);
  std::uint64_t op_sum_us = 0;
  for (const auto& op : ops) op_sum_us += op.time_us;
  EXPECT_LE(static_cast<double>(op_sum_us) / 1000.0, traces[0].total_ms + 1e-6);
}

TEST_F(ExplainAnalyze, PlainExplainCarriesNoAnalyzeRows) {
  auto rs = conn.execute("EXPLAIN SELECT id FROM emp WHERE dept_id = 1");
  while (rs.next()) {
    EXPECT_NE(rs.get_string(1).rfind("analyze ", 0), 0u);
  }
}

// ----------------------------------------------------------- live tables

class LiveTables : public ::testing::Test {
 protected:
  void SetUp() override {
    shared = std::make_shared<Database>();
    conn = std::make_unique<Connection>(shared);
    conn->execute_update(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
    conn->execute_update("INSERT INTO t (v) VALUES (1)");
  }

  std::shared_ptr<Database> shared;
  std::unique_ptr<Connection> conn;
};

TEST_F(LiveTables, StatementsTableListsTheObservingStatement) {
  auto rs = conn->execute(
      "SELECT sql, phase, elapsed_ms FROM PERFDMF_STATEMENTS");
  ASSERT_GE(rs.row_count(), 1u);
  bool found_self = false;
  while (rs.next()) {
    if (rs.get_string(1).find("PERFDMF_STATEMENTS") != std::string::npos) {
      found_self = true;
      EXPECT_STREQ(rs.get_string(2).c_str(), "execute");
      EXPECT_GE(rs.get_double(3), 0.0);
    }
  }
  EXPECT_TRUE(found_self) << "the SELECT itself should be registered";
}

TEST_F(LiveTables, LocksTableShowsTheDrainHoldOfTheObserver) {
  auto rs = conn->execute(
      "SELECT lock, holders, exclusive, waiters, wait_micros "
      "FROM PERFDMF_LOCKS ORDER BY lock");
  ASSERT_EQ(rs.row_count(), 2u);
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_string(1), "drain");
  // The observing SELECT itself holds the drain lock shared.
  EXPECT_GE(rs.get_int(2), 1);
  EXPECT_EQ(rs.get_int(3), 0);
  ASSERT_TRUE(rs.next());
  EXPECT_EQ(rs.get_string(1), "writer");
  EXPECT_EQ(rs.get_int(2), 0);
}

TEST_F(LiveTables, WalTableIsZerosForInMemoryDatabases) {
  auto rs = conn->execute(
      "SELECT written_seq, durable_seq, commit_queue_depth, sync_mode, "
      "read_only FROM PERFDMF_WAL");
  ASSERT_EQ(rs.row_count(), 1u);
  rs.next();
  EXPECT_GE(rs.get_int(1), rs.get_int(2));  // written >= durable, always
  EXPECT_EQ(rs.get_int(3), 0);
  EXPECT_EQ(rs.get_string(4), "none");
  EXPECT_EQ(rs.get_int(5), 0);
}

TEST_F(LiveTables, TransactionsTableTracksTheOpenTransaction) {
  {
    auto rs = conn->execute("SELECT * FROM PERFDMF_TRANSACTIONS");
    EXPECT_EQ(rs.row_count(), 0u);  // nothing open
  }
  conn->begin();
  conn->execute_update("INSERT INTO t (v) VALUES (2)");
  conn->execute_update("INSERT INTO t (v) VALUES (3)");
  {
    // Observed from a second connection while the txn is open.
    Connection observer(shared);
    auto rs = observer.execute(
        "SELECT state, statements, versions_installed, admission_held, "
        "elapsed_ms FROM PERFDMF_TRANSACTIONS");
    ASSERT_EQ(rs.row_count(), 1u);
    rs.next();
    EXPECT_EQ(rs.get_string(1), "open");
    EXPECT_GE(rs.get_int(2), 2);
    if (telemetry::compiled_in()) {
      EXPECT_GE(rs.get_int(3), 2);  // two INSERTs installed two versions
    } else {
      EXPECT_EQ(rs.get_int(3), 0);  // counters frozen: zeros, not garbage
    }
    EXPECT_GE(rs.get_double(5), 0.0);
  }
  conn->commit();
  auto rs = conn->execute("SELECT * FROM PERFDMF_TRANSACTIONS");
  EXPECT_EQ(rs.row_count(), 0u);
}

TEST_F(LiveTables, SystemTablesRejectWrites) {
  EXPECT_THROW(conn->execute_update("INSERT INTO PERFDMF_WAL (written_seq) "
                                    "VALUES (1)"),
               DbError);
  EXPECT_THROW(conn->execute_update("DROP TABLE PERFDMF_STATEMENTS"), DbError);
}

// Reader threads hammer the live tables while writer threads churn DML
// and DDL. The live tables must stay queryable (no deadlock, no blocked
// writers) and every row internally consistent. Runs under TSan via the
// concurrency label.
TEST_F(LiveTables, ChurnReadersNeverBlockWriters) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kWriterIters = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      try {
        Connection c(shared);
        for (int i = 0; i < kWriterIters; ++i) {
          c.execute_update("INSERT INTO t (v) VALUES (" + std::to_string(i) +
                           ")");
          c.execute_update("UPDATE t SET v = v + 1 WHERE v = " +
                           std::to_string(i));
          if (i % 20 == 0) {
            const std::string name =
                "churn_" + std::to_string(w) + "_" + std::to_string(i);
            c.execute_update("CREATE TABLE " + name + " (id INTEGER)");
            c.execute_update("DROP TABLE " + name);
          }
        }
      } catch (...) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      try {
        Connection c(shared);
        while (!stop.load(std::memory_order_relaxed)) {
          auto st = c.execute("SELECT id, phase, rows FROM PERFDMF_STATEMENTS");
          while (st.next()) {
            EXPECT_GT(st.get_int(1), 0);
            EXPECT_FALSE(st.get_string(2).empty());
          }
          auto locks = c.execute(
              "SELECT holders, waiters FROM PERFDMF_LOCKS WHERE lock = "
              "'drain'");
          ASSERT_EQ(locks.row_count(), 1u);
          locks.next();
          EXPECT_GE(locks.get_int(1), 1);  // at least this reader
          auto wal = c.execute(
              "SELECT written_seq, durable_seq FROM PERFDMF_WAL");
          ASSERT_EQ(wal.row_count(), 1u);
          wal.next();
          EXPECT_GE(wal.get_int(1), wal.get_int(2));
          c.execute("SELECT * FROM PERFDMF_TRANSACTIONS");
        }
      } catch (...) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // All writers finished: 4 * 60 inserts + the seed row survived.
  auto rs = conn->execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), kWriters * kWriterIters + 1);
}

// ------------------------------------------------- admission attribution

TEST(AdmissionPhase, WaitIsAttributedToAdmissionNotExecute) {
  auto shared = std::make_shared<Database>();
  Connection writer(shared);
  writer.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  writer.execute_update("INSERT INTO t (v) VALUES (1)");
  shared->governor().configure({/*max_concurrent=*/1, /*max_queue=*/8,
                                /*queue_timeout_ms=*/10000});

  const double saved = telemetry::slow_query_threshold_ms();
  telemetry::set_slow_query_threshold_ms(0.0);  // every statement is "slow"
  auto& ring = telemetry::TraceRing::instance();
  ring.clear();

  writer.begin();  // the transaction unit holds the only admission slot
  std::thread queued([&] {
    Connection c(shared);
    c.execute("SELECT COUNT(*) FROM t");
  });
  // The queued statement shows up in PERFDMF_STATEMENTS with the
  // "admission" phase label while it waits (polled: registration and the
  // label store race with this loop, but the wait lasts until commit).
  bool seen_admission = false;
  for (int i = 0; i < 2000 && !seen_admission; ++i) {
    auto rs = writer.execute(
        "SELECT COUNT(*) FROM PERFDMF_STATEMENTS WHERE phase = 'admission'");
    rs.next();
    seen_admission = rs.get_int(1) >= 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(seen_admission);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  writer.commit();
  queued.join();

  if (telemetry::compiled_in()) {
    double admission_ms = -1.0;
    for (const auto& t : ring.snapshot()) {
      if (t.sql.find("COUNT(*) FROM t") != std::string::npos) {
        admission_ms = t.phase_ms[static_cast<std::size_t>(
            telemetry::Phase::kAdmission)];
      }
    }
    EXPECT_GT(admission_ms, 0.0)
        << "queued wait must land in the admission phase";
  }
  telemetry::set_slow_query_threshold_ms(saved);
  shared->governor().configure({0, 0, 0});  // disable again
}

// ------------------------------------------------------------- exports

TEST(IntrospectionJson, ExportsSurviveHostileSqlText) {
  const double saved = telemetry::slow_query_threshold_ms();
  telemetry::set_slow_query_threshold_ms(0.0);
  const bool trace_was = telemetry::trace_enabled();
  telemetry::set_trace_enabled(true);
  telemetry::TraceRing::instance().clear();
  telemetry::TraceBuffer::instance().clear();

  Connection conn;
  conn.execute_update("CREATE TABLE h (id INTEGER PRIMARY KEY, s VARCHAR)");
  // Quotes, backslashes, newlines and a tab — everything the JSON
  // encoder must escape — embedded in the SQL text itself.
  const std::string hostile =
      "SELECT 'quote \" backslash \\ newline \n tab \t end' AS c1, s FROM h";
  conn.execute(hostile);
  conn.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM h");

  telemetry::set_trace_enabled(trace_was);
  telemetry::set_slow_query_threshold_ms(saved);

  // metrics_to_json: parses, and is an object of name -> sample.
  const json::Value metrics = json::parse(telemetry::metrics_to_json());
  ASSERT_TRUE(metrics.is_object());

  // traces_to_json: parses even with the hostile SQL in the ring; the
  // hostile text round-trips unmangled through the escaping.
  const json::Value traces = json::parse(telemetry::traces_to_json());
  const json::Value* list = traces.find("traces");
  ASSERT_NE(list, nullptr);
  if (telemetry::compiled_in()) {
    bool found = false;
    for (const auto& t : list->as_array()) {
      const json::Value* sql = t.find("sql");
      ASSERT_NE(sql, nullptr);
      if (sql->as_string() == hostile) found = true;
      ASSERT_NE(t.find("total_ms"), nullptr);
      ASSERT_NE(t.find("phases"), nullptr);
    }
    EXPECT_TRUE(found) << "hostile SQL must round-trip through the export";
  }

  // traces_to_chrome_json: valid Chrome trace-event JSON with the
  // required fields on every event.
  const json::Value chrome = json::parse(telemetry::traces_to_chrome_json());
  const json::Value* events = chrome.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  for (const auto& e : events->as_array()) {
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("cat"), nullptr);
    const json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
  }
  if (telemetry::compiled_in()) {
    // The traced statements produced at least statement + phase events.
    EXPECT_GE(events->as_array().size(), 2u);
    bool statement_seen = false;
    for (const auto& e : events->as_array()) {
      if (e.find("cat")->as_string() == "statement") statement_seen = true;
    }
    EXPECT_TRUE(statement_seen);
  }
}

}  // namespace
