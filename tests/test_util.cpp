// Unit tests for the util module: strings, files, rng, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/error.h"
#include "util/file.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace u = perfdmf::util;

// ----------------------------------------------------------------- strings

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(u::trim("  hello  "), "hello");
  EXPECT_EQ(u::trim("\t\r\nx\n"), "x");
  EXPECT_EQ(u::trim(""), "");
  EXPECT_EQ(u::trim("   "), "");
  EXPECT_EQ(u::trim("no-trim"), "no-trim");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = u::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = u::split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsLimitKeepsTailIntact) {
  auto parts = u::split_ws_limit("1 2 three four five", 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[1], "2");
  EXPECT_EQ(parts[2], "three four five");
}

TEST(Strings, SplitWsLimitFewerFieldsThanLimit) {
  auto parts = u::split_ws_limit("only two", 5);
  ASSERT_EQ(parts.size(), 2u);
}

TEST(Strings, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(u::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(u::join({}, ","), "");
  EXPECT_EQ(u::join({"solo"}, ","), "solo");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(u::starts_with("profile.0.0.0", "profile."));
  EXPECT_FALSE(u::starts_with("pro", "profile."));
  EXPECT_TRUE(u::ends_with("report.xml", ".xml"));
  EXPECT_FALSE(u::ends_with("x", ".xml"));
  EXPECT_TRUE(u::contains("abcdef", "cde"));
  EXPECT_FALSE(u::contains("abcdef", "xyz"));
}

TEST(Strings, CaseConversionAndIEquals) {
  EXPECT_EQ(u::to_lower("MiXeD"), "mixed");
  EXPECT_EQ(u::to_upper("MiXeD"), "MIXED");
  EXPECT_TRUE(u::iequals("SELECT", "select"));
  EXPECT_FALSE(u::iequals("SELECT", "selec"));
  EXPECT_TRUE(u::iequals("", ""));
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(u::parse_int("42").value(), 42);
  EXPECT_EQ(u::parse_int("-17").value(), -17);
  EXPECT_EQ(u::parse_int("+8").value(), 8);
  EXPECT_EQ(u::parse_int(" 13 ").value(), 13);  // trims
  EXPECT_FALSE(u::parse_int("12x"));
  EXPECT_FALSE(u::parse_int(""));
  EXPECT_FALSE(u::parse_int("1.5"));
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(u::parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(u::parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(u::parse_double("7").value(), 7.0);
  EXPECT_FALSE(u::parse_double("abc"));
  EXPECT_FALSE(u::parse_double("1.5z"));
}

TEST(Strings, ParseOrThrowReportsContext) {
  EXPECT_THROW(u::parse_int_or_throw("zz", "field"), perfdmf::ParseError);
  EXPECT_THROW(u::parse_double_or_throw("zz", "field"), perfdmf::ParseError);
  EXPECT_EQ(u::parse_int_or_throw("5", "field"), 5);
}

TEST(Strings, SplitLinesHandlesCrLfAndNoTrailingNewline) {
  auto lines = u::split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, SplitLinesEmptyAndTrailing) {
  EXPECT_TRUE(u::split_lines("").empty());
  auto lines = u::split_lines("x\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "x");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(u::replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(u::replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(u::replace_all("none", "x", "y"), "none");
}

// -------------------------------------------------------------------- file

TEST(File, WriteReadRoundTrip) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "data.txt";
  u::write_file(path, "hello\nworld");
  EXPECT_EQ(u::read_file(path), "hello\nworld");
}

TEST(File, AppendGrowsFile) {
  u::ScopedTempDir dir;
  const auto path = dir.path() / "log.txt";
  u::append_file(path, "a");
  u::append_file(path, "b");
  EXPECT_EQ(u::read_file(path), "ab");
}

TEST(File, ReadMissingFileThrows) {
  u::ScopedTempDir dir;
  EXPECT_THROW(u::read_file(dir.path() / "absent"), perfdmf::IoError);
}

TEST(File, ListFilesSortedAndFilesOnly) {
  u::ScopedTempDir dir;
  u::write_file(dir.path() / "b.txt", "");
  u::write_file(dir.path() / "a.txt", "");
  std::filesystem::create_directory(dir.path() / "subdir");
  auto files = u::list_files(dir.path());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].filename(), "a.txt");
  EXPECT_EQ(files[1].filename(), "b.txt");
}

TEST(File, ScopedTempDirRemovesOnDestruction) {
  std::filesystem::path kept;
  {
    u::ScopedTempDir dir;
    kept = dir.path();
    EXPECT_TRUE(std::filesystem::exists(kept));
    u::write_file(kept / "f", "x");
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  u::Rng a(123);
  u::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  u::Rng a(1);
  u::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  u::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  u::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 4.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.5);
  }
}

TEST(Rng, GaussianHasRoughlyUnitMoments) {
  u::Rng rng(99);
  const int n = 20000;
  double sum = 0.0;
  double sum_squares = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_squares += v * v;
  }
  const double mean = sum / n;
  const double variance = sum_squares / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.1);
}

TEST(Rng, NextBelowIsBounded) {
  u::Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

// -------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  u::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  u::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  u::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionsPropagateFromTasks) {
  u::ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionsPropagateFromParallelFor) {
  u::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(Timer, MeasuresNonNegativeDurations) {
  u::WallTimer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.millis(), 0.0);
}
