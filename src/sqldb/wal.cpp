#include "sqldb/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "sqldb/statement_context.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

DurabilityOptions DurabilityOptions::from_env() {
  DurabilityOptions opts;
  const char* env = std::getenv("PERFDMF_SYNC");
  if (!env || !*env) return opts;
  const std::string mode = env;
  if (mode == "always") {
    opts.sync = SyncMode::kAlways;
  } else if (mode == "on_commit") {
    opts.sync = SyncMode::kOnCommit;
  } else if (mode == "none") {
    opts.sync = SyncMode::kNone;
  } else {
    throw perfdmf::InvalidArgument("PERFDMF_SYNC must be always|on_commit|none, got " +
                                   mode);
  }
  return opts;
}

std::string encode_value(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N\n";
    case ValueType::kInt:
      return "I " + std::to_string(v.as_int()) + "\n";
    case ValueType::kReal: {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "R %.17g\n", v.as_real());
      return buffer;
    }
    case ValueType::kText: {
      const std::string& text = v.as_text();
      return "T " + std::to_string(text.size()) + " " + text + "\n";
    }
  }
  throw DbError("unencodable value");
}

namespace {
std::string read_line(const std::string& text, std::size_t& pos) {
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) throw perfdmf::ParseError("truncated record");
  std::string line = text.substr(pos, nl - pos);
  pos = nl + 1;
  return line;
}
}  // namespace

Value decode_value(const std::string& text, std::size_t& pos) {
  if (pos >= text.size()) throw perfdmf::ParseError("truncated value record");
  const char tag = text[pos];
  if (tag == 'N') {
    read_line(text, pos);
    return Value();
  }
  if (tag == 'I') {
    std::string line = read_line(text, pos);
    if (line.size() < 2) throw perfdmf::ParseError("short int value record");
    return Value(util::parse_int_or_throw(line.substr(2), "wal int"));
  }
  if (tag == 'R') {
    std::string line = read_line(text, pos);
    if (line.size() < 2) throw perfdmf::ParseError("short real value record");
    return Value(util::parse_double_or_throw(line.substr(2), "wal real"));
  }
  if (tag == 'T') {
    // "T <len> <bytes...>\n" where bytes may contain newlines.
    const std::size_t space1 = text.find(' ', pos);
    const std::size_t space2 = text.find(' ', space1 + 1);
    if (space1 == std::string::npos || space2 == std::string::npos) {
      throw perfdmf::ParseError("malformed text value record");
    }
    const std::int64_t declared =
        util::parse_int_or_throw(text.substr(space1 + 1, space2 - space1 - 1),
                                 "wal text length");
    // Reject negative / absurd lengths before they can wrap the bounds
    // arithmetic below (a corrupted length must not read out of range).
    if (declared < 0 || static_cast<std::size_t>(declared) > text.size()) {
      throw perfdmf::ParseError("implausible text value length");
    }
    const std::size_t length = static_cast<std::size_t>(declared);
    if (space2 + 1 + length + 1 > text.size()) {
      throw perfdmf::ParseError("truncated text value record");
    }
    Value v(text.substr(space2 + 1, length));
    pos = space2 + 1 + length + 1;  // skip trailing newline
    return v;
  }
  throw perfdmf::ParseError("unknown value tag in record");
}

// ------------------------------------------------------- record framing

namespace {

struct RecordHeader {
  std::uint64_t seq = 0;
  std::uint32_t crc = 0;
  std::size_t payload_len = 0;
  std::size_t payload_start = 0;
};

enum class HeaderParse { kOk, kTorn, kBad };

bool parse_hex32(const std::string& s, std::uint32_t& out) {
  if (s.empty() || s.size() > 8) return false;
  std::uint32_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint32_t>(digit);
  }
  out = v;
  return true;
}

/// Parse "R <seq> <crc32-hex8> <payload-len>\n" at `pos`. kTorn means the
/// header never made it to disk (no newline, or payload past EOF) — the
/// expected residue of a crash mid-append. kBad means the bytes are
/// there but wrong — corruption.
HeaderParse parse_header(const std::string& text, std::size_t pos,
                         RecordHeader& out, std::string& error) {
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) return HeaderParse::kTorn;
  const auto fields = util::split_ws(text.substr(pos, nl - pos));
  if (fields.size() != 4 || fields[0] != "R") {
    error = "bad record header";
    return HeaderParse::kBad;
  }
  try {
    const std::int64_t seq = util::parse_int_or_throw(fields[1], "wal seq");
    const std::int64_t len = util::parse_int_or_throw(fields[3], "wal length");
    if (seq <= 0 || len < 0) {
      error = "implausible record header fields";
      return HeaderParse::kBad;
    }
    // A length pointing past EOF is NOT kBad: a crash that tore the
    // payload off leaves exactly this shape (the kTorn check below).
    if (!parse_hex32(fields[2], out.crc)) {
      error = "malformed record checksum";
      return HeaderParse::kBad;
    }
    out.seq = static_cast<std::uint64_t>(seq);
    out.payload_len = static_cast<std::size_t>(len);
  } catch (const perfdmf::ParseError& e) {
    error = e.what();
    return HeaderParse::kBad;
  }
  out.payload_start = nl + 1;
  if (out.payload_start + out.payload_len > text.size()) {
    return HeaderParse::kTorn;  // crash cut the payload short
  }
  return HeaderParse::kOk;
}

/// Parse one statement frame "S <len>\n<sql>\nP <n>\n<values>" at `cursor`,
/// advancing it; throws ParseError on any malformation.
void parse_statement_frame(const std::string& payload, std::size_t& cursor,
                           std::string& sql, Params& params) {
  if (cursor >= payload.size() || payload[cursor] != 'S') {
    throw perfdmf::ParseError("bad record head");
  }
  const std::size_t space = payload.find(' ', cursor);
  const std::size_t nl = payload.find('\n', cursor);
  if (space == std::string::npos || nl == std::string::npos || space > nl) {
    throw perfdmf::ParseError("bad statement header");
  }
  const std::int64_t declared = util::parse_int_or_throw(
      payload.substr(space + 1, nl - space - 1), "wal sql length");
  if (declared < 0 || static_cast<std::size_t>(declared) > payload.size()) {
    throw perfdmf::ParseError("implausible sql length");
  }
  const std::size_t sql_length = static_cast<std::size_t>(declared);
  cursor = nl + 1;
  if (cursor + sql_length + 1 > payload.size()) {
    throw perfdmf::ParseError("truncated sql");
  }
  sql = payload.substr(cursor, sql_length);
  cursor += sql_length + 1;  // + newline
  const std::string param_header = read_line(payload, cursor);
  if (!util::starts_with(param_header, "P ")) {
    throw perfdmf::ParseError("bad param header");
  }
  const std::int64_t count =
      util::parse_int_or_throw(param_header.substr(2), "wal param count");
  if (count < 0 || static_cast<std::size_t>(count) > payload.size()) {
    throw perfdmf::ParseError("implausible param count");
  }
  params.clear();
  params.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    params.push_back(decode_value(payload, cursor));
  }
}

/// Parse a record payload: a single statement frame, or a commit batch
/// "B <count>\n" followed by that many frames. Either ends with "E\n" and
/// must consume the payload exactly; throws ParseError otherwise (the
/// caller classifies it as corruption — CRC already passed).
void parse_payload(const std::string& payload,
                   std::vector<std::pair<std::string, Params>>& statements) {
  statements.clear();
  std::size_t cursor = 0;
  std::size_t count = 1;
  if (!payload.empty() && payload[0] == 'B') {
    const std::string batch_header = read_line(payload, cursor);
    if (!util::starts_with(batch_header, "B ")) {
      throw perfdmf::ParseError("bad batch header");
    }
    const std::int64_t declared = util::parse_int_or_throw(
        batch_header.substr(2), "wal batch count");
    if (declared <= 0 || static_cast<std::size_t>(declared) > payload.size()) {
      throw perfdmf::ParseError("implausible batch count");
    }
    count = static_cast<std::size_t>(declared);
  }
  statements.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string sql;
    Params params;
    parse_statement_frame(payload, cursor, sql, params);
    statements.emplace_back(std::move(sql), std::move(params));
  }
  if (read_line(payload, cursor) != "E" || cursor != payload.size()) {
    throw perfdmf::ParseError("bad record tail");
  }
}

/// Fill the corruption fields of `info` and count the structurally-whole
/// (header + CRC verified) records after the damage, so the report can
/// say how much committed data was discarded.
void mark_corrupt(Wal::ReplayInfo& info, const std::string& text,
                  std::size_t pos, std::string what) {
  info.corrupt = true;
  info.corruption_offset = pos;
  info.error = std::move(what);
  std::size_t scan = pos;
  while (scan < text.size()) {
    // Candidate record start: the damage point itself (a sequence break
    // leaves a structurally-whole record right there), or "R " on a line
    // boundary further on.
    std::size_t start;
    if (scan == pos && text.compare(scan, 2, "R ") == 0) {
      start = scan;
    } else {
      const std::size_t hit = text.find("\nR ", scan > 0 ? scan - 1 : 0);
      if (hit == std::string::npos) break;
      start = hit + 1;
    }
    RecordHeader header;
    std::string ignored;
    if (parse_header(text, start, header, ignored) == HeaderParse::kOk &&
        util::crc32(std::string_view(text).substr(header.payload_start,
                                                  header.payload_len)) ==
            header.crc) {
      ++info.discarded;
      scan = header.payload_start + header.payload_len;
    } else {
      scan = start + 1;
    }
  }
}

}  // namespace

// ------------------------------------------------------------------ Wal

Wal::Wal(std::filesystem::path path, SyncMode sync)
    : path_(std::move(path)), sync_(sync) {
  // Optional leader accumulation window: how long the group-commit leader
  // waits for more committers to queue up before its single fsync. The
  // default 0 is usually right — while one fsync is in flight, later
  // commits pile up on the queue and the next leader covers them all.
  if (const char* env = std::getenv("PERFDMF_GROUP_COMMIT_MAX_WAIT_US")) {
    if (*env) {
      try {
        group_wait_ = std::chrono::microseconds(std::stoll(env));
      } catch (const std::exception&) {
        throw perfdmf::InvalidArgument(
            "PERFDMF_GROUP_COMMIT_MAX_WAIT_US must be an integer, got " +
            std::string(env));
      }
    }
  }
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {
std::string encode_statement_frame(std::string_view sql, const Params& params) {
  std::string frame = "S " + std::to_string(sql.size()) + "\n";
  frame.append(sql);
  frame += "\nP " + std::to_string(params.size()) + "\n";
  for (const auto& p : params) frame += encode_value(p);
  return frame;
}

std::string frame_record(std::uint64_t seq, const std::string& payload) {
  char header[64];
  std::snprintf(header, sizeof header, "R %llu %08x %zu\n",
                static_cast<unsigned long long>(seq), util::crc32(payload),
                payload.size());
  return header + payload;
}
}  // namespace

std::string Wal::encode_record(std::uint64_t seq, std::string_view sql,
                               const Params& params) const {
  return frame_record(seq, encode_statement_frame(sql, params) + "E\n");
}

void Wal::ensure_open() {
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      throw perfdmf::IoError("cannot open WAL for append: " + path_.string() +
                                 ": " + std::strerror(errno),
                             errno);
    }
  }
  if (!seq_known_) recover_next_seq();
}

void Wal::recover_next_seq() {
  // Structural scan: replay with an impossible min_seq validates every
  // record's frame and CRC without applying anything.
  const ReplayInfo info =
      replay([](const std::string&, const Params&) {}, UINT64_MAX);
  next_seq_ = info.last_seq + 1;
  seq_known_ = true;
}

std::uint64_t Wal::last_seq() {
  if (!seq_known_) recover_next_seq();
  return next_seq_ - 1;
}

void Wal::set_next_seq(std::uint64_t next) {
  next_seq_ = std::max<std::uint64_t>(next, 1);
  seq_known_ = true;
}

void Wal::write_all(const std::string& buffer, const char* site) {
  if (auto fp = util::failpoint::evaluate(site)) {
    // Injected torn write: persist a prefix of the record, then die the
    // way a crash mid-append would.
    const std::size_t keep = std::min(
        buffer.size(), static_cast<std::size_t>(std::max(fp->arg, 0)));
    std::size_t done = 0;
    while (done < keep) {
      const ::ssize_t n = ::write(fd_, buffer.data() + done, keep - done);
      if (n <= 0) break;
      done += static_cast<std::size_t>(n);
    }
    ::_exit(util::failpoint::kCrashExitCode);
  }
  const ::off_t start = ::lseek(fd_, 0, SEEK_END);
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ::ssize_t n = ::write(fd_, buffer.data() + done, buffer.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      // Roll the partial record off the log so the store stays appendable
      // (otherwise the next append would land after mid-log garbage).
      if (start >= 0) ::ftruncate(fd_, start);
      throw perfdmf::IoError("WAL append failed: " + path_.string() + ": " +
                                 std::strerror(saved),
                             saved);
    }
    if (n == 0) {
      if (start >= 0) ::ftruncate(fd_, start);
      throw perfdmf::IoError("WAL short write: " + path_.string());
    }
    done += static_cast<std::size_t>(n);
  }
}

void Wal::sync_now() {
  static auto& fsync_micros =
      telemetry::MetricsRegistry::instance().histogram("sqldb.wal.fsync_micros");
  telemetry::PhaseTimer fsync_phase(telemetry::Phase::kFsync, &fsync_micros);
  util::failpoint::evaluate("wal.sync");
  const auto start = std::chrono::steady_clock::now();
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    const int saved = errno;
    throw perfdmf::IoError("WAL fsync failed: " + path_.string() + ": " +
                               std::strerror(saved),
                           saved);
  }
  last_fsync_micros_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()),
      std::memory_order_relaxed);
}

std::uint64_t Wal::append(std::string_view sql, const Params& params,
                          bool defer_sync) {
  ensure_open();
  const std::uint64_t seq = next_seq_;
  const std::string record = encode_record(seq, sql, params);
  write_all(record, "wal.append");
  ++next_seq_;
  written_seq_.store(seq, std::memory_order_release);
  static auto& appends =
      telemetry::MetricsRegistry::instance().counter("sqldb.wal.appends");
  static auto& bytes =
      telemetry::MetricsRegistry::instance().counter("sqldb.wal.bytes");
  appends.add();
  bytes.add(record.size());
  if (!defer_sync && sync_ == SyncMode::kAlways) {
    sync_now();
    advance_durable(seq);
  }
  return seq;
}

std::uint64_t Wal::append_batch(
    const std::vector<std::pair<std::string, Params>>& records,
    bool defer_sync) {
  if (records.empty()) return written_seq_.load(std::memory_order_relaxed);
  ensure_open();
  // The whole transaction is ONE record under one CRC, so a crash partway
  // through the commit write leaves a torn tail that replay discards
  // wholly — a commit is either entirely in the log or entirely absent.
  std::string payload = "B " + std::to_string(records.size()) + "\n";
  for (const auto& [sql, params] : records) {
    payload += encode_statement_frame(sql, params);
  }
  payload += "E\n";
  const std::uint64_t seq = next_seq_;
  const std::string record = frame_record(seq, payload);
  write_all(record, "wal.commit");
  ++next_seq_;
  written_seq_.store(seq, std::memory_order_release);
  static auto& appends =
      telemetry::MetricsRegistry::instance().counter("sqldb.wal.batch_appends");
  static auto& bytes =
      telemetry::MetricsRegistry::instance().counter("sqldb.wal.bytes");
  appends.add();
  bytes.add(record.size());
  if (!defer_sync && sync_ != SyncMode::kNone) {
    sync_now();
    advance_durable(seq);
  }
  return seq;
}

void Wal::advance_durable(std::uint64_t seq) {
  std::lock_guard<std::mutex> lk(commit_mutex_);
  if (durable_seq_.load(std::memory_order_relaxed) < seq) {
    durable_seq_.store(seq, std::memory_order_release);
  }
}

void Wal::wait_durable(std::uint64_t seq) {
  if (sync_ == SyncMode::kNone) return;
  static auto& commits = telemetry::MetricsRegistry::instance().counter(
      "wal.group_commit.commits");
  static auto& syncs =
      telemetry::MetricsRegistry::instance().counter("wal.group_commit.syncs");
  static auto& batch_size = telemetry::MetricsRegistry::instance().histogram(
      "wal.group_commit.batch_size");
  commits.add();
  if (durable_seq_.load(std::memory_order_acquire) >= seq) return;
  // Everything from here until the covering round lands is durability
  // wait, not execution: label the live-statement view and count
  // ourselves in the group-commit queue depth.
  struct WaiterGuard {
    std::atomic<int>& n;
    explicit WaiterGuard(std::atomic<int>& c) : n(c) {
      n.fetch_add(1, std::memory_order_relaxed);
    }
    ~WaiterGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
  } waiter_guard(commit_waiters_);
  ScopedPhaseLabel phase_label(StatementContext::current(), "fsync");
  std::unique_lock<std::mutex> lk(commit_mutex_);
  for (;;) {
    if (durable_seq_.load(std::memory_order_acquire) >= seq) return;
    if (!leader_active_) {
      // Lead a round: snapshot the written high-water mark, fsync once
      // outside the queue lock, publish, wake everyone covered.
      leader_active_ = true;
      const auto round_start = std::chrono::steady_clock::now();
      if (group_wait_.count() > 0) {
        // Accumulation window — nobody signals it; it is a bounded sleep
        // that lets more committers finish their appends first. The
        // leader's span pays for it as fsync time (sync_now() covers only
        // the fsync proper).
        telemetry::PhaseTimer accumulation_wait(telemetry::Phase::kFsync);
        commit_cv_.wait_for(lk, group_wait_);
      }
      const std::uint64_t target = written_seq_.load(std::memory_order_acquire);
      lk.unlock();
      std::exception_ptr err;
      try {
        util::failpoint::evaluate("wal.group_sync");
        sync_now();
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      leader_active_ = false;
      if (err) {
        ++fail_round_;
        last_fail_ = err;
        commit_cv_.notify_all();
        std::rethrow_exception(err);
      }
      const std::uint64_t prev = durable_seq_.load(std::memory_order_relaxed);
      if (target > prev) {
        durable_seq_.store(target, std::memory_order_release);
        batch_size.record(target - prev);
      }
      syncs.add();
      telemetry::trace_emit("wal.group_commit.round", "wal", round_start,
                            std::chrono::steady_clock::now());
      commit_cv_.notify_all();
      // Loop re-checks: our record was written before we queued, so the
      // round we just led always covers seq.
    } else {
      static auto& follower_wait_micros =
          telemetry::MetricsRegistry::instance().histogram(
              "wal.group_commit.follower_wait_micros");
      const std::uint64_t round = fail_round_;
      {
        // A follower's block time is durability cost; without this it
        // would vanish into the span's execute remainder.
        telemetry::PhaseTimer follower_wait(telemetry::Phase::kFsync,
                                            &follower_wait_micros);
        commit_cv_.wait(lk);
      }
      if (durable_seq_.load(std::memory_order_acquire) >= seq) return;
      if (fail_round_ != round) {
        // The round we were queued behind failed; surface its error.
        // A retry re-enters wait_durable and leads a fresh round.
        std::rethrow_exception(last_fail_);
      }
    }
  }
}

Wal::ReplayInfo Wal::replay(
    const std::function<void(const std::string& sql, const Params& params)>&
        apply,
    std::uint64_t min_seq) const {
  ReplayInfo info;
  if (!std::filesystem::exists(path_)) return info;
  const std::string text = util::read_file(path_);
  std::size_t pos = 0;
  std::uint64_t prev_seq = 0;
  while (pos < text.size()) {
    RecordHeader header;
    std::string error;
    switch (parse_header(text, pos, header, error)) {
      case HeaderParse::kTorn:
        info.tail_torn = true;  // crash mid-append: discard silently
        return info;
      case HeaderParse::kBad:
        mark_corrupt(info, text, pos, std::move(error));
        return info;
      case HeaderParse::kOk:
        break;
    }
    const std::string payload =
        text.substr(header.payload_start, header.payload_len);
    if (util::crc32(payload) != header.crc) {
      mark_corrupt(info, text, pos,
                   "CRC mismatch on record seq " + std::to_string(header.seq));
      return info;
    }
    if (prev_seq != 0 && header.seq != prev_seq + 1) {
      mark_corrupt(info, text, pos,
                   "sequence break: expected " + std::to_string(prev_seq + 1) +
                       ", found " + std::to_string(header.seq));
      return info;
    }
    std::vector<std::pair<std::string, Params>> statements;
    try {
      parse_payload(payload, statements);
    } catch (const perfdmf::ParseError& e) {
      // CRC passed but the frame is wrong: encoder bug or targeted
      // tampering — either way, not a torn tail.
      mark_corrupt(info, text, pos, e.what());
      return info;
    }
    prev_seq = header.seq;
    info.last_seq = header.seq;
    if (header.seq > min_seq) {
      for (const auto& [sql, params] : statements) {
        apply(sql, params);
        ++info.applied;
      }
    } else {
      ++info.skipped;  // already folded into the snapshot
    }
    pos = header.payload_start + header.payload_len;
  }
  return info;
}

void Wal::reset() {
  {
    // Checkpoint supersedes the log: wait out any in-flight group-commit
    // leader (it holds the fd in fsync), then mark everything written as
    // durable — the snapshot the caller just wrote covers it.
    std::unique_lock<std::mutex> lk(commit_mutex_);
    while (leader_active_) commit_cv_.wait(lk);
    durable_seq_.store(written_seq_.load(std::memory_order_acquire),
                       std::memory_order_release);
    commit_cv_.notify_all();
  }
  util::failpoint::evaluate("wal.reset");
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw perfdmf::IoError("cannot truncate WAL: " + path_.string() + ": " +
                               std::strerror(errno),
                           errno);
  }
  // Durable truncation: a crash right after a checkpoint must not
  // resurrect pre-checkpoint records on top of the new snapshot.
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw perfdmf::IoError("WAL truncate fsync failed: " + path_.string() +
                               ": " + std::strerror(saved),
                           saved);
  }
  ::close(fd);
  util::fsync_dir(path_.parent_path());
  // Sequence numbering continues across resets; the snapshot's watermark
  // tells recovery which records it already contains.
}

}  // namespace perfdmf::sqldb
