#include "io/detect.h"

#include "io/dynaprof_format.h"
#include "io/gprof_format.h"
#include "io/hpm_format.h"
#include "io/mpip_format.h"
#include "io/psrun_format.h"
#include "io/tau_format.h"
#include "io/xml_io.h"
#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"
#include "util/timer.h"

namespace perfdmf::io {

const char* format_name(ProfileFormat format) {
  switch (format) {
    case ProfileFormat::kTau: return "tau";
    case ProfileFormat::kGprof: return "gprof";
    case ProfileFormat::kMpiP: return "mpip";
    case ProfileFormat::kDynaprof: return "dynaprof";
    case ProfileFormat::kHpm: return "hpmtoolkit";
    case ProfileFormat::kPsrun: return "psrun";
    case ProfileFormat::kPerfDmfXml: return "perfdmf-xml";
  }
  return "?";
}

std::optional<ProfileFormat> detect_format(const std::filesystem::path& path) {
  namespace fs = std::filesystem;
  if (fs::is_directory(path)) {
    // TAU trials are directories of profile.N.C.T files (possibly under
    // MULTI__<metric> subdirectories).
    for (const auto& entry : fs::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && util::starts_with(name, "profile.")) {
        return ProfileFormat::kTau;
      }
      if (entry.is_directory() && util::starts_with(name, "MULTI__")) {
        return ProfileFormat::kTau;
      }
    }
    return std::nullopt;
  }
  if (!fs::is_regular_file(path)) return std::nullopt;

  // Sniff the head of the file.
  std::string content = util::read_file(path);
  const std::string_view head =
      std::string_view(content).substr(0, std::min<std::size_t>(content.size(), 4096));
  if (util::starts_with(head, "@ mpiP")) return ProfileFormat::kMpiP;
  if (util::starts_with(head, "DynaProf")) return ProfileFormat::kDynaprof;
  if (util::contains(head, "Flat profile:")) return ProfileFormat::kGprof;
  if (util::contains(head, "Instrumented section:")) return ProfileFormat::kHpm;
  if (util::contains(head, "<hwpcreport")) return ProfileFormat::kPsrun;
  if (util::contains(head, "<perfdmf_profile")) return ProfileFormat::kPerfDmfXml;
  // A bare profile.N.C.T file outside a directory is still TAU.
  if (util::starts_with(path.filename().string(), "profile.")) {
    return ProfileFormat::kTau;
  }
  return std::nullopt;
}

std::unique_ptr<DataSource> open_source(const std::filesystem::path& path,
                                        std::optional<ProfileFormat> format) {
  if (!format) format = detect_format(path);
  if (!format) {
    throw perfdmf::ParseError("could not detect profile format of " + path.string());
  }
  switch (*format) {
    case ProfileFormat::kTau: {
      // A single profile.N.C.T file: treat its directory as the trial,
      // filtered down to just that file.
      if (std::filesystem::is_regular_file(path)) {
        ScanFilter filter;
        filter.prefix = path.filename().string();
        return std::make_unique<TauDataSource>(path.parent_path(), filter);
      }
      return std::make_unique<TauDataSource>(path);
    }
    case ProfileFormat::kGprof:
      return std::make_unique<GprofDataSource>(path);
    case ProfileFormat::kMpiP:
      return std::make_unique<MpiPDataSource>(path);
    case ProfileFormat::kDynaprof:
      return std::make_unique<DynaprofDataSource>(path);
    case ProfileFormat::kHpm:
      return std::make_unique<HpmDataSource>(path);
    case ProfileFormat::kPsrun:
      return std::make_unique<PsrunDataSource>(path);
    case ProfileFormat::kPerfDmfXml:
      return std::make_unique<XmlDataSource>(path);
  }
  throw perfdmf::ParseError("unreachable format");
}

profile::TrialData load_profile(const std::filesystem::path& path,
                                std::optional<ProfileFormat> format) {
  util::WallTimer import_timer;
  profile::TrialData data = open_source(path, format)->load();

  auto& registry = telemetry::MetricsRegistry::instance();
  static auto& trials = registry.counter("io.import.trials");
  static auto& points = registry.counter("io.import.points");
  static auto& micros = registry.histogram("io.import.micros");
  trials.add();
  points.add(data.interval_point_count() + data.atomic_point_count());
  micros.record(static_cast<std::uint64_t>(import_timer.seconds() * 1e6));
  return data;
}

}  // namespace perfdmf::io
