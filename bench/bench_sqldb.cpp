// E7 — database engine micro-benchmarks (substrate validation).
//
// The paper outsources storage to PostgreSQL/MySQL/Oracle/DB2; this repo
// implements the engine. These google-benchmark cases size the primitives
// PerfDMF leans on: bulk prepared inserts, PK point lookups, indexed range
// scans, grouped aggregates, and the event/profile join.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "sqldb/connection.h"
#include "sqldb/database.h"
#include "util/file.h"
#include "util/timer.h"

using namespace perfdmf::sqldb;

namespace {

/// Build a table shaped like interval_location_profile with `rows` rows.
std::unique_ptr<Connection> make_profile_table(std::int64_t rows) {
  auto conn = std::make_unique<Connection>();
  conn->execute_update(
      "CREATE TABLE profile (id INTEGER PRIMARY KEY, event INTEGER,"
      " node INTEGER, metric INTEGER, inclusive REAL, exclusive REAL)");
  conn->execute_update("CREATE INDEX idx_event ON profile (event)");
  conn->execute_update("CREATE INDEX idx_node ON profile (node)");
  auto stmt = conn->prepare(
      "INSERT INTO profile (event, node, metric, inclusive, exclusive)"
      " VALUES (?, ?, ?, ?, ?)");
  conn->begin();
  for (std::int64_t i = 0; i < rows; ++i) {
    stmt.set_int(1, i % 101);
    stmt.set_int(2, i / 101);
    stmt.set_int(3, 0);
    stmt.set_double(4, 100.0 + static_cast<double>(i % 997));
    stmt.set_double(5, 90.0 + static_cast<double>(i % 991));
    stmt.execute_update();
  }
  conn->commit();
  return conn;
}

void BM_PreparedInsert(benchmark::State& state) {
  Connection conn;
  conn.execute_update(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT)");
  auto stmt = conn.prepare("INSERT INTO t (a, b, c) VALUES (?, ?, ?)");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, i);
    stmt.set_double(2, static_cast<double>(i) * 0.5);
    stmt.set_string(3, "event name " + std::to_string(i % 64));
    stmt.execute_update();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedInsert);

void BM_PointLookupByPk(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  auto stmt = conn->prepare("SELECT exclusive FROM profile WHERE id = ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, 1 + (i++ % state.range(0)));
    auto rs = stmt.execute_query();
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointLookupByPk)->Arg(10000)->Arg(100000);

void BM_IndexedEventScan(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  auto stmt = conn->prepare("SELECT exclusive FROM profile WHERE event = ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, i++ % 101);
    auto rs = stmt.execute_query();
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedEventScan)->Arg(10000)->Arg(100000);

void BM_RangeScan(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  auto stmt = conn->prepare(
      "SELECT COUNT(*) FROM profile WHERE node BETWEEN ? AND ?");
  std::int64_t i = 0;
  for (auto _ : state) {
    stmt.set_int(1, i % 50);
    stmt.set_int(2, i % 50 + 10);
    auto rs = stmt.execute_query();
    benchmark::DoNotOptimize(rs.row_count());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeScan)->Arg(100000);

void BM_GroupedAggregate(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  for (auto _ : state) {
    auto rs = conn->execute(
        "SELECT event, COUNT(*), AVG(exclusive), STDDEV(exclusive)"
        " FROM profile GROUP BY event");
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupedAggregate)->Arg(10000)->Arg(100000);

void BM_JoinEventProfile(benchmark::State& state) {
  auto conn = make_profile_table(state.range(0));
  conn->execute_update(
      "CREATE TABLE event (id INTEGER PRIMARY KEY, name TEXT)");
  auto stmt = conn->prepare("INSERT INTO event (id, name) VALUES (?, ?)");
  for (int e = 0; e < 101; ++e) {
    stmt.set_int(1, e);
    stmt.set_string(2, "routine_" + std::to_string(e));
    stmt.execute_update();
  }
  for (auto _ : state) {
    auto rs = conn->execute(
        "SELECT e.name, AVG(p.exclusive) FROM event e JOIN profile p"
        " ON p.event = e.id GROUP BY e.name");
    benchmark::DoNotOptimize(rs.row_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinEventProfile)->Arg(10000)->Arg(100000);

void BM_TransactionCommit(benchmark::State& state) {
  Connection conn;
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
  auto stmt = conn.prepare("INSERT INTO t (x) VALUES (?)");
  std::int64_t i = 0;
  for (auto _ : state) {
    conn.begin();
    for (int j = 0; j < 100; ++j) {
      stmt.set_int(1, i++);
      stmt.execute_update();
    }
    conn.commit();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_TransactionCommit);

// ----------------------- concurrent SELECT throughput (shared lock) ----
//
// Measures multi-threaded read throughput against one shared Database at
// 1/2/4/8 threads, comparing the legacy single-mutex discipline
// (ConcurrencyMode::kSerialized: every statement takes the exclusive
// lock) with the shared-read path (SELECTs take the lock shared). Each
// thread runs its own Connection and PreparedStatement.
double run_read_throughput(const std::shared_ptr<Database>& database,
                           unsigned threads, int ops_per_thread) {
  std::vector<std::thread> workers;
  perfdmf::util::WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&database, t, ops_per_thread] {
      Connection conn(database);
      auto stmt = conn.prepare(
          "SELECT COUNT(*), AVG(exclusive) FROM profile WHERE event = ?");
      for (int i = 0; i < ops_per_thread; ++i) {
        stmt.set_int(1, (static_cast<std::int64_t>(t) * 31 + i) % 101);
        auto rs = stmt.execute_query();
        benchmark::DoNotOptimize(rs.row_count());
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = timer.seconds();
  return static_cast<double>(threads) * ops_per_thread / elapsed;
}

void report_concurrent_read_scaling(perfdmf::bench::BenchJson& json) {
  constexpr std::int64_t kRows = 50000;
  constexpr int kOpsPerThread = 200;
  auto conn = make_profile_table(kRows);
  const auto database = conn->database_ptr();

  std::printf("concurrent SELECT throughput, %lld rows, %d ops/thread\n",
              static_cast<long long>(kRows), kOpsPerThread);
  std::printf("  %-8s %18s %18s %9s\n", "threads", "single-mutex op/s",
              "shared-lock op/s", "speedup");
  double serialized_8 = 0.0;
  double shared_8 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    database->locks().set_mode(ConcurrencyMode::kSerialized);
    const double serialized =
        run_read_throughput(database, threads, kOpsPerThread);
    database->locks().set_mode(ConcurrencyMode::kSharedRead);
    const double shared = run_read_throughput(database, threads, kOpsPerThread);
    std::printf("  %-8u %18.0f %18.0f %8.2fx\n", threads, serialized, shared,
                shared / serialized);
    if (threads == 8u) {
      serialized_8 = serialized;
      shared_8 = shared;
    }
  }
  std::printf(
      "  8-thread shared-lock vs single-mutex: %.2fx"
      " (scales with available cores; %u detected)\n\n",
      shared_8 / serialized_8, std::thread::hardware_concurrency());
  json.set("read_8t_serialized_ops_per_s", serialized_8);
  json.set("read_8t_shared_ops_per_s", shared_8);
  json.set("read_8t_shared_speedup", shared_8 / serialized_8);
}

// ------------------------------ durability-mode commit throughput -----
//
// Commit cost of a file-backed database under each SyncMode: kAlways
// fsyncs every WAL write, kOnCommit fsyncs once per transaction commit,
// kNone leaves flushing to the OS. The table shows what the fsync-per-
// commit durability guarantee costs on this machine's storage.
double run_commit_throughput(SyncMode mode, int txns, int rows_per_txn) {
  perfdmf::util::ScopedTempDir dir;
  DurabilityOptions opts;
  opts.sync = mode;
  Connection conn(dir.path() / "db", opts);
  conn.execute_update(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL)");
  conn.checkpoint();
  auto stmt = conn.prepare("INSERT INTO t (a, b) VALUES (?, ?)");
  perfdmf::util::WallTimer timer;
  for (int txn = 0; txn < txns; ++txn) {
    conn.begin();
    for (int i = 0; i < rows_per_txn; ++i) {
      stmt.set_int(1, txn);
      stmt.set_double(2, static_cast<double>(i));
      stmt.execute_update();
    }
    conn.commit();
  }
  return txns / timer.seconds();
}

void report_durability_modes(perfdmf::bench::BenchJson& json) {
  constexpr int kTxns = 100;
  constexpr int kRowsPerTxn = 10;
  std::printf("commit throughput by durability mode, %d txns x %d rows\n",
              kTxns, kRowsPerTxn);
  std::printf("  %-10s %14s\n", "sync", "commits/s");
  const struct {
    const char* name;
    SyncMode mode;
  } kModes[] = {{"always", SyncMode::kAlways},
                {"on_commit", SyncMode::kOnCommit},
                {"none", SyncMode::kNone}};
  for (const auto& m : kModes) {
    const double commits = run_commit_throughput(m.mode, kTxns, kRowsPerTxn);
    std::printf("  %-10s %14.0f\n", m.name, commits);
    json.set(std::string("commit_") + m.name + "_per_s", commits);
  }
  std::printf("\n");
}

// --------------------------------- WAL group-commit throughput --------
//
// Durable (kAlways) commits from N concurrent committer threads against
// one shared file-backed database. COMMIT runs through the SQL statement
// path, so each commit defers its fsync into the group-commit queue: one
// leader fsync covers every committer queued behind it. The 1-thread row
// is the ungrouped baseline (every commit pays its own fsync).
double run_group_commit_throughput(unsigned threads, int txns_per_thread,
                                   int rows_per_txn) {
  perfdmf::util::ScopedTempDir dir;
  DurabilityOptions opts;
  opts.sync = SyncMode::kAlways;
  Connection root(dir.path() / "db", opts);
  root.execute_update(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL)");
  root.checkpoint();
  const auto database = root.database_ptr();

  std::vector<std::thread> committers;
  perfdmf::util::WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    committers.emplace_back([&database, t, txns_per_thread, rows_per_txn] {
      Connection conn(database);
      auto stmt = conn.prepare("INSERT INTO t (a, b) VALUES (?, ?)");
      for (int txn = 0; txn < txns_per_thread; ++txn) {
        conn.execute("BEGIN");
        for (int i = 0; i < rows_per_txn; ++i) {
          stmt.set_int(1, static_cast<std::int64_t>(t) * 1000 + txn);
          stmt.set_double(2, static_cast<double>(i));
          stmt.execute_update();
        }
        conn.execute("COMMIT");
      }
    });
  }
  for (auto& c : committers) c.join();
  return static_cast<double>(threads) * txns_per_thread / timer.seconds();
}

void report_group_commit(perfdmf::bench::BenchJson& json) {
  constexpr int kTxnsPerThread = 50;
  constexpr int kRowsPerTxn = 5;
  std::printf(
      "durable (kAlways) group-commit throughput, %d txns/thread x %d rows\n",
      kTxnsPerThread, kRowsPerTxn);
  std::printf("  %-8s %14s\n", "threads", "commits/s");
  double serial = 0.0;
  double grouped_8 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const double commits =
        run_group_commit_throughput(threads, kTxnsPerThread, kRowsPerTxn);
    std::printf("  %-8u %14.0f\n", threads, commits);
    if (threads == 1u) serial = commits;
    if (threads == 8u) grouped_8 = commits;
  }
  std::printf("  8-thread group commit vs 1-thread: %.2fx\n\n",
              grouped_8 / serial);
  json.set("group_commit_1t_per_s", serial);
  json.set("group_commit_8t_per_s", grouped_8);
  json.set("group_commit_8t_speedup", grouped_8 / serial);
}

// ----------------------- snapshot reads under a live writer -----------
//
// MVCC's headline property: readers scan their snapshot lock-free while
// a writer continuously installs versions inside transactions. Reader
// throughput here collapsing against read_8t_shared_ops_per_s would mean
// writers block readers again.
void report_reads_under_writes(perfdmf::bench::BenchJson& json) {
  constexpr std::int64_t kRows = 50000;
  constexpr int kOpsPerThread = 200;
  constexpr unsigned kReaders = 4;
  auto conn = make_profile_table(kRows);
  const auto database = conn->database_ptr();

  std::atomic<bool> stop{false};
  std::thread writer([&database, &stop] {
    Connection w(database);
    w.execute_update("CREATE TABLE results (id INTEGER PRIMARY KEY, x REAL)");
    auto stmt = w.prepare("INSERT INTO results (x) VALUES (?)");
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      w.begin();
      for (int j = 0; j < 50; ++j) {
        stmt.set_double(1, static_cast<double>(i++));
        stmt.execute_update();
      }
      w.commit();
    }
  });

  const double ops =
      run_read_throughput(database, kReaders, kOpsPerThread);
  stop.store(true, std::memory_order_release);
  writer.join();
  std::printf(
      "snapshot reads under a live writer: %u readers, %.0f op/s "
      "(writer committing concurrently throughout)\n\n",
      kReaders, ops);
  json.set("read_4t_under_writer_ops_per_s", ops);
}

}  // namespace

int main(int argc, char** argv) {
  perfdmf::bench::BenchJson json("sqldb");
  report_concurrent_read_scaling(json);
  report_reads_under_writes(json);
  report_durability_modes(json);
  report_group_commit(json);
  json.write();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
