// k-means clustering with k-means++ seeding — the statistical engine of
// the PerfExplorer workflow (paper §5.3): large parallel profiles are
// clustered by thread behaviour and summarized per cluster, standing in
// for the R back end the paper hands data to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::analysis {

struct KMeansOptions {
  std::size_t k = 3;
  std::size_t max_iterations = 100;
  /// Relative centroid-movement threshold that ends iteration.
  double tolerance = 1e-7;
  std::uint64_t seed = 99;
  /// Restarts; the assignment with the lowest inertia wins.
  std::size_t restarts = 3;
  /// Run distance computations on the default thread pool.
  bool parallel = true;
};

struct KMeansResult {
  std::vector<std::size_t> assignment;        // row -> cluster
  std::vector<std::vector<double>> centroids;  // k x dims
  std::vector<std::size_t> cluster_sizes;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
  std::size_t iterations = 0;
};

/// `data` is row-major (rows x dims). Throws InvalidArgument on empty
/// input or k == 0; k is clamped to the number of rows.
KMeansResult kmeans(const std::vector<double>& data, std::size_t rows,
                    std::size_t dims, const KMeansOptions& options);

/// Feature extraction for PerfExplorer-style clustering: one row per
/// thread, one column per (event, metric) exclusive value, z-scored.
struct ThreadFeatureMatrix {
  std::vector<double> values;  // row-major
  std::size_t rows = 0;        // threads
  std::size_t cols = 0;        // events x metrics actually present
  std::vector<std::string> column_names;
};
ThreadFeatureMatrix thread_features(const profile::TrialData& trial,
                                    bool normalize = true);

/// Per-cluster summary: mean value of each feature column (PerfExplorer's
/// "summarization of the clusters").
std::vector<std::vector<double>> summarize_clusters(const ThreadFeatureMatrix& m,
                                                    const KMeansResult& result);

/// Adjusted Rand index between two assignments (ground-truth recovery
/// metric used by the clustering benchmark).
double adjusted_rand_index(const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b);

}  // namespace perfdmf::analysis
