// Concurrent read scalability tests for sqldb: many reader connections
// over one shared Database, mixed with a writer running transactions.
// Readers must never observe torn rows (a partially applied batch) and
// the final database state must equal a serially computed baseline.
//
// These tests exercise the shared-read lock path specifically: every
// thread opens its own lightweight Connection over the same Database,
// the deployment the paper's shared-repository model implies (§5.1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/database_api.h"
#include "api/database_session.h"
#include "io/synth.h"
#include "sqldb/connection.h"
#include "sqldb/database.h"
#include "telemetry/metrics.h"
#include "util/file.h"
#include "util/rng.h"

using namespace perfdmf;

namespace {

// One writer inserts `kBatch`-row batches inside transactions, committing
// or rolling back by a deterministic coin flip; returns the per-batch
// commit decisions so callers can compute the expected final state.
constexpr int kBatches = 40;
constexpr int kBatch = 8;

std::vector<bool> run_batched_writer(sqldb::Connection& writer,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<bool> committed;
  committed.reserve(kBatches);
  auto insert = writer.prepare(
      "INSERT INTO ledger (batch, slot, amount) VALUES (?, ?, ?)");
  for (int b = 0; b < kBatches; ++b) {
    const bool commit = rng.next_below(3) != 0;  // ~2/3 commit
    writer.begin();
    for (int s = 0; s < kBatch; ++s) {
      insert.set_int(1, b);
      insert.set_int(2, s);
      insert.set_double(3, static_cast<double>(b) + 0.125 * s);
      insert.execute_update();
    }
    if (commit) {
      writer.commit();
    } else {
      writer.rollback();
    }
    committed.push_back(commit);
  }
  return committed;
}

}  // namespace

TEST(SqldbConcurrent, ReadersNeverSeeTornBatches) {
  auto database = std::make_shared<sqldb::Database>();
  sqldb::Connection setup(database);
  setup.execute_update(
      "CREATE TABLE ledger (id INTEGER PRIMARY KEY, batch INTEGER, "
      "slot INTEGER, amount REAL)");
  setup.execute_update("CREATE INDEX idx_ledger_batch ON ledger (batch)");

  std::atomic<int> failures{0};

  // Readers run a fixed number of iterations rather than polling until
  // the writer finishes: pthread reader-writer locks favour readers, so
  // a reader loop keyed on writer progress can starve the writer for
  // minutes on a loaded machine.
  const unsigned reader_count = 4;
  constexpr int kReaderIters = 60;
  std::vector<std::thread> readers;
  for (unsigned r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      try {
        sqldb::Connection conn(database);
        auto point = conn.prepare(
            "SELECT COUNT(*) FROM ledger WHERE batch = ?");
        std::int64_t last_total = 0;
        std::uint64_t probe = r;
        for (int iter = 0; iter < kReaderIters; ++iter) {
          // Torn-row check: a batch is either fully absent (uncommitted
          // or rolled back) or fully present — COUNT per batch ∈ {0, K}.
          point.set_int(1, static_cast<std::int64_t>(probe++ % kBatches));
          auto rs = point.execute_query();
          rs.next();
          const std::int64_t per_batch = rs.get_int(1);
          if (per_batch != 0 && per_batch != kBatch) ++failures;

          // Committed state only grows: total row count is monotone.
          auto total_rs = conn.execute("SELECT COUNT(*) FROM ledger");
          total_rs.next();
          const std::int64_t total = total_rs.get_int(1);
          if (total < last_total || total % kBatch != 0) ++failures;
          last_total = total;

          // Aggregate + range read; a later statement may see more
          // commits than `total` did, never fewer, and always whole
          // batches (the two statements are separate lock scopes).
          auto agg = conn.execute(
              "SELECT COUNT(*), MIN(amount), MAX(amount) FROM ledger "
              "WHERE slot >= 0");
          agg.next();
          const std::int64_t agg_count = agg.get_int(1);
          if (agg_count < total || agg_count % kBatch != 0) ++failures;
          last_total = agg_count;
        }
      } catch (...) {
        ++failures;
      }
    });
  }

  sqldb::Connection writer(database);
  const std::vector<bool> committed = run_batched_writer(writer, /*seed=*/7);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Final state must equal the serially computed baseline.
  std::int64_t expected_rows = 0;
  for (bool c : committed) expected_rows += c ? kBatch : 0;
  auto rs = setup.execute("SELECT COUNT(*) FROM ledger");
  rs.next();
  EXPECT_EQ(rs.get_int(1), expected_rows);

  // Column-wise check against a fresh database replaying only the
  // committed batches (ids differ — rollbacks burn nothing here, but we
  // compare content columns, not the synthetic primary key).
  sqldb::Connection baseline;
  baseline.execute_update(
      "CREATE TABLE ledger (id INTEGER PRIMARY KEY, batch INTEGER, "
      "slot INTEGER, amount REAL)");
  auto insert = baseline.prepare(
      "INSERT INTO ledger (batch, slot, amount) VALUES (?, ?, ?)");
  for (int b = 0; b < kBatches; ++b) {
    if (!committed[static_cast<std::size_t>(b)]) continue;
    for (int s = 0; s < kBatch; ++s) {
      insert.set_int(1, b);
      insert.set_int(2, s);
      insert.set_double(3, static_cast<double>(b) + 0.125 * s);
      insert.execute_update();
    }
  }
  const char* kDump =
      "SELECT batch, slot, amount FROM ledger ORDER BY batch, slot";
  auto got = setup.execute(kDump);
  auto want = baseline.execute(kDump);
  while (want.next()) {
    ASSERT_TRUE(got.next());
    EXPECT_EQ(got.get_int(1), want.get_int(1));
    EXPECT_EQ(got.get_int(2), want.get_int(2));
    EXPECT_DOUBLE_EQ(got.get_double(1 + 2), want.get_double(3));
  }
  EXPECT_FALSE(got.next());
}

TEST(SqldbConcurrent, MixedQueryShapesAgainstProfileArchive) {
  // Readers issue the four query shapes from the issue — point, range,
  // aggregate, join — against a real profile archive while a writer
  // appends analysis results transactionally.
  auto connection = std::make_shared<sqldb::Connection>();
  api::DatabaseAPI api(connection);
  profile::Application app;
  app.name = "conc";
  api.save_application(app);
  profile::Experiment experiment;
  experiment.application_id = app.id;
  experiment.name = "e";
  api.save_experiment(experiment);
  io::synth::TrialSpec spec;
  spec.nodes = 8;
  spec.event_count = 12;
  const std::int64_t trial_id =
      api.upload_trial(io::synth::generate_trial(spec), experiment.id);

  const auto database = connection->database_ptr();
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      try {
        sqldb::Connection conn(database);
        auto point = conn.prepare(
            "SELECT COUNT(*) FROM interval_location_profile WHERE node = ?");
        auto range = conn.prepare(
            "SELECT COUNT(*) FROM interval_location_profile "
            "WHERE node >= ? AND node < ?");
        auto join = conn.prepare(
            "SELECT COUNT(*) FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "WHERE e.trial = ?");
        // Fixed iteration count: see ReadersNeverSeeTornBatches.
        for (int i = 0; i < 30; ++i) {
          point.set_int(1, (r + i) % 8);
          auto prs = point.execute_query();
          prs.next();
          if (prs.get_int(1) != 12) ++failures;

          range.set_int(1, 0);
          range.set_int(2, 8);
          auto rrs = range.execute_query();
          rrs.next();
          const std::int64_t all = rrs.get_int(1);

          auto ars = conn.execute(
              "SELECT COUNT(*), AVG(exclusive) FROM "
              "interval_location_profile");
          ars.next();
          if (ars.get_int(1) != all) ++failures;

          join.set_int(1, trial_id);
          auto jrs = join.execute_query();
          jrs.next();
          if (jrs.get_int(1) != all) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }

  // Writer: transactional inserts through the API layer's tables.
  sqldb::Connection writer(database);
  for (int b = 0; b < 25; ++b) {
    writer.begin();
    auto stmt = writer.prepare(
        "INSERT INTO analysis_result (trial, name, kind, content) "
        "VALUES (?, ?, ?, ?)");
    for (int s = 0; s < 4; ++s) {
      stmt.set_int(1, trial_id);
      stmt.set_string(2, "r" + std::to_string(b));
      stmt.set_string(3, "test");
      stmt.set_string(4, "payload");
      stmt.execute_update();
    }
    if (b % 5 == 4) {
      writer.rollback();
    } else {
      writer.commit();
    }
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // 25 batches of 4, every 5th rolled back → 20 * 4 committed.
  auto rs = writer.execute("SELECT COUNT(*) FROM analysis_result");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 20 * 4);
}

TEST(SqldbConcurrent, ConcurrentWritersGetDistinctIds) {
  // Regression (review): save_analysis_result and save_row_with_fields
  // used to run INSERT and SELECT MAX(id) as two separate lock scopes, so
  // writers on sibling connections could interleave between them and one
  // request would receive another's id; the same window let two writers
  // both decide to ALTER the same metadata column in. Both sequences now
  // run inside a transaction.
  auto connection = std::make_shared<sqldb::Connection>();
  api::DatabaseAPI api(connection);
  profile::Application app;
  app.name = "ids";
  api.save_application(app);
  profile::Experiment experiment;
  experiment.application_id = app.id;
  experiment.name = "e";
  api.save_experiment(experiment);
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  const std::int64_t trial_id =
      api.upload_trial(io::synth::generate_trial(spec), experiment.id);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 25;
  std::vector<std::vector<std::int64_t>> ids(kWriters);
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      try {
        api::DatabaseAPI worker(
            std::make_shared<sqldb::Connection>(connection->database_ptr()));
        // Every writer extends the application schema with the same new
        // column: exactly one ALTER must win, the rest must see it.
        profile::Application extended;
        extended.name = "w" + std::to_string(w);
        extended.fields["shared_note"] = "note" + std::to_string(w);
        worker.save_application(extended, /*extend_schema=*/true);
        for (int i = 0; i < kPerWriter; ++i) {
          ids[static_cast<std::size_t>(w)].push_back(
              worker.save_analysis_result(trial_id, "r", "test",
                                          "w" + std::to_string(w)));
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);

  std::set<std::int64_t> unique;
  for (const auto& per_writer : ids) {
    for (std::int64_t id : per_writer) unique.insert(id);
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kWriters) * kPerWriter);

  // Each returned id must address the row its writer stored.
  std::unordered_map<std::int64_t, std::string> content_of;
  for (const auto& result : api.list_analysis_results(trial_id)) {
    content_of[result.id] = result.content;
  }
  for (int w = 0; w < kWriters; ++w) {
    for (std::int64_t id : ids[static_cast<std::size_t>(w)]) {
      ASSERT_TRUE(content_of.count(id));
      EXPECT_EQ(content_of[id], "w" + std::to_string(w));
    }
  }

  // The shared metadata column exists (once) and every writer's note
  // landed on its own application row.
  for (const auto& stored : api.list_applications()) {
    if (stored.name == "ids") continue;
    ASSERT_TRUE(stored.fields.count("shared_note"));
    EXPECT_EQ(stored.fields.at("shared_note"),
              "note" + stored.name.substr(1));
  }
}

TEST(SqldbConcurrent, SharedConnectionPlanCacheUnderDdlChurn) {
  // One Connection (and therefore one plan cache) shared by several
  // threads re-executing the same SQL texts, while DDL on the same
  // connection keeps bumping the schema epoch. Cached plans are leased
  // exclusively — a thread finding its entry in use falls back to a
  // fresh parse — and epoch-stale entries are dropped, so every reader
  // must keep seeing correct results throughout.
  auto database = std::make_shared<sqldb::Database>();
  auto conn = std::make_shared<sqldb::Connection>(database);
  conn->execute_update(
      "CREATE TABLE m (id INTEGER PRIMARY KEY, v INTEGER)");
  for (int i = 0; i < 32; ++i) {
    conn->execute_update("INSERT INTO m (v) VALUES (" +
                         std::to_string(i % 8) + ")");
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      try {
        for (int i = 0; i < 60; ++i) {
          switch (i % 3) {
            case 0: {
              auto rs = conn->execute("SELECT COUNT(*) FROM m");
              rs.next();
              if (rs.get_int(1) != 32) ++failures;
              break;
            }
            case 1: {
              // v is 0..7, four of each: SUM = 4 * 28.
              auto rs = conn->execute("SELECT SUM(v) FROM m");
              rs.next();
              if (rs.get_int(1) != 112) ++failures;
              break;
            }
            default: {
              auto rs = conn->execute(
                  "SELECT v, COUNT(*) FROM m GROUP BY v ORDER BY v");
              int groups = 0;
              while (rs.next()) {
                if (rs.get_int(2) != 4) ++failures;
                ++groups;
              }
              if (groups != 8) ++failures;
              break;
            }
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }

  // DDL churn on the same shared connection: every statement bumps the
  // schema epoch, so concurrently cached SELECT plans go stale and must
  // be invalidated on their next lease, never executed against the new
  // catalog.
  for (int i = 0; i < 12; ++i) {
    conn->execute_update("CREATE TABLE scratch (id INTEGER PRIMARY KEY)");
    conn->execute_update("DROP TABLE scratch");
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // A cached plan leased after one more epoch bump is deterministically
  // stale: invalidations must be observable, and the repeated texts must
  // have produced cache hits.
  conn->execute_update("CREATE TABLE scratch (id INTEGER PRIMARY KEY)");
  auto rs = conn->execute("SELECT COUNT(*) FROM m");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 32);
  const auto stats = conn->plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.invalidations, 0u);
}

TEST(SqldbConcurrent, ForkedSessionsReadInParallel) {
  api::DatabaseSession session;
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 6;
  session.save_trial(io::synth::generate_trial(spec), "app", "exp");

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    // fork() carries the trial selection onto an independent connection.
    clients.emplace_back([&failures, fork = session.fork()]() mutable {
      try {
        for (int i = 0; i < 20; ++i) {
          if (fork.get_metrics().empty()) ++failures;
          if (fork.get_interval_events().size() != 6) ++failures;
          if (fork.get_interval_data().empty()) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SqldbConcurrent, SnapshotReadersSeeNoDirtyReadsAndNeverBlock) {
  // MVCC contract, directed: while a writer transaction holds the writer
  // mutex with uncommitted rows installed, a reader on another thread
  // (1) completes without waiting for the transaction — the reader is
  // joined BEFORE commit, so the old reader-writer lock discipline would
  // hang this test — and (2) never sees the pending rows (no dirty
  // reads), observing the same committed count on every statement.
  auto database = std::make_shared<sqldb::Database>();
  sqldb::Connection writer(database);
  writer.execute_update(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, tag INTEGER)");
  for (int i = 0; i < 8; ++i) {
    writer.execute_update("INSERT INTO t (tag) VALUES (0)");
  }

  writer.begin();
  for (int i = 0; i < 8; ++i) {
    writer.execute_update("INSERT INTO t (tag) VALUES (1)");
  }
  // The writer's own statements see its pending versions.
  {
    auto rs = writer.execute("SELECT COUNT(*) FROM t");
    rs.next();
    EXPECT_EQ(rs.get_int(1), 16);
  }

  std::atomic<int> failures{0};
  std::thread reader([&] {
    try {
      sqldb::Connection conn(database);
      auto count = conn.prepare("SELECT COUNT(*) FROM t");
      auto pending = conn.prepare("SELECT COUNT(*) FROM t WHERE tag = 1");
      for (int i = 0; i < 40; ++i) {
        auto rs = count.execute_query();
        rs.next();
        if (rs.get_int(1) != 8) ++failures;  // repeatable, committed-only
        auto prs = pending.execute_query();
        prs.next();
        if (prs.get_int(1) != 0) ++failures;  // dirty read
      }
    } catch (...) {
      ++failures;
    }
  });
  reader.join();  // completes while the transaction is still open
  EXPECT_EQ(failures.load(), 0);

  writer.commit();
  auto rs = writer.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 16);

  // And a rolled-back transaction's versions never surface anywhere.
  writer.begin();
  writer.execute_update("INSERT INTO t (tag) VALUES (2)");
  writer.rollback();
  auto rs2 = writer.execute("SELECT COUNT(*) FROM t WHERE tag = 2");
  rs2.next();
  EXPECT_EQ(rs2.get_int(1), 0);
}

TEST(SqldbConcurrent, DeleteInsertChurnKeepsSlotCountBounded) {
  // Regression: tombstoned slots must be reused by INSERT and compacted
  // at checkpoint, coordinated with MVCC version GC — without
  // reclamation this loop would grow the slot array by kRows per round
  // and the final bound below fails by an order of magnitude.
  constexpr int kRows = 64;
  constexpr int kRounds = 24;
  auto database = std::make_shared<sqldb::Database>();
  sqldb::Connection conn(database);
  conn.execute_update("CREATE TABLE churn (id INTEGER PRIMARY KEY, v INTEGER)");
  auto insert = conn.prepare("INSERT INTO churn (v) VALUES (?)");
  for (int i = 0; i < kRows; ++i) {
    insert.set_int(1, i);
    insert.execute_update();
  }

  const auto reused_before = perfdmf::telemetry::MetricsRegistry::instance()
                                 .counter("mvcc.slots_reused")
                                 .value();
  for (int round = 0; round < kRounds; ++round) {
    conn.execute_update("DELETE FROM churn");
    for (int i = 0; i < kRows; ++i) {
      insert.set_int(1, round * kRows + i);
      insert.execute_update();
    }
    // Checkpoint folds version GC in: chains collapse to the newest
    // committed version and trailing dead slots are compacted.
    if (round % 4 == 3) conn.checkpoint();
  }

  auto rs = conn.execute("SELECT COUNT(*) FROM churn");
  rs.next();
  EXPECT_EQ(rs.get_int(1), kRows);
  // Bounded: a small multiple of the live set, not O(rounds * kRows).
  EXPECT_LE(database->table("churn").slot_count(),
            static_cast<std::size_t>(kRows) * 4);
  // Counter deltas only register when telemetry is compiled in; the
  // slot-count bound above is the real assertion either way.
  if (perfdmf::telemetry::compiled_in()) {
    EXPECT_GT(perfdmf::telemetry::MetricsRegistry::instance()
                  .counter("mvcc.slots_reused")
                  .value(),
              reused_before);
  }

  // The MVCC counters surface through the SQL-queryable system table.
  for (const char* name :
       {"mvcc.slots_reused", "mvcc.versions_installed",
        "mvcc.gc_versions_reclaimed"}) {
    auto mrs = conn.execute(
        std::string("SELECT COUNT(*) FROM PERFDMF_METRICS WHERE name = '") +
        name + "'");
    mrs.next();
    EXPECT_EQ(mrs.get_int(1), 1) << name;
  }
}

TEST(SqldbConcurrent, CheckpointDuringConcurrentReads) {
  util::ScopedTempDir dir;
  auto database = std::make_shared<sqldb::Database>(dir.path());
  sqldb::Connection setup(database);
  setup.execute_update(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)");
  for (int i = 0; i < 64; ++i) {
    setup.execute_update("INSERT INTO t (x) VALUES (" + std::to_string(i) +
                         ")");
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      try {
        sqldb::Connection conn(database);
        for (int i = 0; i < 80; ++i) {
          auto rs = conn.execute("SELECT COUNT(*) FROM t");
          rs.next();
          if (rs.get_int(1) < 64) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  // Checkpoints take the exclusive lock; readers must simply wait, never
  // crash or observe partial state.
  for (int i = 0; i < 10; ++i) {
    setup.execute_update("INSERT INTO t (x) VALUES (1000)");
    setup.checkpoint();
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Reopen: everything committed before the last checkpoint must survive.
  database.reset();
  sqldb::Connection reopened(dir.path());
  auto rs = reopened.execute("SELECT COUNT(*) FROM t");
  rs.next();
  EXPECT_EQ(rs.get_int(1), 74);
}
