#include "api/access_control.h"

namespace perfdmf::api {

void AccessPolicy::grant(const std::string& user, const std::string& application,
                         Permission permission) {
  rules_[user][application] = permission;
}

Permission AccessPolicy::permission_for(const std::string& user,
                                        const std::string& application) const {
  auto user_rules = rules_.find(user);
  if (user_rules == rules_.end()) return default_;
  auto exact = user_rules->second.find(application);
  if (exact != user_rules->second.end()) return exact->second;
  auto wildcard = user_rules->second.find("*");
  if (wildcard != user_rules->second.end()) return wildcard->second;
  return default_;
}

AuthorizedSession::AuthorizedSession(std::shared_ptr<sqldb::Connection> connection,
                                     AccessPolicy policy, std::string user)
    : session_(std::move(connection)),
      policy_(std::move(policy)),
      user_(std::move(user)) {}

Permission AuthorizedSession::require(const std::string& application_name,
                                      Permission needed, const char* operation) {
  const Permission held = policy_.permission_for(user_, application_name);
  if (static_cast<int>(held) < static_cast<int>(needed)) {
    throw AccessDenied("user '" + user_ + "' may not " + operation +
                       " application '" + application_name + "'");
  }
  return held;
}

std::string AuthorizedSession::application_of_trial(std::int64_t trial_id) {
  auto trial = session_.api().get_trial(trial_id);
  if (!trial) throw InvalidArgument("no trial " + std::to_string(trial_id));
  auto experiment = session_.api().get_experiment(trial->experiment_id);
  if (!experiment) throw DbError("trial has dangling experiment");
  auto application = session_.api().get_application(experiment->application_id);
  if (!application) throw DbError("experiment has dangling application");
  return application->name;
}

std::vector<profile::Application> AuthorizedSession::get_application_list() {
  std::vector<profile::Application> visible;
  for (auto& app : session_.api().list_applications()) {
    if (static_cast<int>(policy_.permission_for(user_, app.name)) >=
        static_cast<int>(Permission::kRead)) {
      visible.push_back(std::move(app));
    }
  }
  return visible;
}

std::vector<profile::Experiment> AuthorizedSession::get_experiment_list(
    const std::string& application_name) {
  require(application_name, Permission::kRead, "read");
  auto app = session_.api().find_application(application_name);
  if (!app) return {};
  return session_.api().list_experiments(app->id);
}

std::vector<profile::Trial> AuthorizedSession::get_trial_list(
    const std::string& application_name, std::int64_t experiment_id) {
  require(application_name, Permission::kRead, "read");
  // The experiment must actually belong to the named application, or a
  // caller could read foreign trials by lying about the application.
  auto experiment = session_.api().get_experiment(experiment_id);
  auto app = session_.api().find_application(application_name);
  if (!experiment || !app || experiment->application_id != app->id) {
    throw AccessDenied("experiment " + std::to_string(experiment_id) +
                       " does not belong to application '" + application_name +
                       "'");
  }
  return session_.api().list_trials(experiment_id);
}

profile::TrialData AuthorizedSession::load_trial(std::int64_t trial_id) {
  require(application_of_trial(trial_id), Permission::kRead, "read");
  return session_.api().load_trial(trial_id);
}

std::int64_t AuthorizedSession::save_trial(const profile::TrialData& data,
                                           const std::string& application_name,
                                           const std::string& experiment_name) {
  require(application_name, Permission::kWrite, "write to");
  return session_.save_trial(data, application_name, experiment_name);
}

void AuthorizedSession::delete_trial(std::int64_t trial_id) {
  require(application_of_trial(trial_id), Permission::kWrite, "write to");
  session_.api().delete_trial(trial_id);
}

}  // namespace perfdmf::api
