#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace perfdmf::analysis {

Descriptive describe(std::span<const double> values) {
  Descriptive out;
  double mean = 0.0;
  double m2 = 0.0;
  for (double v : values) {
    if (out.count == 0) {
      out.minimum = v;
      out.maximum = v;
    } else {
      out.minimum = std::min(out.minimum, v);
      out.maximum = std::max(out.maximum, v);
    }
    ++out.count;
    out.sum += v;
    const double delta = v - mean;
    mean += delta / static_cast<double>(out.count);
    m2 += delta * (v - mean);
  }
  out.mean = mean;
  if (out.count >= 2) {
    out.variance = m2 / static_cast<double>(out.count - 1);
    out.std_dev = std::sqrt(out.variance);
  }
  return out;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw InvalidArgument("percentile of empty data");
  if (p < 0.0 || p > 1.0) throw InvalidArgument("percentile p must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - fraction) + sorted[hi] * fraction;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const std::size_t n = x.size();
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double covariance = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    covariance += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return covariance / std::sqrt(var_x * var_y);
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

void zscore_columns(std::vector<double>& matrix, std::size_t rows,
                    std::size_t cols) {
  if (matrix.size() != rows * cols) {
    throw InvalidArgument("zscore_columns: matrix size mismatch");
  }
  for (std::size_t c = 0; c < cols; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < rows; ++r) mean += matrix[r * cols + c];
    mean /= static_cast<double>(rows);
    double variance = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double d = matrix[r * cols + c] - mean;
      variance += d * d;
    }
    variance /= rows > 1 ? static_cast<double>(rows - 1) : 1.0;
    const double std_dev = std::sqrt(variance);
    for (std::size_t r = 0; r < rows; ++r) {
      double& cell = matrix[r * cols + c];
      cell = std_dev > 0.0 ? (cell - mean) / std_dev : 0.0;
    }
  }
}

}  // namespace perfdmf::analysis
