// Deterministic random number generation for workload synthesis and the
// clustering seeders. Benchmarks and property tests need reproducible
// streams, so everything seeds explicitly — no global entropy. The one
// sanctioned outside input is PERFDMF_SEED (seed_from_env), which lets a
// failing randomized test or a benchmark run be replayed exactly.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace perfdmf::util {

/// SplitMix64: tiny, fast, and statistically adequate for synthetic data.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double next_gaussian();

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// The process-wide replay override: PERFDMF_SEED (decimal or 0x-hex)
/// wins over `fallback` when set and parseable. Randomized harnesses
/// seed through this so any failure report ("seed=N") can be replayed
/// with PERFDMF_SEED=N without recompiling.
inline std::uint64_t seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("PERFDMF_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(env, &end, 0);  // 0 -> auto base
  if (end == env || *end != '\0') return fallback;
  return parsed;
}

/// Zipfian rank generator over [0, n) with exponent `theta` in (0, 1)
/// (YCSB's default skew is theta = 0.99): rank r is drawn with
/// probability proportional to 1 / (r+1)^theta, so rank 0 is the hottest
/// key. The standard Gray et al. rejection-free algorithm, as used by
/// YCSB's ZipfianGenerator; the harmonic normalizer is computed once at
/// construction (O(n), microseconds at benchmark scales).
///
/// Ranks cluster at the low end; callers that want hot keys scattered
/// across the keyspace pass them through scatter() (a splitmix64-style
/// bijective-ish hash mod n, matching YCSB's "scrambled zipfian").
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta), zeta_n_(zeta(n, theta)) {
    const double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zeta_n_);
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Next rank in [0, n); 0 is the most popular.
  std::uint64_t next(Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  /// Spread rank popularity across [0, n) so the hot set is not one
  /// contiguous key range (splitmix64 finalizer, then mod n).
  std::uint64_t scatter(std::uint64_t rank) const {
    std::uint64_t z = rank + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return (z ^ (z >> 31)) % n_;
  }

  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

 private:
  std::uint64_t n_;
  double theta_;
  double zeta_n_;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

inline double Rng::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace perfdmf::util
