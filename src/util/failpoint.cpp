#include "util/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/log.h"
#include "util/strings.h"

namespace perfdmf::util::failpoint {

namespace {

enum class Mode { kOneShot, kEveryN, kProbability };

struct Spec {
  FailAction action;
  Mode mode = Mode::kOneShot;
  int countdown = 1;   // kOneShot: fires when a hit decrements this to zero
  int every_n = 1;     // kEveryN: fires when counter wraps this period
  int counter = 0;     // kEveryN: evaluations since the last firing
  double probability = 0.0;  // kProbability
  std::uint64_t rng = 0;     // kProbability: per-site splitmix64 state
  int arg = 0;
};

std::mutex g_mutex;
std::map<std::string, Spec>& registry() {
  static std::map<std::string, Spec> map;
  return map;
}
// Fast path: sites on hot paths (every WAL append) pay one relaxed load
// when nothing is armed.
std::atomic<int> g_armed{0};
std::once_flag g_env_once;
std::uint64_t g_seed = 0;  // guarded by g_mutex

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a: mixes the site name into the global seed so each site draws
// an independent, order-insensitive coin stream.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

FailAction parse_action(const std::string& word) {
  if (word == "error") return FailAction::kError;
  if (word == "short" || word == "shortwrite") return FailAction::kShortWrite;
  if (word == "abort") return FailAction::kAbort;
  if (word == "delay") return FailAction::kDelay;
  throw InvalidArgument("unknown failpoint action: " + word);
}

const char* action_name(FailAction action) {
  switch (action) {
    case FailAction::kError: return "error";
    case FailAction::kShortWrite: return "short";
    case FailAction::kAbort: return "abort";
    case FailAction::kDelay: return "delay";
  }
  return "?";
}

void arm(const std::string& name, Spec spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (spec.mode == Mode::kProbability) {
    spec.rng = g_seed ^ hash_name(name);
  }
  auto [it, inserted] = registry().insert_or_assign(name, spec);
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void load_from_env() {
  const char* env = std::getenv("PERFDMF_FAILPOINTS");
  if (!env || !*env) return;
  for (const auto& entry : split(env, ';')) {
    if (trim(entry).empty()) continue;
    arm_from_spec(std::string(trim(entry)));
  }
}

}  // namespace

void enable(const std::string& name, FailAction action, int countdown, int arg) {
  if (countdown < 1) throw InvalidArgument("failpoint countdown must be >= 1");
  Spec spec;
  spec.action = action;
  spec.mode = Mode::kOneShot;
  spec.countdown = countdown;
  spec.arg = arg;
  arm(name, spec);
}

void enable_every(const std::string& name, FailAction action, int every_n,
                  int arg) {
  if (every_n < 1) throw InvalidArgument("failpoint every-N must be >= 1");
  Spec spec;
  spec.action = action;
  spec.mode = Mode::kEveryN;
  spec.every_n = every_n;
  spec.arg = arg;
  arm(name, spec);
}

void enable_probability(const std::string& name, FailAction action, double p,
                        int arg) {
  Spec spec;
  spec.action = action;
  spec.mode = Mode::kProbability;
  spec.probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  spec.arg = arg;
  arm(name, spec);
}

void disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (registry().erase(name) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void clear_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.fetch_sub(static_cast<int>(registry().size()),
                    std::memory_order_relaxed);
  registry().clear();
}

void set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_seed = seed;
  // Re-derive streams for already-armed probability sites so that
  // "set_seed then arm" and "arm then set_seed" replay identically.
  for (auto& [name, spec] : registry()) {
    if (spec.mode == Mode::kProbability) spec.rng = seed ^ hash_name(name);
  }
}

std::vector<std::string> list_armed() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& [name, spec] : registry()) {
    std::ostringstream line;
    line << name << '=' << action_name(spec.action);
    switch (spec.mode) {
      case Mode::kOneShot:
        line << ':' << spec.countdown;
        break;
      case Mode::kEveryN:
        line << ":every=" << spec.every_n;
        break;
      case Mode::kProbability:
        line << ":p=" << spec.probability;
        break;
    }
    line << ":arg=" << spec.arg;
    out.push_back(line.str());
  }
  return out;
}

bool arm_from_spec(const std::string& entry) {
  try {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InvalidArgument("entry missing '='");
    }
    const std::string name = entry.substr(0, eq);
    const auto fields = split(entry.substr(eq + 1), ':');
    if (fields.empty() || fields[0].empty()) {
      throw InvalidArgument("entry missing action");
    }
    const FailAction action = parse_action(fields[0]);
    Mode mode = Mode::kOneShot;
    int countdown = 1;
    int every_n = 1;
    double probability = 0.0;
    int arg = 0;
    int positional = 0;  // bare ints: first is countdown, second is arg
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::string& f = fields[i];
      if (starts_with(f, "every=")) {
        mode = Mode::kEveryN;
        every_n = static_cast<int>(
            parse_int_or_throw(f.substr(6), "failpoint every-N"));
        if (every_n < 1) throw InvalidArgument("every-N must be >= 1");
      } else if (starts_with(f, "p=")) {
        mode = Mode::kProbability;
        probability = parse_double_or_throw(f.substr(2), "failpoint probability");
      } else if (starts_with(f, "arg=")) {
        arg = static_cast<int>(parse_int_or_throw(f.substr(4), "failpoint arg"));
      } else if (positional == 0) {
        countdown =
            static_cast<int>(parse_int_or_throw(f, "failpoint countdown"));
        if (countdown < 1) throw InvalidArgument("countdown must be >= 1");
        ++positional;
      } else if (positional == 1) {
        arg = static_cast<int>(parse_int_or_throw(f, "failpoint arg"));
        ++positional;
      } else {
        throw InvalidArgument("too many positional fields");
      }
    }
    switch (mode) {
      case Mode::kOneShot:
        enable(name, action, countdown, arg);
        break;
      case Mode::kEveryN:
        enable_every(name, action, every_n, arg);
        break;
      case Mode::kProbability:
        enable_probability(name, action, probability, arg);
        break;
    }
    return true;
  } catch (const Error& e) {
    log_warn() << "ignoring malformed PERFDMF_FAILPOINTS entry \"" << entry
               << "\": " << e.what();
    return false;
  }
}

std::optional<FailpointHit> hit(const char* name) {
  std::call_once(g_env_once, load_from_env);
  if (g_armed.load(std::memory_order_relaxed) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = registry().find(name);
  if (it == registry().end()) return std::nullopt;
  Spec& spec = it->second;
  switch (spec.mode) {
    case Mode::kOneShot: {
      if (--spec.countdown > 0) return std::nullopt;
      FailpointHit fired{spec.action, spec.arg};
      registry().erase(it);  // one-shot
      g_armed.fetch_sub(1, std::memory_order_relaxed);
      return fired;
    }
    case Mode::kEveryN: {
      if (++spec.counter < spec.every_n) return std::nullopt;
      spec.counter = 0;  // stays armed
      return FailpointHit{spec.action, spec.arg};
    }
    case Mode::kProbability: {
      const double coin =
          static_cast<double>(splitmix64(spec.rng) >> 11) * 0x1.0p-53;
      if (coin >= spec.probability) return std::nullopt;
      return FailpointHit{spec.action, spec.arg};
    }
  }
  return std::nullopt;
}

std::optional<FailpointHit> evaluate(const char* name) {
  auto fired = hit(name);
  if (!fired) return std::nullopt;
  switch (fired->action) {
    case FailAction::kError:
      throw IoError(std::string("injected failure at failpoint ") + name,
                    fired->arg);
    case FailAction::kAbort:
      ::_exit(kCrashExitCode);  // simulated crash: no destructors, no flush
    case FailAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired->arg));
      return std::nullopt;
    case FailAction::kShortWrite:
      return fired;  // the IO site applies the partial write, then dies
  }
  return std::nullopt;
}

}  // namespace perfdmf::util::failpoint
