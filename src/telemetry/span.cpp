#include "telemetry/span.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "util/log.h"

namespace perfdmf::telemetry {

namespace {

thread_local Span* t_current_span = nullptr;

std::atomic<std::int64_t>& threshold_micros_storage() {
  static std::atomic<std::int64_t> value{[] {
    const char* env = std::getenv("PERFDMF_SLOW_QUERY_MS");
    if (env == nullptr || *env == '\0') return std::int64_t{-1};
    char* end = nullptr;
    const double ms = std::strtod(env, &end);
    if (end == env || ms < 0.0) return std::int64_t{-1};
    return static_cast<std::int64_t>(ms * 1000.0);
  }()};
  return value;
}

Histogram& statement_histogram() {
  static Histogram& h =
      MetricsRegistry::instance().histogram("sqldb.statement.total_micros");
  return h;
}

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

/// Timestamps in the trace are relative to the first moment tracing was
/// looked at, so exported timelines start near zero.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<bool>& trace_enabled_storage() {
  static std::atomic<bool> value{[] {
    trace_epoch();  // pin the epoch before any event can be recorded
    const char* env = std::getenv("PERFDMF_TRACE");
    if (env == nullptr || *env == '\0') return false;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
           std::strcmp(env, "off") != 0;
  }()};
  return value;
}

std::uint64_t micros_after_epoch(std::chrono::steady_clock::time_point t) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      t - trace_epoch())
                      .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

/// Small stable per-thread ordinal for the exported `tid` field (raw
/// thread ids are unwieldy 64-bit values in the trace viewer).
std::uint32_t trace_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::atomic<std::uint64_t> g_next_span_id{1};

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kParse: return "parse";
    case Phase::kPlan: return "plan";
    case Phase::kAdmission: return "admission";
    case Phase::kLockWait: return "lock_wait";
    case Phase::kExecute: return "execute";
    case Phase::kFsync: return "fsync";
  }
  return "?";
}

double slow_query_threshold_ms() {
  const std::int64_t us =
      threshold_micros_storage().load(std::memory_order_relaxed);
  return us < 0 ? -1.0 : static_cast<double>(us) / 1000.0;
}

void set_slow_query_threshold_ms(double ms) {
  threshold_micros_storage().store(
      ms < 0.0 ? -1 : static_cast<std::int64_t>(ms * 1000.0),
      std::memory_order_relaxed);
}

// -------------------------------------------------------------- TraceRing

TraceRing& TraceRing::instance() {
  static TraceRing* ring = new TraceRing();  // never destroyed
  return *ring;
}

void TraceRing::push(QueryTrace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace.id = next_id_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
    return;
  }
  // Full: overwrite the oldest and rotate it to the back so ring_ stays
  // in chronological order.
  ring_.front() = std::move(trace);
  std::rotate(ring_.begin(), ring_.begin() + 1, ring_.end());
}

std::vector<QueryTrace> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t TraceRing::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceRing::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, n);
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(ring_.size() - capacity_));
  }
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

// ----------------------------------------------------------- TraceBuffer

bool trace_enabled() {
  return trace_enabled_storage().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  trace_enabled_storage().store(on, std::memory_order_relaxed);
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer* buffer = new TraceBuffer();  // never destroyed
  return *buffer;
}

void TraceBuffer::push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_.front() = std::move(event);
  std::rotate(ring_.begin(), ring_.begin() + 1, ring_.end());
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TraceBuffer::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, n);
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<std::ptrdiff_t>(ring_.size() - capacity_));
  }
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

void trace_emit(std::string name, const char* cat,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                std::uint64_t parent) {
  if (!enabled() || !trace_enabled()) return;
  if (parent == 0) {
    Span* span = Span::current();
    if (span != nullptr && span->trace_armed()) parent = span->span_id();
  }
  TraceEvent event;
  event.parent = parent;
  event.name = std::move(name);
  event.cat = cat;
  event.ts_us = micros_after_epoch(start);
  event.dur_us = end > start
                     ? static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::microseconds>(
                               end - start)
                               .count())
                     : 0;
  event.tid = trace_thread_ordinal();
  TraceBuffer::instance().push(std::move(event));
}

// ------------------------------------------------------------------ Span

Span* Span::current() { return t_current_span; }

Span::Span(std::string_view sql) : sql_(sql) {
  if (!enabled()) return;
  active_ = true;
  threshold_micros_ = threshold_micros_storage().load(std::memory_order_relaxed);
  slow_armed_ = threshold_micros_ >= 0;
  trace_armed_ = trace_enabled();
  start_ = std::chrono::steady_clock::now();
  if (slow_armed_) wall_start_ = std::chrono::system_clock::now();
  prev_ = t_current_span;
  if (trace_armed_) {
    span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    if (prev_ != nullptr && prev_->trace_armed()) parent_id_ = prev_->span_id();
  }
  t_current_span = this;
}

Span::~Span() {
  if (!active_) return;
  t_current_span = prev_;
  const auto end = std::chrono::steady_clock::now();
  const auto total_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  statement_histogram().record(total_us);
  // Execute is whatever the explicitly timed phases don't account for.
  std::uint64_t attributed = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (i != static_cast<std::size_t>(Phase::kExecute)) {
      attributed += phase_micros_[i];
    }
  }
  phase_micros_[static_cast<std::size_t>(Phase::kExecute)] =
      total_us > attributed ? total_us - attributed : 0;

  if (trace_armed_ && trace_enabled()) {
    TraceEvent event;
    event.id = span_id_;
    event.parent = parent_id_;
    constexpr std::size_t kNameMax = 120;
    event.name = std::string(sql_.substr(0, kNameMax));
    if (sql_.size() > kNameMax) event.name += "...";
    event.cat = "statement";
    event.ts_us = micros_after_epoch(start_);
    event.dur_us = total_us;
    event.tid = trace_thread_ordinal();
    TraceBuffer::instance().push(std::move(event));
  }

  const bool killed = std::strcmp(outcome_, "completed") != 0;
  const bool slow = slow_armed_ &&
                    total_us >= static_cast<std::uint64_t>(threshold_micros_);
  if (!killed && !slow && !forced_) return;
  if (!slow_armed_) {
    // Killed (or force-traced) with the slow log disarmed: the wall start
    // was never captured eagerly, so reconstruct it from the duration.
    wall_start_ = std::chrono::system_clock::now() -
                  std::chrono::microseconds(total_us);
  }

  QueryTrace trace;
  trace.started_at = [this] {
    const std::time_t secs = std::chrono::system_clock::to_time_t(wall_start_);
    const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                            wall_start_.time_since_epoch())
                            .count() %
                        1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(millis));
    return std::string(buf);
  }();
  trace.thread = util::current_thread_id();
  trace.sql = std::string(sql_);
  trace.plan = std::move(plan_);
  trace.total_ms = static_cast<double>(total_us) / 1000.0;
  trace.outcome = outcome_;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    trace.phase_ms[i] = static_cast<double>(phase_micros_[i]) / 1000.0;
  }

  // Force-traced statements (EXPLAIN ANALYZE) that completed normally and
  // under the threshold are recorded silently — they are deliberate
  // instrumentation, not incidents worth a warning line.
  if (killed || slow) {
    std::string line;
    if (killed) {
      line = "query ";
      line += outcome_;
      line += " (";
      line += format_ms(trace.total_ms);
      line += " ms): ";
    } else {
      line = "slow query (";
      line += format_ms(trace.total_ms);
      line += " ms >= ";
      line += format_ms(static_cast<double>(threshold_micros_) / 1000.0);
      line += " ms): ";
    }
    line.append(sql_.data(), sql_.size());
    line += " |";
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      line += ' ';
      line += phase_name(static_cast<Phase>(i));
      line += '=';
      line += format_ms(trace.phase_ms[i]);
      line += "ms";
    }
    if (!trace.plan.empty()) {
      std::string flat = trace.plan;
      std::replace(flat.begin(), flat.end(), '\n', ';');
      line += " | plan: ";
      line += flat;
    }
    util::log_message(util::LogLevel::kWarn, line);
  }

  TraceRing::instance().push(std::move(trace));
}

// ------------------------------------------------------------- PhaseTimer

PhaseTimer::PhaseTimer(Phase phase, Histogram* histogram)
    : phase_(phase), histogram_(histogram), span_(Span::current()) {
  if (span_ != nullptr && !span_->armed()) span_ = nullptr;
  if (!enabled()) histogram_ = nullptr;
  if (span_ != nullptr || histogram_ != nullptr) {
    start_ = std::chrono::steady_clock::now();
  }
}

PhaseTimer::~PhaseTimer() {
  if (span_ == nullptr && histogram_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const auto micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  if (span_ != nullptr) {
    span_->add_phase_micros(phase_, micros);
    if (span_->trace_armed()) {
      trace_emit(phase_name(phase_), "phase", start_, end, span_->span_id());
    }
  }
  if (histogram_ != nullptr) histogram_->record(micros);
}

// ----------------------------------------------------------- JSON export

std::string traces_to_json() {
  const auto traces = TraceRing::instance().snapshot();
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const auto& t : traces) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(t.id);
    out += ",\"started_at\":\"" + json_escape(t.started_at) + '"';
    out += ",\"thread\":\"" + json_escape(t.thread) + '"';
    out += ",\"sql\":\"" + json_escape(t.sql) + '"';
    out += ",\"plan\":\"" + json_escape(t.plan) + '"';
    out += ",\"outcome\":\"" + json_escape(t.outcome) + '"';
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f", t.total_ms);
    out += ",\"total_ms\":";
    out += buf;
    out += ",\"phases\":{";
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (i != 0) out += ',';
      out += '"';
      out += phase_name(static_cast<Phase>(i));
      out += "\":";
      std::snprintf(buf, sizeof buf, "%.3f", t.phase_ms[i]);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string traces_to_chrome_json() {
  const auto events = TraceBuffer::instance().snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) + '"';
    out += ",\"cat\":\"" + json_escape(e.cat) + '"';
    out += ",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(e.ts_us);
    out += ",\"dur\":" + std::to_string(e.dur_us);
    out += ",\"pid\":1";
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"args\":{\"span_id\":" + std::to_string(e.id);
    out += ",\"parent_id\":" + std::to_string(e.parent) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace perfdmf::telemetry
