// dynaprof importer (paper §3.1; Mucci's dynamic instrumentation
// profiler). dynaprof's papiprobe/wallclockprobe output one text report
// per process/thread listing, for every instrumented function, the
// number of calls and the inclusive/exclusive totals of the probed
// metric.
//
// Report grammar accepted here (after the dynaprof banner):
//   DynaProf <version> Output
//   Probe: <probe name>
//   Metric: <metric name>
//   Process: <rank>  [Thread: <t>]
//
//   Function Summary
//   Name            Calls    Excl.       Incl.
//   <name>          <n>      <excl>      <incl>
//
// Values are in the probe's native unit (microseconds for wallclock,
// counts for PAPI probes); they are stored unconverted.
#pragma once

#include <filesystem>

#include "io/data_source.h"

namespace perfdmf::io {

class DynaprofDataSource : public DataSource {
 public:
  explicit DynaprofDataSource(std::filesystem::path file) : file_(std::move(file)) {}

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kDynaprof; }

  static profile::TrialData parse(const std::string& content);
  /// Merge one report into an existing trial (multi-process runs write
  /// one file per process).
  static void parse_into(const std::string& content, profile::TrialData& trial);

 private:
  std::filesystem::path file_;
};

/// Render one process's report (workload generator support).
std::string render_dynaprof_report(const profile::TrialData& trial,
                                   std::size_t thread_index,
                                   const std::string& metric_name);

}  // namespace perfdmf::io
