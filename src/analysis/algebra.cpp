#include "analysis/algebra.h"

#include <map>
#include <tuple>

#include "util/error.h"

namespace perfdmf::analysis {

namespace {

/// Copy a source point into `out` at the aligned indexes.
void put_point(profile::TrialData& out, const profile::TrialData& source,
               std::size_t e, std::size_t t, std::size_t m,
               const profile::IntervalDataPoint& p) {
  const std::size_t event =
      out.intern_event(source.events()[e].name, source.events()[e].group);
  const std::size_t thread = out.intern_thread(source.threads()[t]);
  const std::size_t metric = out.intern_metric(source.metrics()[m].name);
  out.set_interval_data(event, thread, metric, p);
}

}  // namespace

profile::TrialData trial_combine(const profile::TrialData& a,
                                 const profile::TrialData& b,
                                 const BinaryPointOp& op, bool keep_only_a,
                                 bool keep_only_b) {
  profile::TrialData out;
  out.trial().name = a.trial().name + " (+) " + b.trial().name;

  // Visit a's points; combine where b has the aligned point.
  a.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                          const profile::IntervalDataPoint& pa) {
    const auto be = b.find_event(a.events()[e].name);
    const auto bt = b.find_thread(a.threads()[t]);
    const auto bm = b.find_metric(a.metrics()[m].name);
    const profile::IntervalDataPoint* pb =
        (be && bt && bm) ? b.interval_data(*be, *bt, *bm) : nullptr;
    if (pb != nullptr) {
      put_point(out, a, e, t, m, op(pa, *pb));
    } else if (keep_only_a) {
      static const profile::IntervalDataPoint kZero{};
      put_point(out, a, e, t, m, op(pa, kZero));
    }
  });
  // Visit b's points not aligned with a.
  if (keep_only_b) {
    b.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                            const profile::IntervalDataPoint& pb) {
      const auto ae = a.find_event(b.events()[e].name);
      const auto at = a.find_thread(b.threads()[t]);
      const auto am = a.find_metric(b.metrics()[m].name);
      if (ae && at && am && a.interval_data(*ae, *at, *am) != nullptr) {
        return;  // already combined
      }
      static const profile::IntervalDataPoint kZero{};
      put_point(out, b, e, t, m, op(kZero, pb));
    });
  }
  out.infer_dimensions();
  out.recompute_derived_fields();
  return out;
}

profile::TrialData trial_difference(const profile::TrialData& a,
                                    const profile::TrialData& b) {
  profile::TrialData out = trial_combine(
      a, b,
      [](const profile::IntervalDataPoint& pa,
         const profile::IntervalDataPoint& pb) {
        profile::IntervalDataPoint diff;
        diff.inclusive = pa.inclusive - pb.inclusive;
        diff.exclusive = pa.exclusive - pb.exclusive;
        diff.num_calls = pa.num_calls - pb.num_calls;
        diff.num_subrs = pa.num_subrs - pb.num_subrs;
        return diff;
      },
      /*keep_only_a=*/true, /*keep_only_b=*/true);
  out.trial().name = a.trial().name + " - " + b.trial().name;
  // Percentages of a difference are not meaningful as computed by the
  // generic pass; zero them out rather than publish nonsense.
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t,
                         profile::IntervalDataPoint>> fixed;
  out.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                            const profile::IntervalDataPoint& p) {
    profile::IntervalDataPoint q = p;
    q.inclusive_pct = 0.0;
    q.exclusive_pct = 0.0;
    q.inclusive_per_call = 0.0;
    fixed.emplace_back(e, t, m, q);
  });
  for (const auto& [e, t, m, q] : fixed) out.set_interval_data(e, t, m, q);
  return out;
}

profile::TrialData trial_merge(const profile::TrialData& a,
                               const profile::TrialData& b) {
  profile::TrialData out = trial_combine(
      a, b,
      [](const profile::IntervalDataPoint& pa,
         const profile::IntervalDataPoint& pb) {
        profile::IntervalDataPoint sum;
        sum.inclusive = pa.inclusive + pb.inclusive;
        sum.exclusive = pa.exclusive + pb.exclusive;
        sum.num_calls = pa.num_calls + pb.num_calls;
        sum.num_subrs = pa.num_subrs + pb.num_subrs;
        return sum;
      },
      /*keep_only_a=*/true, /*keep_only_b=*/true);
  out.trial().name = a.trial().name + " + " + b.trial().name;
  return out;
}

profile::TrialData trial_mean(
    const std::vector<const profile::TrialData*>& trials) {
  if (trials.empty()) throw InvalidArgument("trial_mean: no trials given");
  profile::TrialData out;
  out.trial().name = "mean of " + std::to_string(trials.size()) + " trials";

  // Accumulate sums and counts per aligned point.
  struct Accumulated {
    profile::IntervalDataPoint sum;
    std::size_t count = 0;
  };
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, Accumulated> acc;
  for (const profile::TrialData* trial : trials) {
    trial->for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                                 const profile::IntervalDataPoint& p) {
      const std::size_t event = out.intern_event(trial->events()[e].name,
                                                 trial->events()[e].group);
      const std::size_t thread = out.intern_thread(trial->threads()[t]);
      const std::size_t metric = out.intern_metric(trial->metrics()[m].name);
      Accumulated& entry = acc[{event, thread, metric}];
      entry.sum.inclusive += p.inclusive;
      entry.sum.exclusive += p.exclusive;
      entry.sum.num_calls += p.num_calls;
      entry.sum.num_subrs += p.num_subrs;
      ++entry.count;
    });
  }
  for (const auto& [key, entry] : acc) {
    const auto& [event, thread, metric] = key;
    profile::IntervalDataPoint mean;
    const double n = static_cast<double>(entry.count);
    mean.inclusive = entry.sum.inclusive / n;
    mean.exclusive = entry.sum.exclusive / n;
    mean.num_calls = entry.sum.num_calls / n;
    mean.num_subrs = entry.sum.num_subrs / n;
    out.set_interval_data(event, thread, metric, mean);
  }
  out.infer_dimensions();
  out.recompute_derived_fields();
  return out;
}

StructuralDiff structural_diff(const profile::TrialData& a,
                               const profile::TrialData& b) {
  StructuralDiff out;
  for (const auto& event : a.events()) {
    if (!b.find_event(event.name)) out.events_only_in_a.push_back(event.name);
  }
  for (const auto& event : b.events()) {
    if (!a.find_event(event.name)) out.events_only_in_b.push_back(event.name);
  }
  for (const auto& metric : a.metrics()) {
    if (!b.find_metric(metric.name)) out.metrics_only_in_a.push_back(metric.name);
  }
  for (const auto& metric : b.metrics()) {
    if (!a.find_metric(metric.name)) out.metrics_only_in_b.push_back(metric.name);
  }
  for (const auto& thread : a.threads()) {
    if (!b.find_thread(thread)) ++out.threads_only_in_a;
  }
  for (const auto& thread : b.threads()) {
    if (!a.find_thread(thread)) ++out.threads_only_in_b;
  }
  return out;
}

}  // namespace perfdmf::analysis
