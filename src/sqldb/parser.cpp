#include "sqldb/parser.h"

#include "sqldb/lexer.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

ExprPtr make_literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr make_column(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column_name = std::move(name);
  return e;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view sql) : sql_(sql), tokens_(tokenize(sql)) {}

  Statement parse() {
    Statement stmt = parse_statement_inner();
    accept_op(";");
    if (!at_end()) fail("trailing tokens after statement");
    stmt.placeholder_count = placeholder_count_;
    return stmt;
  }

 private:
  // ----- token helpers ---------------------------------------------------
  const Token& cur() const { return tokens_[pos_]; }
  bool at_end() const { return cur().type == TokenType::kEnd; }
  void advance() { if (!at_end()) ++pos_; }

  [[noreturn]] void fail(const std::string& message) const {
    throw perfdmf::ParseError("SQL: " + message + " (near offset " +
                              std::to_string(cur().offset) + ")");
  }

  bool peek_keyword(std::string_view kw) const {
    return cur().type == TokenType::kIdentifier && util::iequals(cur().text, kw);
  }

  bool accept_keyword(std::string_view kw) {
    if (peek_keyword(kw)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw)) fail("expected keyword " + std::string(kw));
  }

  bool peek_op(std::string_view op) const {
    return cur().type == TokenType::kOperator && cur().text == op;
  }

  bool accept_op(std::string_view op) {
    if (peek_op(op)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_op(std::string_view op) {
    if (!accept_op(op)) fail("expected '" + std::string(op) + "'");
  }

  std::string expect_identifier(std::string_view what) {
    if (cur().type != TokenType::kIdentifier) {
      fail("expected " + std::string(what));
    }
    std::string name = cur().text;
    advance();
    return name;
  }

  // ----- statements ------------------------------------------------------
  Statement parse_statement_inner() {
    Statement stmt;
    if (accept_keyword("SELECT")) {
      stmt.kind = StatementKind::kSelect;
      stmt.select = parse_select_body();
    } else if (accept_keyword("EXPLAIN")) {
      stmt.analyze = accept_keyword("ANALYZE");
      expect_keyword("SELECT");
      stmt.kind = StatementKind::kExplain;
      stmt.select = parse_select_body();
    } else if (accept_keyword("INSERT")) {
      stmt.kind = StatementKind::kInsert;
      stmt.insert = parse_insert();
    } else if (accept_keyword("UPDATE")) {
      stmt.kind = StatementKind::kUpdate;
      stmt.update = parse_update();
    } else if (accept_keyword("DELETE")) {
      stmt.kind = StatementKind::kDelete;
      stmt.del = parse_delete();
    } else if (accept_keyword("CREATE")) {
      if (accept_keyword("TABLE")) {
        stmt.kind = StatementKind::kCreateTable;
        stmt.create_table = parse_create_table();
      } else if (accept_keyword("UNIQUE")) {
        expect_keyword("INDEX");
        stmt.kind = StatementKind::kCreateIndex;
        stmt.create_index = parse_create_index(/*unique=*/true);
      } else if (accept_keyword("INDEX")) {
        stmt.kind = StatementKind::kCreateIndex;
        stmt.create_index = parse_create_index(/*unique=*/false);
      } else if (accept_keyword("VIEW")) {
        stmt.kind = StatementKind::kCreateView;
        stmt.create_view.name = expect_identifier("view name");
        expect_keyword("AS");
        // Capture the raw SELECT text from here to the end, then parse it
        // to validate (and to consume the tokens).
        const std::size_t select_begin = cur().offset;
        expect_keyword("SELECT");
        SelectStatement validated = parse_select_body();
        (void)validated;
        if (placeholder_count_ > 0) {
          fail("views cannot contain '?' placeholders");
        }
        std::size_t select_end = sql_.size();
        if (peek_op(";")) select_end = cur().offset;
        stmt.create_view.select_sql =
            std::string(sql_.substr(select_begin, select_end - select_begin));
      } else {
        fail("expected TABLE, INDEX or VIEW after CREATE");
      }
    } else if (accept_keyword("DROP")) {
      if (accept_keyword("VIEW")) {
        stmt.kind = StatementKind::kDropView;
        if (accept_keyword("IF")) {
          expect_keyword("EXISTS");
          stmt.drop_view.if_exists = true;
        }
        stmt.drop_view.name = expect_identifier("view name");
      } else {
        expect_keyword("TABLE");
        stmt.kind = StatementKind::kDropTable;
        if (accept_keyword("IF")) {
          expect_keyword("EXISTS");
          stmt.drop_table.if_exists = true;
        }
        stmt.drop_table.table = expect_identifier("table name");
      }
    } else if (accept_keyword("ALTER")) {
      expect_keyword("TABLE");
      std::string table = expect_identifier("table name");
      if (accept_keyword("ADD")) {
        accept_keyword("COLUMN");
        stmt.kind = StatementKind::kAlterAddColumn;
        stmt.alter.table = std::move(table);
        stmt.alter.column = parse_column_def();
      } else if (accept_keyword("DROP")) {
        accept_keyword("COLUMN");
        stmt.kind = StatementKind::kAlterDropColumn;
        stmt.alter.table = std::move(table);
        stmt.alter.column_name = expect_identifier("column name");
      } else {
        fail("expected ADD or DROP after ALTER TABLE <name>");
      }
    } else if (accept_keyword("BEGIN")) {
      accept_keyword("TRANSACTION");
      stmt.kind = StatementKind::kBegin;
    } else if (accept_keyword("COMMIT")) {
      stmt.kind = StatementKind::kCommit;
    } else if (accept_keyword("ROLLBACK")) {
      stmt.kind = StatementKind::kRollback;
    } else {
      fail("unknown statement");
    }
    return stmt;
  }

  ValueType parse_type() {
    std::string name = util::to_upper(expect_identifier("type name"));
    if (name == "INT" || name == "INTEGER" || name == "BIGINT" || name == "SMALLINT") {
      maybe_skip_size_suffix();
      return ValueType::kInt;
    }
    if (name == "REAL" || name == "DOUBLE" || name == "FLOAT" || name == "NUMERIC" ||
        name == "DECIMAL") {
      if (name == "DOUBLE") accept_keyword("PRECISION");
      // NUMERIC(p,s) / VARCHAR(n) style size suffixes are parsed and ignored.
      maybe_skip_size_suffix();
      return ValueType::kReal;
    }
    if (name == "TEXT" || name == "VARCHAR" || name == "CHAR" || name == "CLOB" ||
        name == "STRING") {
      maybe_skip_size_suffix();
      return ValueType::kText;
    }
    fail("unknown column type " + name);
  }

  void maybe_skip_size_suffix() {
    if (accept_op("(")) {
      while (!peek_op(")") && !at_end()) advance();
      expect_op(")");
    }
  }

  ColumnDef parse_column_def() {
    ColumnDef column;
    column.name = expect_identifier("column name");
    column.type = parse_type();
    for (;;) {
      if (accept_keyword("NOT")) {
        expect_keyword("NULL");
        column.not_null = true;
      } else if (accept_keyword("PRIMARY")) {
        expect_keyword("KEY");
        column.primary_key = true;
        if (column.type == ValueType::kInt) column.auto_increment = true;
      } else if (accept_keyword("AUTOINCREMENT") || accept_keyword("AUTO_INCREMENT")) {
        column.auto_increment = true;
      } else if (accept_keyword("DEFAULT")) {
        column.default_value = parse_literal_value();
      } else {
        break;
      }
    }
    return column;
  }

  Value parse_literal_value() {
    if (cur().type == TokenType::kInteger) {
      Value v{cur().int_value};
      advance();
      return v;
    }
    if (cur().type == TokenType::kReal) {
      Value v{cur().real_value};
      advance();
      return v;
    }
    if (cur().type == TokenType::kString) {
      Value v{cur().text};
      advance();
      return v;
    }
    if (accept_keyword("NULL")) return Value();
    bool negative = false;
    if (accept_op("-")) negative = true;
    if (negative && cur().type == TokenType::kInteger) {
      Value v{-cur().int_value};
      advance();
      return v;
    }
    if (negative && cur().type == TokenType::kReal) {
      Value v{-cur().real_value};
      advance();
      return v;
    }
    fail("expected a literal value");
  }

  CreateTableStatement parse_create_table() {
    CreateTableStatement out;
    if (accept_keyword("IF")) {
      expect_keyword("NOT");
      expect_keyword("EXISTS");
      out.if_not_exists = true;
    }
    out.schema = TableSchema(expect_identifier("table name"));
    expect_op("(");
    for (;;) {
      if (accept_keyword("FOREIGN")) {
        expect_keyword("KEY");
        expect_op("(");
        ForeignKeyDef fk;
        fk.column = expect_identifier("column name");
        expect_op(")");
        expect_keyword("REFERENCES");
        fk.parent_table = expect_identifier("table name");
        expect_op("(");
        fk.parent_column = expect_identifier("column name");
        expect_op(")");
        out.schema.add_foreign_key(std::move(fk));
      } else {
        out.schema.add_column(parse_column_def());
      }
      if (accept_op(",")) continue;
      expect_op(")");
      break;
    }
    return out;
  }

  CreateIndexStatement parse_create_index(bool unique) {
    CreateIndexStatement out;
    out.unique = unique;
    out.name = expect_identifier("index name");
    expect_keyword("ON");
    out.table = expect_identifier("table name");
    expect_op("(");
    out.column = expect_identifier("column name");
    expect_op(")");
    return out;
  }

  InsertStatement parse_insert() {
    expect_keyword("INTO");
    InsertStatement out;
    out.table = expect_identifier("table name");
    if (accept_op("(")) {
      for (;;) {
        out.columns.push_back(expect_identifier("column name"));
        if (accept_op(",")) continue;
        expect_op(")");
        break;
      }
    }
    if (accept_keyword("SELECT")) {
      out.select = std::make_unique<SelectStatement>(parse_select_body());
      return out;
    }
    expect_keyword("VALUES");
    for (;;) {
      expect_op("(");
      std::vector<ExprPtr> row;
      for (;;) {
        row.push_back(parse_expr());
        if (accept_op(",")) continue;
        expect_op(")");
        break;
      }
      out.rows.push_back(std::move(row));
      if (!accept_op(",")) break;
    }
    return out;
  }

  UpdateStatement parse_update() {
    UpdateStatement out;
    out.table = expect_identifier("table name");
    expect_keyword("SET");
    for (;;) {
      std::string column = expect_identifier("column name");
      expect_op("=");
      out.assignments.emplace_back(std::move(column), parse_expr());
      if (!accept_op(",")) break;
    }
    if (accept_keyword("WHERE")) out.where = parse_expr();
    return out;
  }

  DeleteStatement parse_delete() {
    expect_keyword("FROM");
    DeleteStatement out;
    out.table = expect_identifier("table name");
    if (accept_keyword("WHERE")) out.where = parse_expr();
    return out;
  }

  TableRef parse_table_ref() {
    TableRef ref;
    ref.table = expect_identifier("table name");
    if (accept_keyword("AS")) {
      ref.alias = expect_identifier("alias");
    } else if (cur().type == TokenType::kIdentifier && !peek_reserved()) {
      ref.alias = cur().text;
      advance();
    }
    if (ref.alias.empty()) ref.alias = ref.table;
    return ref;
  }

  /// Keywords that terminate a table reference (so a bare identifier after
  /// a table name is an alias only if it is not one of these).
  bool peek_reserved() const {
    static const char* kReserved[] = {
        "WHERE", "GROUP",  "HAVING", "ORDER", "LIMIT",  "OFFSET", "JOIN",
        "INNER", "LEFT",   "ON",     "AS",    "UNION",  "SET",    "VALUES",
    };
    for (const char* kw : kReserved) {
      if (util::iequals(cur().text, kw)) return true;
    }
    return false;
  }

  SelectStatement parse_select_body() {
    SelectStatement out;
    if (accept_keyword("DISTINCT")) out.distinct = true;
    for (;;) {
      SelectItem item;
      if (accept_op("*")) {
        item.expr = nullptr;
      } else {
        item.expr = parse_expr();
        if (accept_keyword("AS")) {
          item.alias = expect_identifier("alias");
        } else if (cur().type == TokenType::kIdentifier && !peek_reserved() &&
                   !peek_keyword("FROM")) {
          item.alias = cur().text;
          advance();
        }
      }
      out.items.push_back(std::move(item));
      if (!accept_op(",")) break;
    }
    if (accept_keyword("FROM")) {
      out.from = parse_table_ref();
      for (;;) {
        bool left_outer = false;
        if (accept_keyword("LEFT")) {
          accept_keyword("OUTER");
          expect_keyword("JOIN");
          left_outer = true;
        } else if (accept_keyword("INNER")) {
          expect_keyword("JOIN");
        } else if (!accept_keyword("JOIN")) {
          break;
        }
        JoinClause join;
        join.left_outer = left_outer;
        join.table = parse_table_ref();
        expect_keyword("ON");
        join.on = parse_expr();
        out.joins.push_back(std::move(join));
      }
    }
    if (accept_keyword("WHERE")) out.where = parse_expr();
    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      for (;;) {
        out.group_by.push_back(parse_expr());
        if (!accept_op(",")) break;
      }
    }
    if (accept_keyword("HAVING")) out.having = parse_expr();
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      for (;;) {
        OrderItem item;
        item.expr = parse_expr();
        if (accept_keyword("DESC")) item.descending = true;
        else accept_keyword("ASC");
        out.order_by.push_back(std::move(item));
        if (!accept_op(",")) break;
      }
    }
    if (accept_keyword("LIMIT")) {
      out.limit = parse_limit_value("LIMIT");
      if (accept_keyword("OFFSET")) {
        out.offset = parse_limit_value("OFFSET");
      }
    }
    return out;
  }

  /// LIMIT/OFFSET operand: an integer literal (sign included, so that a
  /// negative value reaches the executor and is rejected there with a
  /// proper DbError) or a '?' placeholder.
  ExprPtr parse_limit_value(const std::string& clause) {
    if (accept_op("?")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kPlaceholder;
      node->placeholder_index = placeholder_count_++;
      return node;
    }
    const bool negative = accept_op("-");
    if (cur().type != TokenType::kInteger) {
      fail(clause + " expects an integer or '?'");
    }
    std::int64_t v = cur().int_value;
    advance();
    return make_literal(Value(negative ? -v : v));
  }

  // ----- expressions (precedence climbing) --------------------------------
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr left = parse_and();
    while (accept_keyword("OR")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = "OR";
      node->children.push_back(std::move(left));
      node->children.push_back(parse_and());
      left = std::move(node);
    }
    return left;
  }

  ExprPtr parse_and() {
    ExprPtr left = parse_not();
    while (accept_keyword("AND")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = "AND";
      node->children.push_back(std::move(left));
      node->children.push_back(parse_not());
      left = std::move(node);
    }
    return left;
  }

  ExprPtr parse_not() {
    if (accept_keyword("NOT")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->op = "NOT";
      node->children.push_back(parse_not());
      return node;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr left = parse_additive();
    // IS [NOT] NULL
    if (accept_keyword("IS")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kIsNull;
      node->negated = accept_keyword("NOT");
      expect_keyword("NULL");
      node->children.push_back(std::move(left));
      return node;
    }
    bool negated = false;
    if (peek_keyword("NOT")) {
      // lookahead for NOT IN / NOT BETWEEN / NOT LIKE
      const Token& next = tokens_[pos_ + 1];
      if (next.type == TokenType::kIdentifier &&
          (util::iequals(next.text, "IN") || util::iequals(next.text, "BETWEEN") ||
           util::iequals(next.text, "LIKE"))) {
        advance();
        negated = true;
      }
    }
    if (accept_keyword("IN")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kInList;
      node->negated = negated;
      node->children.push_back(std::move(left));
      expect_op("(");
      for (;;) {
        node->children.push_back(parse_expr());
        if (accept_op(",")) continue;
        expect_op(")");
        break;
      }
      return node;
    }
    if (accept_keyword("BETWEEN")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBetween;
      node->negated = negated;
      node->children.push_back(std::move(left));
      node->children.push_back(parse_additive());
      expect_keyword("AND");
      node->children.push_back(parse_additive());
      return node;
    }
    if (accept_keyword("LIKE")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = "LIKE";
      node->negated = negated;
      node->children.push_back(std::move(left));
      node->children.push_back(parse_additive());
      return node;
    }
    static const char* kCompareOps[] = {"=", "!=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kCompareOps) {
      if (accept_op(op)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kBinary;
        node->op = (std::string(op) == "<>") ? "!=" : op;
        node->children.push_back(std::move(left));
        node->children.push_back(parse_additive());
        return node;
      }
    }
    return left;
  }

  ExprPtr parse_additive() {
    ExprPtr left = parse_multiplicative();
    for (;;) {
      std::string op;
      if (accept_op("+")) op = "+";
      else if (accept_op("-")) op = "-";
      else if (accept_op("||")) op = "||";
      else break;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->children.push_back(std::move(left));
      node->children.push_back(parse_multiplicative());
      left = std::move(node);
    }
    return left;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr left = parse_unary();
    for (;;) {
      std::string op;
      if (accept_op("*")) op = "*";
      else if (accept_op("/")) op = "/";
      else if (accept_op("%")) op = "%";
      else break;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->children.push_back(std::move(left));
      node->children.push_back(parse_unary());
      left = std::move(node);
    }
    return left;
  }

  ExprPtr parse_unary() {
    if (accept_op("-")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->op = "-";
      node->children.push_back(parse_unary());
      return node;
    }
    if (accept_op("+")) return parse_unary();
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (accept_op("(")) {
      ExprPtr inner = parse_expr();
      expect_op(")");
      return inner;
    }
    if (accept_op("?")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kPlaceholder;
      node->placeholder_index = placeholder_count_++;
      return node;
    }
    if (cur().type == TokenType::kInteger) {
      auto node = make_literal(Value(cur().int_value));
      advance();
      return node;
    }
    if (cur().type == TokenType::kReal) {
      auto node = make_literal(Value(cur().real_value));
      advance();
      return node;
    }
    if (cur().type == TokenType::kString) {
      auto node = make_literal(Value(cur().text));
      advance();
      return node;
    }
    if (accept_keyword("NULL")) return make_literal(Value());
    if (accept_keyword("TRUE")) return make_literal(Value(std::int64_t{1}));
    if (accept_keyword("FALSE")) return make_literal(Value(std::int64_t{0}));

    if (cur().type != TokenType::kIdentifier) fail("expected an expression");
    // Reserved words cannot start an expression — this catches malformed
    // statements like "SELECT FROM t" early instead of treating FROM as a
    // column name.
    static const char* kNotAColumn[] = {"FROM",  "WHERE", "GROUP", "HAVING",
                                        "ORDER", "LIMIT", "SELECT", "JOIN",
                                        "ON",    "SET",   "VALUES"};
    for (const char* kw : kNotAColumn) {
      if (util::iequals(cur().text, kw)) {
        fail("unexpected keyword " + cur().text + " in expression");
      }
    }
    std::string first = cur().text;
    advance();

    if (accept_op("(")) {  // function call
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kFunction;
      node->function_name = util::to_upper(first);
      if (accept_keyword("DISTINCT")) node->distinct = true;
      if (accept_op("*")) {
        auto star = std::make_unique<Expr>();
        star->kind = ExprKind::kStar;
        node->children.push_back(std::move(star));
        expect_op(")");
        return node;
      }
      if (!accept_op(")")) {
        for (;;) {
          node->children.push_back(parse_expr());
          if (accept_op(",")) continue;
          expect_op(")");
          break;
        }
      }
      return node;
    }

    if (accept_op(".")) {  // table.column
      std::string column = expect_identifier("column name");
      return make_column(std::move(first), std::move(column));
    }
    return make_column("", std::move(first));
  }

  std::string_view sql_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t placeholder_count_ = 0;
};

}  // namespace

Statement parse_statement(std::string_view sql) { return Parser(sql).parse(); }

}  // namespace perfdmf::sqldb
