// Tests for the synthetic workload generators: determinism, internal
// consistency, planted structure.
#include <gtest/gtest.h>

#include <cmath>

#include "io/synth.h"
#include "util/error.h"

using namespace perfdmf;
using namespace perfdmf::io::synth;

TEST(SynthTrial, ShapeMatchesSpec) {
  TrialSpec spec;
  spec.nodes = 4;
  spec.contexts_per_node = 2;
  spec.threads_per_context = 3;
  spec.event_count = 10;
  spec.extra_metrics = {"PAPI_L1_DCM"};
  spec.atomic_event_count = 2;
  auto trial = generate_trial(spec);

  EXPECT_EQ(trial.threads().size(), 24u);
  EXPECT_EQ(trial.trial().node_count, 4);
  EXPECT_EQ(trial.trial().contexts_per_node, 2);
  EXPECT_EQ(trial.trial().threads_per_context, 3);
  EXPECT_EQ(trial.events().size(), 10u);
  EXPECT_EQ(trial.metrics().size(), 2u);
  EXPECT_EQ(trial.atomic_events().size(), 2u);
  // Full cross product of points.
  EXPECT_EQ(trial.interval_point_count(), 10u * 24u * 2u);
  EXPECT_EQ(trial.atomic_point_count(), 2u * 24u);
}

TEST(SynthTrial, DeterministicForSeed) {
  TrialSpec spec;
  spec.seed = 77;
  auto a = generate_trial(spec);
  auto b = generate_trial(spec);
  bool equal = true;
  a.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                          const profile::IntervalDataPoint& p) {
    const auto* q = b.interval_data(e, t, m);
    if (q == nullptr || q->exclusive != p.exclusive) equal = false;
  });
  EXPECT_TRUE(equal);
}

TEST(SynthTrial, DifferentSeedsDiffer) {
  TrialSpec spec;
  spec.seed = 1;
  auto a = generate_trial(spec);
  spec.seed = 2;
  auto b = generate_trial(spec);
  const auto* pa = a.interval_data(1, 0, 0);
  const auto* pb = b.interval_data(1, 0, 0);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(pa->exclusive, pb->exclusive);
}

TEST(SynthTrial, MainInclusiveEqualsChildrenPlusOwnExclusive) {
  TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 6;
  auto trial = generate_trial(spec);
  const std::size_t time = *trial.find_metric("TIME");
  const std::size_t main_event = *trial.find_event("main");
  for (std::size_t t = 0; t < trial.threads().size(); ++t) {
    double children = 0.0;
    for (std::size_t e = 0; e < trial.events().size(); ++e) {
      if (e == main_event) continue;
      children += trial.interval_data(e, t, time)->inclusive;
    }
    const auto* main_point = trial.interval_data(main_event, t, time);
    EXPECT_NEAR(main_point->inclusive, children + main_point->exclusive,
                main_point->inclusive * 1e-12);
    EXPECT_DOUBLE_EQ(main_point->inclusive_pct, 100.0);
  }
}

TEST(SynthTrial, InvalidSpecThrows) {
  TrialSpec spec;
  spec.event_count = 0;
  EXPECT_THROW(generate_trial(spec), InvalidArgument);
}

TEST(SynthScaling, WorkConservedAcrossProcessorCounts) {
  ScalingSpec spec;
  auto t1 = generate_scaling_trial(spec, 1);
  auto t16 = generate_scaling_trial(spec, 16);
  EXPECT_EQ(t1.threads().size(), 1u);
  EXPECT_EQ(t16.threads().size(), 16u);
  // Total compute time at p=16 >= total at p=1 / 16 (Amdahl floor).
  const std::size_t time1 = *t1.find_metric("TIME");
  const std::size_t time16 = *t16.find_metric("TIME");
  auto total = [](const profile::TrialData& trial, std::size_t metric) {
    double sum = 0.0;
    trial.for_each_interval([&](std::size_t, std::size_t, std::size_t m,
                                const profile::IntervalDataPoint& p) {
      if (m == metric) sum += p.exclusive;
    });
    return sum;
  };
  EXPECT_GT(total(t16, time16), total(t1, time1) * 0.9);
}

TEST(SynthScaling, SerialRoutinesScaleWorse) {
  ScalingSpec spec;
  spec.routine_count = 12;  // last routine is "remap"
  spec.min_serial_fraction = 0.0;
  spec.max_serial_fraction = 0.5;
  auto t1 = generate_scaling_trial(spec, 1);
  auto t32 = generate_scaling_trial(spec, 32);
  const std::size_t m1 = *t1.find_metric("TIME");
  const std::size_t m32 = *t32.find_metric("TIME");

  auto mean_time = [](const profile::TrialData& trial, const std::string& name,
                      std::size_t metric) {
    const std::size_t e = *trial.find_event(name);
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t < trial.threads().size(); ++t) {
      const auto* p = trial.interval_data(e, t, metric);
      if (p != nullptr) {
        sum += p->exclusive;
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  // hydro_sweep has serial fraction 0 (speedup ~32); remap (last) ~0.5.
  const double first_speedup = mean_time(t1, "hydro_sweep", m1) /
                               mean_time(t32, "hydro_sweep", m32);
  const double last_speedup =
      mean_time(t1, "remap", m1) / mean_time(t32, "remap", m32);
  EXPECT_GT(first_speedup, 20.0);
  EXPECT_LT(last_speedup, 4.0);
}

TEST(SynthScaling, InvalidProcessorsThrows) {
  EXPECT_THROW(generate_scaling_trial(ScalingSpec{}, 0), InvalidArgument);
  EXPECT_THROW(generate_scaling_trial(ScalingSpec{}, -4), InvalidArgument);
}

TEST(SynthCluster, GroundTruthShapeAndBlocks) {
  ClusterSpec spec;
  spec.threads = 30;
  spec.cluster_count = 3;
  auto out = generate_clustered_trial(spec);
  ASSERT_EQ(out.ground_truth.size(), 30u);
  EXPECT_EQ(out.ground_truth.front(), 0u);
  EXPECT_EQ(out.ground_truth.back(), 2u);
  // Contiguous block assignment: non-decreasing.
  for (std::size_t i = 1; i < out.ground_truth.size(); ++i) {
    EXPECT_GE(out.ground_truth[i], out.ground_truth[i - 1]);
  }
  EXPECT_EQ(out.trial.metrics().size(), spec.metric_count);
  EXPECT_EQ(out.trial.events().size(), spec.event_count);
}

TEST(SynthCluster, ClustersAreSeparated) {
  ClusterSpec spec;
  spec.threads = 60;
  spec.cluster_count = 2;
  spec.cluster_separation = 8.0;
  auto out = generate_clustered_trial(spec);
  const std::size_t metric = 1;  // some PAPI counter
  const std::size_t event = 0;
  // Mean of cluster 0 vs cluster 1 for one (event, metric) must differ by
  // far more than the within-cluster noise (1%).
  double mean0 = 0.0;
  double mean1 = 0.0;
  for (std::size_t t = 0; t < 30; ++t) {
    mean0 += out.trial.interval_data(event, t, metric)->exclusive;
  }
  for (std::size_t t = 30; t < 60; ++t) {
    mean1 += out.trial.interval_data(event, t, metric)->exclusive;
  }
  mean0 /= 30.0;
  mean1 /= 30.0;
  EXPECT_GT(std::fabs(mean0 - mean1) / std::max(mean0, mean1), 0.05);
}

TEST(SynthCluster, BadSpecThrows) {
  ClusterSpec spec;
  spec.cluster_count = 0;
  EXPECT_THROW(generate_clustered_trial(spec), InvalidArgument);
}
