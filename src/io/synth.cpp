#include "io/synth.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "io/dynaprof_format.h"
#include "io/gprof_format.h"
#include "io/hpm_format.h"
#include "io/mpip_format.h"
#include "io/psrun_format.h"
#include "io/tau_format.h"
#include "util/error.h"
#include "util/file.h"
#include "util/rng.h"

namespace perfdmf::io::synth {

namespace {

const char* kComputeNames[] = {
    "hydro_sweep", "riemann_solver", "eos_update",     "flux_limiter",
    "advect_x",    "advect_y",       "advect_z",       "boundary_fill",
    "gradient",    "viscosity",      "energy_balance", "remap",
};

const char* kMpiNames[] = {
    "MPI_Allreduce()", "MPI_Isend()", "MPI_Irecv()",
    "MPI_Waitall()",   "MPI_Bcast()", "MPI_Barrier()",
};

std::string compute_name(std::size_t i) {
  const std::size_t n = std::size(kComputeNames);
  std::string base = kComputeNames[i % n];
  if (i >= n) base += "_" + std::to_string(i / n);
  return base;
}

std::string mpi_name(std::size_t i) {
  const std::size_t n = std::size(kMpiNames);
  std::string base = kMpiNames[i % n];
  if (i >= n) base += " <variant " + std::to_string(i / n) + ">";
  return base;
}

}  // namespace

profile::TrialData generate_trial(const TrialSpec& spec) {
  if (spec.event_count == 0) {
    throw perfdmf::InvalidArgument("TrialSpec.event_count must be > 0");
  }
  util::Rng rng(spec.seed);
  profile::TrialData trial;
  trial.trial().name = spec.name;

  std::vector<std::size_t> metrics;
  metrics.push_back(trial.intern_metric("TIME"));
  for (const auto& name : spec.extra_metrics) {
    if (name != "TIME") metrics.push_back(trial.intern_metric(name));
  }

  const std::size_t main_event = trial.intern_event("main", "application");
  const std::size_t children = spec.event_count - 1;  // events besides main
  const std::size_t n_mpi = std::min(children / 3, std::size(kMpiNames));
  const std::size_t n_compute = children - n_mpi;

  std::vector<std::size_t> events;        // child events
  std::vector<double> event_weight;       // share of total work
  for (std::size_t i = 0; i < n_compute; ++i) {
    events.push_back(trial.intern_event(compute_name(i), "computation"));
    // Zipf-ish weights: a few hot routines dominate, like real profiles.
    event_weight.push_back(1.0 / static_cast<double>(i + 1));
  }
  for (std::size_t i = 0; i < n_mpi; ++i) {
    events.push_back(trial.intern_event(mpi_name(i), "MPI"));
    event_weight.push_back(0.3 / static_cast<double>(i + 1));
  }
  const double weight_sum =
      std::accumulate(event_weight.begin(), event_weight.end(), 0.0);

  // Optional TAU callpath twins: "main => <child>" mirrors each child.
  std::vector<std::size_t> callpath_events;
  if (spec.with_callpaths) {
    for (std::size_t e : events) {
      callpath_events.push_back(trial.intern_event(
          "main => " + trial.events()[e].name, "TAU_CALLPATH"));
    }
  }

  std::vector<std::size_t> atomics;
  for (std::size_t a = 0; a < spec.atomic_event_count; ++a) {
    atomics.push_back(trial.intern_atomic_event(
        "message size <bucket " + std::to_string(a) + ">", "TAU_EVENT"));
  }

  // Per-metric unit scale: TIME in us, counters in raw counts.
  auto metric_scale = [&](std::size_t metric_order) {
    return metric_order == 0 ? 1.0 : 2.0e3 * static_cast<double>(metric_order);
  };

  for (std::int32_t node = 0; node < spec.nodes; ++node) {
    for (std::int32_t context = 0; context < spec.contexts_per_node; ++context) {
      for (std::int32_t thr = 0; thr < spec.threads_per_context; ++thr) {
        const std::size_t thread =
            trial.intern_thread({node, context, thr});
        const double skew = std::max(0.1, 1.0 + spec.imbalance * rng.next_gaussian());
        for (std::size_t mi = 0; mi < metrics.size(); ++mi) {
          const double scale = metric_scale(mi) * skew;
          double children_total = 0.0;
          for (std::size_t e = 0; e < events.size(); ++e) {
            profile::IntervalDataPoint p;
            const double share = event_weight[e] / weight_sum;
            const double jitter = 1.0 + 0.02 * rng.next_gaussian();
            p.exclusive = spec.base_time_us *
                          static_cast<double>(spec.event_count) * share * scale *
                          std::max(0.01, jitter);
            p.inclusive = p.exclusive;  // leaves
            p.num_calls = static_cast<double>(10 + rng.next_below(90));
            p.num_subrs = 0.0;
            trial.set_interval_data(events[e], thread, metrics[mi], p);
            if (spec.with_callpaths) {
              trial.set_interval_data(callpath_events[e], thread, metrics[mi], p);
            }
            children_total += p.inclusive;
          }
          profile::IntervalDataPoint main_point;
          main_point.exclusive = spec.base_time_us * 0.05 * scale;
          main_point.inclusive = children_total + main_point.exclusive;
          main_point.num_calls = 1.0;
          main_point.num_subrs = static_cast<double>(events.size());
          trial.set_interval_data(main_event, thread, metrics[mi], main_point);
        }
        for (std::size_t a = 0; a < atomics.size(); ++a) {
          profile::AtomicDataPoint p;
          p.sample_count = static_cast<double>(50 + rng.next_below(200));
          p.mean = 1024.0 * static_cast<double>(a + 1) *
                   (1.0 + 0.1 * rng.next_gaussian());
          p.std_dev = p.mean * 0.25;
          p.minimum = std::max(0.0, p.mean - 3.0 * p.std_dev);
          p.maximum = p.mean + 3.0 * p.std_dev;
          trial.set_atomic_data(atomics[a], thread, p);
        }
      }
    }
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData generate_scaling_trial(const ScalingSpec& spec,
                                          std::int32_t processors) {
  if (processors <= 0) {
    throw perfdmf::InvalidArgument("processors must be positive");
  }
  util::Rng rng(spec.seed);  // same seed for every p: routines keep identity
  profile::TrialData trial;
  trial.trial().name = spec.name + "." + std::to_string(processors) + "p";
  trial.trial().fields["processors"] = std::to_string(processors);

  const std::size_t metric = trial.intern_metric("TIME");
  const std::size_t main_event = trial.intern_event("main", "application");
  const std::size_t mpi_event =
      trial.intern_event("MPI_Allreduce()", "MPI");

  const double p = static_cast<double>(processors);
  const double doublings = std::log2(std::max(1.0, p));

  struct RoutineModel {
    std::size_t event;
    double work_share;
    double serial_fraction;
  };
  std::vector<RoutineModel> routines;
  double share_sum = 0.0;
  for (std::size_t r = 0; r < spec.routine_count; ++r) {
    RoutineModel model;
    model.event = trial.intern_event(compute_name(r), "computation");
    model.work_share = 1.0 / static_cast<double>(r + 1);
    const double ramp = spec.routine_count > 1
                            ? static_cast<double>(r) /
                                  static_cast<double>(spec.routine_count - 1)
                            : 0.0;
    model.serial_fraction = spec.min_serial_fraction +
                            ramp * (spec.max_serial_fraction -
                                    spec.min_serial_fraction);
    share_sum += model.work_share;
    routines.push_back(model);
  }

  for (std::int32_t rank = 0; rank < processors; ++rank) {
    const std::size_t thread = trial.intern_thread({rank, 0, 0});
    double children_total = 0.0;
    for (const auto& model : routines) {
      const double routine_work =
          spec.total_work_us * model.work_share / share_sum;
      // Amdahl per routine: serial part replicated on every rank, parallel
      // part split p ways. Small per-rank noise keeps min/mean/max distinct.
      const double time = routine_work * (model.serial_fraction +
                                          (1.0 - model.serial_fraction) / p);
      const double noisy = time * (1.0 + 0.01 * rng.next_gaussian());
      profile::IntervalDataPoint point;
      point.exclusive = std::max(1.0, noisy);
      point.inclusive = point.exclusive;
      point.num_calls = 100.0;
      trial.set_interval_data(model.event, thread, metric, point);
      children_total += point.inclusive;
    }
    // Communication grows with log2(p).
    profile::IntervalDataPoint comm;
    comm.exclusive = spec.total_work_us * spec.comm_fraction * doublings /
                     std::max(1.0, p) * (1.0 + 0.05 * rng.next_gaussian() + p * 0.001);
    comm.exclusive = std::max(0.0, comm.exclusive);
    comm.inclusive = comm.exclusive;
    comm.num_calls = 10.0 * doublings + 1.0;
    trial.set_interval_data(mpi_event, thread, metric, comm);
    children_total += comm.inclusive;

    profile::IntervalDataPoint main_point;
    main_point.exclusive = 1000.0;
    main_point.inclusive = children_total + main_point.exclusive;
    main_point.num_calls = 1.0;
    main_point.num_subrs = static_cast<double>(routines.size() + 1);
    trial.set_interval_data(main_event, thread, metric, main_point);
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData generate_weak_scaling_trial(const ScalingSpec& spec,
                                               std::int32_t processors) {
  if (processors <= 0) {
    throw perfdmf::InvalidArgument("processors must be positive");
  }
  util::Rng rng(spec.seed);
  profile::TrialData trial;
  trial.trial().name =
      spec.name + ".weak." + std::to_string(processors) + "p";
  trial.trial().fields["processors"] = std::to_string(processors);
  trial.trial().fields["scaling"] = "weak";

  const std::size_t metric = trial.intern_metric("TIME");
  const std::size_t main_event = trial.intern_event("main", "application");
  const std::size_t mpi_event = trial.intern_event("MPI_Allreduce()", "MPI");
  const double p = static_cast<double>(processors);
  const double doublings = std::log2(std::max(1.0, p));

  std::vector<std::pair<std::size_t, double>> routines;  // event, share
  double share_sum = 0.0;
  for (std::size_t r = 0; r < spec.routine_count; ++r) {
    const double share = 1.0 / static_cast<double>(r + 1);
    routines.emplace_back(trial.intern_event(compute_name(r), "computation"),
                          share);
    share_sum += share;
  }

  // Per-processor work is spec.total_work_us regardless of p.
  for (std::int32_t rank = 0; rank < processors; ++rank) {
    const std::size_t thread = trial.intern_thread({rank, 0, 0});
    double children_total = 0.0;
    for (const auto& [event, share] : routines) {
      profile::IntervalDataPoint point;
      point.exclusive = spec.total_work_us * share / share_sum *
                        (1.0 + 0.01 * rng.next_gaussian());
      point.exclusive = std::max(1.0, point.exclusive);
      point.inclusive = point.exclusive;
      point.num_calls = 100.0;
      trial.set_interval_data(event, thread, metric, point);
      children_total += point.inclusive;
    }
    profile::IntervalDataPoint comm;
    // (1 + doublings): nonzero latency floor even on one processor, so
    // weak-scaling efficiency of the communication routine is defined at
    // the base count and decays as log2(p) grows.
    comm.exclusive = spec.total_work_us * spec.comm_fraction *
                     (1.0 + doublings) * (1.0 + 0.05 * rng.next_gaussian());
    comm.exclusive = std::max(0.0, comm.exclusive);
    comm.inclusive = comm.exclusive;
    comm.num_calls = 10.0 * doublings + 1.0;
    trial.set_interval_data(mpi_event, thread, metric, comm);
    children_total += comm.inclusive;

    profile::IntervalDataPoint main_point;
    main_point.exclusive = 1000.0;
    main_point.inclusive = children_total + main_point.exclusive;
    main_point.num_calls = 1.0;
    trial.set_interval_data(main_event, thread, metric, main_point);
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

ClusteredTrial generate_clustered_trial(const ClusterSpec& spec) {
  if (spec.cluster_count == 0 || spec.threads <= 0) {
    throw perfdmf::InvalidArgument("bad ClusterSpec");
  }
  util::Rng rng(spec.seed);
  ClusteredTrial out;
  profile::TrialData& trial = out.trial;
  trial.trial().name = spec.name;

  static const char* kPapiNames[] = {
      "TIME",          "PAPI_FP_OPS",  "PAPI_L1_DCM", "PAPI_L2_DCM",
      "PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_BR_MSP", "PAPI_TLB_DM",
  };
  std::vector<std::size_t> metrics;
  for (std::size_t m = 0; m < spec.metric_count; ++m) {
    metrics.push_back(trial.intern_metric(
        m < std::size(kPapiNames) ? kPapiNames[m]
                                  : "PAPI_CTR_" + std::to_string(m)));
  }

  std::vector<std::size_t> events;
  for (std::size_t e = 0; e < spec.event_count; ++e) {
    events.push_back(trial.intern_event(compute_name(e), "computation"));
  }

  // Cluster signatures: per (cluster, event, metric) mean multipliers.
  // Drawn once; separation controls how distinct clusters are.
  const std::size_t k = spec.cluster_count;
  std::vector<double> signature(k * events.size() * metrics.size());
  for (double& s : signature) {
    s = 1.0 + spec.cluster_separation * 0.1 * rng.next_gaussian();
    s = std::max(0.05, s);
  }

  for (std::int32_t t = 0; t < spec.threads; ++t) {
    // Contiguous block assignment mirrors sPPM's spatial decomposition
    // (boundary ranks behave differently from interior ranks).
    const std::size_t cluster =
        static_cast<std::size_t>(t) * k / static_cast<std::size_t>(spec.threads);
    out.ground_truth.push_back(cluster);
    const std::size_t thread = trial.intern_thread({t, 0, 0});
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const double unit = m == 0 ? 1.0e5 : 1.0e6 * static_cast<double>(m);
      for (std::size_t e = 0; e < events.size(); ++e) {
        const double mean =
            unit * signature[(cluster * events.size() + e) * metrics.size() + m];
        profile::IntervalDataPoint p;
        p.exclusive = std::max(1.0, mean * (1.0 + 0.01 * rng.next_gaussian()));
        p.inclusive = p.exclusive;
        p.num_calls = 50.0;
        trial.set_interval_data(events[e], thread, metrics[m], p);
      }
    }
  }

  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return out;
}

// ----------------------------------------------------------- emission

void write_as_tau(const profile::TrialData& trial,
                  const std::filesystem::path& directory) {
  write_tau_profiles(trial, directory);
}

void write_as_gprof(const profile::TrialData& trial,
                    const std::filesystem::path& file) {
  util::write_file_atomic(file, render_gprof_report(trial), /*sync=*/false);
}

void write_as_mpip(const profile::TrialData& trial,
                   const std::filesystem::path& file) {
  util::write_file_atomic(file, render_mpip_report(trial), /*sync=*/false);
}

void write_as_dynaprof(const profile::TrialData& trial,
                       const std::filesystem::path& directory,
                       const std::string& metric_name) {
  std::filesystem::create_directories(directory);
  for (std::size_t t = 0; t < trial.threads().size(); ++t) {
    const profile::ThreadId& id = trial.threads()[t];
    const std::string name = "dynaprof." + std::to_string(id.node) + "." +
                             std::to_string(id.thread) + ".txt";
    util::write_file_atomic(directory / name,
                            render_dynaprof_report(trial, t, metric_name),
                            /*sync=*/false);
  }
}

void write_as_hpm(const profile::TrialData& trial,
                  const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
  for (std::size_t t = 0; t < trial.threads().size(); ++t) {
    const std::string name =
        "hpm_" + std::to_string(trial.threads()[t].node) + ".txt";
    util::write_file_atomic(directory / name, render_hpm_report(trial, t),
                            /*sync=*/false);
  }
}

void write_as_psrun(const profile::TrialData& trial,
                    const std::filesystem::path& directory) {
  std::filesystem::create_directories(directory);
  for (std::size_t t = 0; t < trial.threads().size(); ++t) {
    const std::string name =
        "psrun." + std::to_string(trial.threads()[t].node) + ".xml";
    util::write_file_atomic(directory / name, render_psrun_report(trial, t),
                            /*sync=*/false);
  }
}

profile::TrialData generate_mpip_style_trial(const TrialSpec& spec) {
  util::Rng rng(spec.seed);
  profile::TrialData trial;
  trial.trial().name = spec.name;
  const std::size_t metric = trial.intern_metric("TIME");
  const std::size_t app = trial.intern_event("Application", "application");

  const std::size_t n_sites = std::max<std::size_t>(1, spec.event_count);
  std::vector<std::size_t> sites;
  for (std::size_t s = 0; s < n_sites; ++s) {
    const std::string op = kMpiNames[s % std::size(kMpiNames)];
    // render/parse convention: "MPI_<op>() [site <id>]"
    const std::string bare = op.substr(4, op.size() - 6);  // strip MPI_ and ()
    sites.push_back(trial.intern_event(
        "MPI_" + bare + "() [site " + std::to_string(s + 1) + "]", "MPI"));
  }

  // Message-size atomic events per site (mpiP's "Message Sent" section).
  std::vector<std::size_t> byte_events;
  if (spec.atomic_event_count > 0) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const std::string& site_name = trial.events()[sites[s]].name;
      // sites[s] name: "MPI_<op>() [site N]" -> "Message size: <op> [site N]"
      const std::size_t paren = site_name.find("()");
      const std::string op = site_name.substr(4, paren - 4);
      const std::size_t bracket = site_name.find("[site ");
      byte_events.push_back(trial.intern_atomic_event(
          "Message size: " + op + " " + site_name.substr(bracket), "MPI_BYTES"));
    }
  }

  for (std::int32_t rank = 0; rank < spec.nodes; ++rank) {
    const std::size_t thread = trial.intern_thread({rank, 0, 0});
    double mpi_total = 0.0;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      profile::IntervalDataPoint p;
      p.num_calls = static_cast<double>(8 + rng.next_below(240));
      const double mean_us =
          spec.base_time_us / 100.0 * (1.0 + 0.3 * rng.next_double());
      p.exclusive = p.num_calls * mean_us;
      p.inclusive = p.exclusive;
      trial.set_interval_data(sites[s], thread, metric, p);
      mpi_total += p.exclusive;
      if (!byte_events.empty()) {
        profile::AtomicDataPoint bytes;
        bytes.sample_count = p.num_calls;
        bytes.mean = 512.0 * static_cast<double>(1 + rng.next_below(64));
        bytes.minimum = bytes.mean * 0.5;
        bytes.maximum = bytes.mean * 2.0;
        trial.set_atomic_data(byte_events[s], thread, bytes);
      }
    }
    profile::IntervalDataPoint app_point;
    app_point.inclusive =
        mpi_total + spec.base_time_us * static_cast<double>(spec.event_count) *
                        (1.0 + spec.imbalance * rng.next_gaussian());
    app_point.exclusive = app_point.inclusive - mpi_total;
    app_point.num_calls = 1.0;
    app_point.num_subrs = static_cast<double>(sites.size());
    trial.set_interval_data(app, thread, metric, app_point);
  }
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

profile::TrialData generate_psrun_style_trial(const TrialSpec& spec) {
  util::Rng rng(spec.seed);
  profile::TrialData trial;
  trial.trial().name = spec.name;
  const std::size_t metric = trial.intern_metric("TIME");
  std::vector<std::size_t> counters;
  for (const auto& name : spec.extra_metrics) {
    counters.push_back(trial.intern_metric(name));
  }
  const std::size_t event = trial.intern_event("Entire application");
  for (std::int32_t rank = 0; rank < spec.nodes; ++rank) {
    const std::size_t thread = trial.intern_thread({rank, 0, 0});
    profile::IntervalDataPoint p;
    p.inclusive = spec.base_time_us * static_cast<double>(spec.event_count) *
                  (1.0 + spec.imbalance * rng.next_gaussian());
    p.exclusive = p.inclusive;
    p.num_calls = 1.0;
    trial.set_interval_data(event, thread, metric, p);
    for (std::size_t c = 0; c < counters.size(); ++c) {
      profile::IntervalDataPoint counter_point;
      counter_point.inclusive = 1.0e7 * static_cast<double>(c + 1) *
                                (1.0 + 0.2 * rng.next_double());
      counter_point.exclusive = counter_point.inclusive;
      counter_point.num_calls = 1.0;
      trial.set_interval_data(event, thread, counters[c], counter_point);
    }
  }
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

}  // namespace perfdmf::io::synth
