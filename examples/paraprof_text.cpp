// paraprof_text: a text-mode ParaProf (paper §5.1 / Fig. 2).
//
// Builds a shared database archive holding trials from three different
// profiling tools (HPMToolkit, mpiP, TAU), then renders the archive tree
// and per-trial profile views the way ParaProf's browser does:
//
//   APPLICATION
//     EXPERIMENT
//       TRIAL        (tool, size)
//         bar chart of mean exclusive time per event
//
// Run:  ./paraprof_text
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "api/database_session.h"
#include "io/detect.h"
#include "io/hpm_format.h"
#include "io/synth.h"
#include "util/file.h"

using namespace perfdmf;

namespace {

void render_trial_view(api::DatabaseSession& session, const profile::Trial& trial) {
  session.set_trial(trial.id);
  auto metrics = session.get_metrics();
  if (metrics.empty()) return;
  // Mean exclusive per event for the first metric.
  std::map<std::string, std::pair<double, int>> by_event;
  session.set_metric(metrics[0].id);
  for (const auto& row : session.get_interval_data()) {
    auto& [sum, count] = by_event[row.event_name];
    sum += row.data.exclusive;
    ++count;
  }
  session.clear_metric();

  std::vector<std::pair<std::string, double>> means;
  for (const auto& [name, entry] : by_event) {
    means.emplace_back(name, entry.first / entry.second);
  }
  std::sort(means.begin(), means.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  const double top = means.empty() ? 1.0 : means.front().second;
  for (const auto& [name, mean] : means) {
    const int width = static_cast<int>(40.0 * mean / top);
    std::printf("        %-32.32s %12.1f |", name.c_str(), mean);
    for (int i = 0; i < width; ++i) std::printf("#");
    std::printf("\n");
  }
}

/// ParaProf's event-comparison window: "the ability to compare the
/// behavior of one instrumented event across all threads of execution"
/// (paper §5.1) — one bar per thread for the hottest event.
void render_event_across_threads(api::DatabaseSession& session,
                                 const profile::Trial& trial) {
  session.set_trial(trial.id);
  auto metrics = session.get_metrics();
  if (metrics.empty()) return;
  session.set_metric(metrics[0].id);
  auto rows = session.get_interval_data();
  session.clear_metric();
  if (rows.empty()) return;

  // Hottest event by summed exclusive time.
  std::map<std::string, double> totals;
  for (const auto& row : rows) totals[row.event_name] += row.data.exclusive;
  std::string hottest;
  double best = -1.0;
  for (const auto& [name, value] : totals) {
    if (value > best) {
      best = value;
      hottest = name;
    }
  }
  std::printf("      event '%s' across threads:\n", hottest.c_str());
  double top = 0.0;
  for (const auto& row : rows) {
    if (row.event_name == hottest) top = std::max(top, row.data.exclusive);
  }
  for (const auto& row : rows) {
    if (row.event_name != hottest) continue;
    const int width =
        top > 0.0 ? static_cast<int>(40.0 * row.data.exclusive / top) : 0;
    std::printf("        n%d:c%d:t%d %12.1f |", row.thread.node,
                row.thread.context, row.thread.thread, row.data.exclusive);
    for (int i = 0; i < width; ++i) std::printf("=");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  util::ScopedTempDir scratch("perfdmf-paraprof");

  // Synthesize the three tool outputs (stand-ins for real runs; see
  // DESIGN.md "Substitutions").
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 7;
  spec.seed = 11;
  auto tau = io::synth::generate_trial(spec);
  tau.trial().name = "tau 4p";
  io::synth::write_as_tau(tau, scratch.path() / "tau");

  spec.seed = 12;
  auto mpip = io::synth::generate_mpip_style_trial(spec);
  io::synth::write_as_mpip(mpip, scratch.path() / "run.mpiP");

  spec.seed = 13;
  spec.extra_metrics = {"PM_FPU0_CMPL", "PM_INST_CMPL"};
  auto hpm = io::synth::generate_trial(spec);
  io::synth::write_as_hpm(hpm, scratch.path() / "hpm");

  // Import everything into one archive (the shared repository of Fig. 2).
  api::DatabaseSession session;
  session.save_trial(io::load_profile(scratch.path() / "tau"), "sppm",
                     "mixed tools");
  auto mpip_trial = io::load_profile(scratch.path() / "run.mpiP");
  mpip_trial.trial().name = "mpiP 4p";
  session.save_trial(mpip_trial, "sppm", "mixed tools");
  profile::TrialData merged;
  for (const auto& file : util::list_files(scratch.path() / "hpm")) {
    io::HpmDataSource::parse_into(util::read_file(file), merged);
  }
  merged.infer_dimensions();
  merged.recompute_derived_fields();
  merged.trial().name = "hpmtoolkit 4p";
  session.save_trial(merged, "sppm", "mixed tools");

  // Render the archive tree.
  session.clear_application();
  session.clear_experiment();
  session.clear_trial();
  for (const auto& app : session.get_application_list()) {
    std::printf("%s\n", app.name.c_str());
    session.set_application(app.id);
    for (const auto& experiment : session.get_experiment_list()) {
      std::printf("  %s\n", experiment.name.c_str());
      session.set_experiment(experiment.id);
      for (const auto& trial : session.get_trial_list()) {
        std::printf("    %-20s (%lld nodes)\n", trial.name.c_str(),
                    static_cast<long long>(trial.node_count));
        render_trial_view(session, trial);
        render_event_across_threads(session, trial);
      }
    }
  }
  return 0;
}
