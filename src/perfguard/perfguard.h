// perfguard: the self-hosted perf-regression gate.
//
// Every bench binary emits BENCH_<name>.json (bench/bench_json.h); this
// module closes the loop by loading those files into sqldb itself — the
// PerfDMF premise applied to PerfDMF: the performance database IS this
// database. Runs land in a PERF_RUNS / PERF_METRICS schema, the
// baseline-vs-current deltas are computed *by the SQL engine* (a LEFT
// JOIN with arithmetic in the select list, exercising the PR 4 hash-join
// path on every CI run), and scripts/check.sh fails when a gated metric
// regresses past a threshold.
//
// Schema (bootstrapped on first use, shares a database with anything):
//   PERF_RUNS    (id PK, bench, git_sha, timestamp, schema_version, kind)
//   PERF_METRICS (id PK, run -> PERF_RUNS.id, name, value)
// `kind` is 'baseline' (loaded from a committed bench/baselines/ file or
// recorded by --record-baseline) or 'current' (this run). With a
// file-backed database the history of every run accumulates and stays
// queryable with plain SQL (perfguard --sql).
//
// Direction: a metric named *_ms / *_micros / *_us / *_ns is
// lower-is-better; everything else (ops_per_s, *_speedup, ratios) is
// higher-is-better. Gate only metrics whose name carries a direction.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/connection.h"

namespace perfdmf::perfguard {

/// One parsed BENCH_<name>.json.
struct BenchRun {
  std::string bench;
  std::string git_sha;
  std::string timestamp;
  std::int64_t schema_version = 1;  // pre-versioning files are v1
  /// name -> value, document order. Null-valued metrics (non-finite at
  /// emit time) are dropped at parse.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Parse the BENCH json text; throws ParseError on malformed input or an
/// unsupported schema_version.
BenchRun parse_bench_json(std::string_view text);
BenchRun load_bench_file(const std::filesystem::path& path);

/// True when smaller values of `metric` are better (latency-shaped
/// names); false for throughput/ratio-shaped names.
bool lower_is_better(std::string_view metric);

/// A gate rule "bench:metric"; either side may carry one '*' anywhere
/// (matches any run of characters). Rules come from
/// bench/baselines/gated.txt.
struct GateRule {
  std::string bench;
  std::string metric;
};

/// Parse rules, one per line; '#' starts a comment, blank lines skipped.
std::vector<GateRule> parse_gate_rules(std::string_view text);
bool is_gated(const std::vector<GateRule>& rules, std::string_view bench,
              std::string_view metric);

/// One baseline/current metric pair (or a hole on either side).
struct Delta {
  std::string bench;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / baseline * 100, as computed by the SQL
  /// engine; 0 when either side is missing or the baseline is 0.
  double delta_pct = 0.0;
  bool lower_better = false;
  bool gated = false;
  bool regressed = false;       // gated and worse than threshold
  bool missing_current = false; // in baseline, absent from this run
  bool new_metric = false;      // in this run, absent from baseline
};

struct Report {
  std::vector<Delta> deltas;
  /// Benches with a current run but no stored baseline (first run):
  /// compared against nothing, reported, never failed.
  std::vector<std::string> first_run_benches;
  double threshold_pct = 0.0;
  int regressions = 0;
  int missing = 0;  // gated metrics absent from the current run

  bool ok() const { return regressions == 0 && missing == 0; }
};

/// The PERF_RUNS / PERF_METRICS store over a sqldb connection.
class PerfDb {
 public:
  /// In-memory store (one-shot compare).
  PerfDb();
  /// File-backed store at `directory`: runs accumulate across
  /// invocations into a durable, SQL-queryable perf history.
  explicit PerfDb(const std::filesystem::path& directory);
  /// Share an existing connection (tests; embedding in a live database).
  explicit PerfDb(std::shared_ptr<sqldb::Connection> connection);

  sqldb::Connection& connection() { return *connection_; }

  /// Record one bench run; `kind` is "baseline" or "current".
  /// Returns the new PERF_RUNS id.
  std::int64_t record_run(const BenchRun& run, std::string_view kind);

  /// Latest PERF_RUNS id for (bench, kind); -1 when none exists.
  std::int64_t latest_run(std::string_view bench, std::string_view kind);

  /// Benches that have at least one run of `kind`, sorted.
  std::vector<std::string> benches_with(std::string_view kind);

  /// Compare the latest 'current' run of every bench against its latest
  /// 'baseline' run. Deltas are computed in SQL; gating/thresholding is
  /// applied to the result rows.
  Report compare(double threshold_pct, const std::vector<GateRule>& gates);

 private:
  void ensure_schema();

  std::shared_ptr<sqldb::Connection> connection_;
};

/// Human-readable report table (the CLI and check.sh output).
std::string format_report(const Report& report);

}  // namespace perfdmf::perfguard
