// Total and mean summaries across all threads of execution — the
// INTERVAL_TOTAL_SUMMARY / INTERVAL_MEAN_SUMMARY tables of the schema
// (paper §3.2), computed from a TrialData in one pass.
#pragma once

#include <map>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::profile {

/// Summary of one (event, metric) across every node/context/thread.
struct IntervalSummary {
  std::size_t event_index = 0;
  std::size_t metric_index = 0;
  std::size_t thread_count = 0;  // threads contributing data points
  IntervalDataPoint total;       // sums
  IntervalDataPoint mean;        // total / thread_count
};

/// Compute both summaries for every (event, metric) that has data.
/// Results are ordered by (event_index, metric_index).
std::vector<IntervalSummary> compute_interval_summaries(const TrialData& trial);

/// Summary of one atomic event across all threads.
struct AtomicSummary {
  std::size_t atomic_index = 0;
  std::size_t thread_count = 0;
  double total_samples = 0.0;
  double minimum = 0.0;   // min of per-thread minima
  double maximum = 0.0;   // max of per-thread maxima
  double mean_of_means = 0.0;
};

std::vector<AtomicSummary> compute_atomic_summaries(const TrialData& trial);

}  // namespace perfdmf::profile
