// DatabaseSession: the PerfDMFSession extension of DataSession (paper §4)
// — database-backed, querying selectively so large trials need not be
// loaded wholesale. Also carries the Save() entry points for pushing
// parsed profiles into the archive.
#pragma once

#include <memory>

#include "api/data_session.h"

namespace perfdmf::api {

class DatabaseSession : public DataSession {
 public:
  /// Open over an existing connection (shared with other components).
  explicit DatabaseSession(std::shared_ptr<sqldb::Connection> connection);
  /// Convenience: open an in-memory archive.
  DatabaseSession();
  /// Convenience: open (or create) a file-backed archive.
  explicit DatabaseSession(const std::filesystem::path& directory);

  DatabaseAPI& api() { return api_; }

  /// What opening the archive's files found and did (crash recovery,
  /// corrupt-log detection). Clean for in-memory archives.
  const sqldb::RecoveryReport& recovery_report() const {
    return api_.connection_ptr()->recovery_report();
  }

  /// A lightweight sibling session over the same underlying database:
  /// a fresh Connection sharing this session's Database, carrying the
  /// current application/experiment/trial and filter selections.
  /// Read-only queries on forked sessions run in parallel with one
  /// another (and with this session) under the shared-read lock.
  DatabaseSession fork() const;

  // ----- browsing ---------------------------------------------------------
  std::vector<profile::Application> get_application_list() override;
  std::vector<profile::Experiment> get_experiment_list() override;
  std::vector<profile::Trial> get_trial_list() override;

  // ----- scoped queries ----------------------------------------------------
  std::vector<profile::Metric> get_metrics() override;
  std::vector<profile::IntervalEvent> get_interval_events() override;
  std::vector<profile::AtomicEvent> get_atomic_events() override;
  std::vector<IntervalProfileRow> get_interval_data() override;
  std::vector<AtomicProfileRow> get_atomic_data() override;

  // ----- storing ------------------------------------------------------------
  /// Find-or-create an application/experiment by name, then upload the
  /// trial under it. Returns the new trial id (also set as the session's
  /// selected trial).
  std::int64_t save_trial(const profile::TrialData& data,
                          const std::string& application_name,
                          const std::string& experiment_name,
                          bool extend_schema = false);

  /// Load the full profile of the selected trial.
  profile::TrialData load_selected_trial();

 private:
  std::int64_t require_trial() const;
  DatabaseAPI::DataFilter current_filter() const;

  DatabaseAPI api_;
};

}  // namespace perfdmf::api
