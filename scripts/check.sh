#!/usr/bin/env bash
# CI-style check: build and run the full test suite four times —
# plain, with telemetry compiled out (-DPERFDMF_TELEMETRY=OFF), under
# ThreadSanitizer, and under AddressSanitizer+UBSan.
#
# Usage:
#   scripts/check.sh            # all four configurations, full suite
#   scripts/check.sh quick      # sanitizers run only the thread-heavy
#                               # (-L concurrency), executor-parity
#                               # (-L parity), and telemetry
#                               # (-L observability) suites
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK="${1:-}"
JOBS="$(nproc)"

run_suite() {
  local dir="$1" label_filter="$2" label_exclude="$3"
  shift 3
  local extra=()
  [ -n "$label_filter" ] && extra+=(-L "$label_filter")
  [ -n "$label_exclude" ] && extra+=(-LE "$label_exclude")
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "${extra[@]}"
}

# ASan/UBSan additionally runs the executor parity harness (optimized
# hash-join/group-by/Top-K paths vs forced fallbacks); the TSan sweep
# covers the shared plan cache through the -L concurrency suites.
SAN_FILTER=""
ASAN_FILTER=""
if [ "$QUICK" = "quick" ]; then
  SAN_FILTER="concurrency|observability"
  ASAN_FILTER="concurrency|parity|observability"
fi

echo "=== plain build ==="
run_suite build-check "" ""

echo "=== telemetry compiled out ==="
# The kill switch must keep the whole suite green: system tables exist
# but serve zeros, and recording compiles to nothing.
run_suite build-notel "" "" -DPERFDMF_TELEMETRY=OFF

echo "=== ThreadSanitizer ==="
# The fork-based crash-recovery harness (-L crash) is excluded: fork()
# does not carry TSan's internal threads into the child. ASan/UBSan and
# the plain build run it in full.
run_suite build-tsan "$SAN_FILTER" crash -DPERFDMF_SANITIZE=thread

echo "=== AddressSanitizer + UBSan ==="
run_suite build-asan "$ASAN_FILTER" "" -DPERFDMF_SANITIZE=address,undefined

echo "all checks passed"
