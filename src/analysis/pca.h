// Principal component analysis via a cyclic Jacobi eigensolver.
//
// PerfExplorer (paper §5.3) notes that "current visualization tools are
// incapable of displaying thousands of data points with hundreds of
// dimensions"; PCA is the standard dimension-reduction step before
// cluster display. This implementation handles the sizes the paper works
// with (hundreds of dimensions) without external linear-algebra packages.
#pragma once

#include <cstddef>
#include <vector>

namespace perfdmf::analysis {

struct PcaResult {
  std::vector<double> eigenvalues;              // descending, size = dims
  std::vector<std::vector<double>> components;  // dims vectors of size dims
  std::vector<double> explained_variance_ratio;
  /// Rows projected onto the first `projected_dims` components, row-major.
  std::vector<double> projected;
  std::size_t projected_dims = 0;
};

/// `data` row-major (rows x dims); columns are mean-centered internally.
/// `keep` limits the projection width (0 = keep all).
PcaResult pca(const std::vector<double>& data, std::size_t rows, std::size_t dims,
              std::size_t keep = 0);

/// Jacobi eigendecomposition of a symmetric matrix (n x n, row-major).
/// Returns (eigenvalues, eigenvectors as rows), sorted descending.
void jacobi_eigen(std::vector<double> matrix, std::size_t n,
                  std::vector<double>& eigenvalues,
                  std::vector<std::vector<double>>& eigenvectors);

}  // namespace perfdmf::analysis
