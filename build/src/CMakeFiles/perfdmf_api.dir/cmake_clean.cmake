file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_api.dir/api/access_control.cpp.o"
  "CMakeFiles/perfdmf_api.dir/api/access_control.cpp.o.d"
  "CMakeFiles/perfdmf_api.dir/api/data_session.cpp.o"
  "CMakeFiles/perfdmf_api.dir/api/data_session.cpp.o.d"
  "CMakeFiles/perfdmf_api.dir/api/database_api.cpp.o"
  "CMakeFiles/perfdmf_api.dir/api/database_api.cpp.o.d"
  "CMakeFiles/perfdmf_api.dir/api/database_session.cpp.o"
  "CMakeFiles/perfdmf_api.dir/api/database_session.cpp.o.d"
  "CMakeFiles/perfdmf_api.dir/api/file_session.cpp.o"
  "CMakeFiles/perfdmf_api.dir/api/file_session.cpp.o.d"
  "CMakeFiles/perfdmf_api.dir/api/schema_bootstrap.cpp.o"
  "CMakeFiles/perfdmf_api.dir/api/schema_bootstrap.cpp.o.d"
  "libperfdmf_api.a"
  "libperfdmf_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
