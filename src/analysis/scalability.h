// Scalability model fitting: given (processors, time) observations for a
// routine, fit an Amdahl model T(p) = T1 * (s + (1-s)/p) by least squares
// over the serial fraction s. Supports the speedup analyzer's diagnosis
// of which routines limit scaling (paper §5.2 methodology).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace perfdmf::analysis {

struct ScalingObservation {
  std::int64_t processors;
  double time;
};

struct AmdahlFit {
  double t1 = 0.0;              // fitted single-processor time
  double serial_fraction = 0.0;  // s in [0, 1]
  double r_squared = 0.0;        // goodness of fit on 1/T? plain residuals
  /// Predicted time at p.
  double predict(std::int64_t p) const;
  /// Asymptotic speedup bound 1/s (infinity -> returns a large sentinel).
  double max_speedup() const;
};

/// Least-squares fit; needs >= 2 distinct processor counts.
AmdahlFit fit_amdahl(const std::vector<ScalingObservation>& observations);

/// Communication-aware model T(p) = serial + work/p + comm * log2(p):
/// Amdahl plus a logarithmic collective-communication term (the standard
/// model for tree-based reductions/broadcasts). Needs >= 3 distinct
/// processor counts; coefficients are clamped to be non-negative.
struct CommModelFit {
  double serial = 0.0;  // replicated time
  double work = 0.0;    // perfectly-divided time (at p = 1)
  double comm = 0.0;    // cost per processor doubling
  double r_squared = 0.0;
  double predict(std::int64_t p) const;
  /// Processor count beyond which adding processors slows the run
  /// (dT/dp = 0); returns 0 when the model keeps improving forever.
  double optimal_processors() const;
};
CommModelFit fit_comm_model(const std::vector<ScalingObservation>& observations);

/// Label an observation series: "linear", "sublinear", "saturating", or
/// "degrading", from the shape of measured speedups.
std::string classify_scaling(const std::vector<ScalingObservation>& observations);

}  // namespace perfdmf::analysis
