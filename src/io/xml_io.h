// PerfDMF common XML representation (paper §3.1: "Export of profile data
// is also supported in a common XML representation").
//
// The document is a direct serialization of the common profile model:
//
//   <perfdmf_profile version="1">
//     <trial name=".." nodes=".." contexts=".." threads="..">
//       <field name=".." value=".."/> ...
//     </trial>
//     <metrics>   <metric id="0" name="TIME" derived="no"/> ... </metrics>
//     <events>    <event id="0" name="main" group=".."/> ... </events>
//     <atomicevents> <atomicevent id="0" name=".." group=".."/> ... </atomicevents>
//     <threads>   <thread id="0" node="0" context="0" thread="0"/> ... </threads>
//     <intervaldata>
//       <p e="0" t="0" m="0" incl=".." excl=".." calls=".." subrs=".."/> ...
//     </intervaldata>
//     <atomicdata>
//       <a e="0" t="0" n=".." max=".." min=".." mean=".." sd=".."/> ...
//     </atomicdata>
//   </perfdmf_profile>
//
// Percentages and per-call rates are derived, so they are recomputed on
// import rather than stored.
#pragma once

#include <filesystem>
#include <string>

#include "io/data_source.h"

namespace perfdmf::io {

/// Serialize a trial to the common XML representation.
std::string export_xml(const profile::TrialData& trial);

/// Parse the common XML representation.
profile::TrialData import_xml(const std::string& content);

class XmlDataSource : public DataSource {
 public:
  explicit XmlDataSource(std::filesystem::path file) : file_(std::move(file)) {}

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kPerfDmfXml; }

 private:
  std::filesystem::path file_;
};

}  // namespace perfdmf::io
