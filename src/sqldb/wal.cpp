#include "sqldb/wal.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

std::string encode_value(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N\n";
    case ValueType::kInt:
      return "I " + std::to_string(v.as_int()) + "\n";
    case ValueType::kReal: {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "R %.17g\n", v.as_real());
      return buffer;
    }
    case ValueType::kText: {
      const std::string& text = v.as_text();
      return "T " + std::to_string(text.size()) + " " + text + "\n";
    }
  }
  throw DbError("unencodable value");
}

namespace {
std::string read_line(const std::string& text, std::size_t& pos) {
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) throw perfdmf::ParseError("truncated record");
  std::string line = text.substr(pos, nl - pos);
  pos = nl + 1;
  return line;
}
}  // namespace

Value decode_value(const std::string& text, std::size_t& pos) {
  if (pos >= text.size()) throw perfdmf::ParseError("truncated value record");
  const char tag = text[pos];
  if (tag == 'N') {
    read_line(text, pos);
    return Value();
  }
  if (tag == 'I') {
    std::string line = read_line(text, pos);
    return Value(util::parse_int_or_throw(line.substr(2), "wal int"));
  }
  if (tag == 'R') {
    std::string line = read_line(text, pos);
    return Value(util::parse_double_or_throw(line.substr(2), "wal real"));
  }
  if (tag == 'T') {
    // "T <len> <bytes...>\n" where bytes may contain newlines.
    const std::size_t space1 = text.find(' ', pos);
    const std::size_t space2 = text.find(' ', space1 + 1);
    if (space1 == std::string::npos || space2 == std::string::npos) {
      throw perfdmf::ParseError("malformed text value record");
    }
    const std::size_t length = static_cast<std::size_t>(
        util::parse_int_or_throw(text.substr(space1 + 1, space2 - space1 - 1),
                                 "wal text length"));
    if (space2 + 1 + length + 1 > text.size()) {
      throw perfdmf::ParseError("truncated text value record");
    }
    Value v(text.substr(space2 + 1, length));
    pos = space2 + 1 + length + 1;  // skip trailing newline
    return v;
  }
  throw perfdmf::ParseError("unknown value tag in record");
}

Wal::Wal(std::filesystem::path path) : path_(std::move(path)) {}

std::string Wal::encode_record(std::string_view sql, const Params& params) const {
  // Record: "S <sql-len>\n<sql>\nP <count>\n" + encoded params + "E\n"
  std::string record = "S " + std::to_string(sql.size()) + "\n";
  record.append(sql);
  record += "\nP " + std::to_string(params.size()) + "\n";
  for (const auto& p : params) record += encode_value(p);
  record += "E\n";
  return record;
}

std::ofstream& Wal::stream() {
  if (!out_.is_open()) {
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_) throw perfdmf::IoError("cannot open WAL for append: " +
                                      path_.string());
  }
  return out_;
}

void Wal::append(std::string_view sql, const Params& params) {
  const std::string record = encode_record(sql, params);
  std::ofstream& out = stream();
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
  out.flush();
  if (!out) throw perfdmf::IoError("WAL append failed: " + path_.string());
}

void Wal::append_batch(
    const std::vector<std::pair<std::string, Params>>& records) {
  std::string buffer;
  for (const auto& [sql, params] : records) {
    buffer += encode_record(sql, params);
  }
  std::ofstream& out = stream();
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  if (!out) throw perfdmf::IoError("WAL batch append failed: " + path_.string());
}

void Wal::replay(const std::function<void(const std::string& sql,
                                          const Params& params)>& apply) const {
  if (!std::filesystem::exists(path_)) return;
  const std::string text = util::read_file(path_);
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Parse one record; on any framing error, treat as a torn tail and stop.
    try {
      if (text[pos] != 'S') throw perfdmf::ParseError("bad record head");
      const std::size_t space = text.find(' ', pos);
      const std::size_t nl = text.find('\n', pos);
      if (space == std::string::npos || nl == std::string::npos || space > nl) {
        throw perfdmf::ParseError("bad record header");
      }
      const std::size_t sql_length = static_cast<std::size_t>(
          util::parse_int_or_throw(text.substr(space + 1, nl - space - 1),
                                   "wal sql length"));
      std::size_t cursor = nl + 1;
      if (cursor + sql_length + 1 > text.size()) {
        throw perfdmf::ParseError("truncated sql");
      }
      std::string sql = text.substr(cursor, sql_length);
      cursor += sql_length + 1;  // + newline
      std::string param_header = read_line(text, cursor);
      if (!util::starts_with(param_header, "P ")) {
        throw perfdmf::ParseError("bad param header");
      }
      const std::size_t count = static_cast<std::size_t>(
          util::parse_int_or_throw(param_header.substr(2), "wal param count"));
      Params params;
      params.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        params.push_back(decode_value(text, cursor));
      }
      std::string tail = read_line(text, cursor);
      if (tail != "E") throw perfdmf::ParseError("bad record tail");
      // Record is intact: apply it, then move on.
      apply(sql, params);
      pos = cursor;
    } catch (const perfdmf::ParseError&) {
      break;  // torn tail: everything before `pos` was already applied
    }
  }
}

void Wal::reset() {
  if (out_.is_open()) out_.close();
  util::write_file(path_, "");
}

}  // namespace perfdmf::sqldb
