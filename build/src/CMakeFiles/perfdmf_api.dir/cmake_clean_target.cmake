file(REMOVE_RECURSE
  "libperfdmf_api.a"
)
