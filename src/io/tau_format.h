// TAU profile format (paper §3.1; TAU writes one `profile.N.C.T` file per
// node/context/thread, and one directory `MULTI__<METRIC>` per metric when
// several metrics are collected).
//
// File grammar (classic TAU ASCII profiles):
//   <n> templated_functions_MULTI_<METRIC>
//   # Name Calls Subrs Excl Incl ProfileCalls #
//   "<event name>" <calls> <subrs> <excl> <incl> <profile-calls> GROUP="<groups>"
//   ... n lines ...
//   <m> aggregates
//   <k> userevents
//   # eventname numevents max min mean sumsqr
//   "<user event>" <num> <max> <min> <mean> <sumsqr>
//
// Times are in microseconds.
#pragma once

#include <filesystem>

#include "io/data_source.h"
#include "io/dir_scan.h"

namespace perfdmf::io {

/// Reads a trial from a directory. Layouts supported:
///  - flat:   <dir>/profile.N.C.T            (single metric)
///  - multi:  <dir>/MULTI__<METRIC>/profile.N.C.T   (one subdir per metric)
/// An optional prefix/suffix filter restricts which profile files load.
class TauDataSource : public DataSource {
 public:
  explicit TauDataSource(std::filesystem::path directory, ScanFilter filter = {});

  profile::TrialData load() override;
  ProfileFormat format() const override { return ProfileFormat::kTau; }

  /// Parse one profile.N.C.T file's content into `trial` for `thread`.
  /// Exposed for tests and for tools that stream single files.
  static void parse_file(const std::string& content, const profile::ThreadId& thread,
                         profile::TrialData& trial);

 private:
  std::filesystem::path directory_;
  ScanFilter filter_;
};

/// Write a TrialData as TAU profiles under `directory` (multi-metric
/// layout when the trial has more than one metric, flat otherwise).
void write_tau_profiles(const profile::TrialData& trial,
                        const std::filesystem::path& directory);

}  // namespace perfdmf::io
