// Property-based / parameterized sweeps (TEST_P) over the invariants the
// framework promises:
//  - every format writer/reader pair round-trips structure at any shape
//  - database upload -> load is lossless at any shape
//  - index-accelerated queries return exactly what a scan returns
//  - WAL recovery replays an intact prefix no matter where a crash cuts
//  - value encoding round-trips arbitrary values
//  - summaries and algebra obey algebraic identities on random trials
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <optional>
#include <thread>

#include "analysis/algebra.h"
#include "api/database_session.h"
#include "io/detect.h"
#include "io/synth.h"
#include "io/xml_io.h"
#include "profile/summary.h"
#include "sqldb/connection.h"
#include "sqldb/wal.h"
#include "util/file.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace perfdmf;

// ------------------------------------------------- format round trips

struct ShapeParam {
  std::int32_t nodes;
  std::int32_t contexts;
  std::int32_t threads;
  std::size_t events;
  std::size_t metrics;  // extra metrics beyond TIME
  std::uint64_t seed;
};

static std::string shape_name(const ::testing::TestParamInfo<ShapeParam>& info) {
  const ShapeParam& p = info.param;
  return "n" + std::to_string(p.nodes) + "c" + std::to_string(p.contexts) + "t" +
         std::to_string(p.threads) + "e" + std::to_string(p.events) + "m" +
         std::to_string(p.metrics) + "s" + std::to_string(p.seed);
}

class TauRoundTripProperty : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(TauRoundTripProperty, WriteThenReadPreservesEveryPoint) {
  const ShapeParam& shape = GetParam();
  io::synth::TrialSpec spec;
  spec.nodes = shape.nodes;
  spec.contexts_per_node = shape.contexts;
  spec.threads_per_context = shape.threads;
  spec.event_count = shape.events;
  spec.seed = shape.seed;
  for (std::size_t m = 0; m < shape.metrics; ++m) {
    spec.extra_metrics.push_back("PAPI_CTR_" + std::to_string(m));
  }
  auto original = io::synth::generate_trial(spec);

  util::ScopedTempDir dir;
  io::synth::write_as_tau(original, dir.path() / "t");
  auto reloaded = io::load_profile(dir.path() / "t");

  ASSERT_EQ(reloaded.threads().size(), original.threads().size());
  ASSERT_EQ(reloaded.metrics().size(), original.metrics().size());
  ASSERT_EQ(reloaded.events().size(), original.events().size());
  ASSERT_EQ(reloaded.interval_point_count(), original.interval_point_count());
  original.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                                 const profile::IntervalDataPoint& p) {
    const auto re = reloaded.find_event(original.events()[e].name);
    const auto rt = reloaded.find_thread(original.threads()[t]);
    const auto rm = reloaded.find_metric(original.metrics()[m].name);
    ASSERT_TRUE(re && rt && rm);
    const auto* q = reloaded.interval_data(*re, *rt, *rm);
    ASSERT_NE(q, nullptr);
    // %.17g text representation is exact for doubles.
    EXPECT_DOUBLE_EQ(q->inclusive, p.inclusive);
    EXPECT_DOUBLE_EQ(q->exclusive, p.exclusive);
    EXPECT_DOUBLE_EQ(q->num_calls, p.num_calls);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TauRoundTripProperty,
    ::testing::Values(ShapeParam{1, 1, 1, 1, 0, 1},      // minimal
                      ShapeParam{1, 1, 4, 3, 0, 2},      // threads only
                      ShapeParam{3, 2, 2, 5, 1, 3},      // full hierarchy
                      ShapeParam{8, 1, 1, 16, 2, 4},     // multi-metric
                      ShapeParam{2, 1, 1, 64, 0, 5},     // many events
                      ShapeParam{16, 1, 1, 2, 3, 6}),    // many nodes
    shape_name);

class XmlRoundTripProperty : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(XmlRoundTripProperty, ExportImportPreservesEveryPoint) {
  const ShapeParam& shape = GetParam();
  io::synth::TrialSpec spec;
  spec.nodes = shape.nodes;
  spec.contexts_per_node = shape.contexts;
  spec.threads_per_context = shape.threads;
  spec.event_count = shape.events;
  spec.seed = shape.seed;
  spec.atomic_event_count = shape.metrics;  // reuse as atomic count
  auto original = io::synth::generate_trial(spec);
  auto reloaded = io::import_xml(io::export_xml(original));
  ASSERT_EQ(reloaded.interval_point_count(), original.interval_point_count());
  ASSERT_EQ(reloaded.atomic_point_count(), original.atomic_point_count());
  original.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                                 const profile::IntervalDataPoint& p) {
    const auto* q = reloaded.interval_data(e, t, m);  // same dense ids
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(q->exclusive, p.exclusive);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XmlRoundTripProperty,
    ::testing::Values(ShapeParam{1, 1, 1, 1, 0, 11}, ShapeParam{4, 1, 2, 6, 2, 12},
                      ShapeParam{2, 3, 1, 9, 1, 13}, ShapeParam{12, 1, 1, 30, 0, 14}),
    shape_name);

class DbRoundTripProperty : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(DbRoundTripProperty, UploadLoadIsLossless) {
  const ShapeParam& shape = GetParam();
  io::synth::TrialSpec spec;
  spec.nodes = shape.nodes;
  spec.contexts_per_node = shape.contexts;
  spec.threads_per_context = shape.threads;
  spec.event_count = shape.events;
  spec.seed = shape.seed;
  spec.atomic_event_count = 1;
  for (std::size_t m = 0; m < shape.metrics; ++m) {
    spec.extra_metrics.push_back("M" + std::to_string(m));
  }
  auto original = io::synth::generate_trial(spec);

  api::DatabaseSession session;
  session.save_trial(original, "prop", "shapes");
  auto reloaded = session.load_selected_trial();

  ASSERT_EQ(reloaded.interval_point_count(), original.interval_point_count());
  ASSERT_EQ(reloaded.atomic_point_count(), original.atomic_point_count());
  original.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                                 const profile::IntervalDataPoint& p) {
    const auto re = reloaded.find_event(original.events()[e].name);
    const auto rt = reloaded.find_thread(original.threads()[t]);
    const auto rm = reloaded.find_metric(original.metrics()[m].name);
    ASSERT_TRUE(re && rt && rm);
    const auto* q = reloaded.interval_data(*re, *rt, *rm);
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(q->inclusive, p.inclusive);
    EXPECT_DOUBLE_EQ(q->exclusive, p.exclusive);
    EXPECT_DOUBLE_EQ(q->inclusive_pct, p.inclusive_pct);
    EXPECT_DOUBLE_EQ(q->num_calls, p.num_calls);
    EXPECT_DOUBLE_EQ(q->num_subrs, p.num_subrs);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DbRoundTripProperty,
    ::testing::Values(ShapeParam{1, 1, 1, 1, 0, 21}, ShapeParam{5, 1, 1, 7, 1, 22},
                      ShapeParam{2, 2, 2, 11, 2, 23},
                      ShapeParam{32, 1, 1, 13, 0, 24}),
    shape_name);

// ------------------------------------------ index / scan equivalence

class IndexEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalenceProperty, IndexedAndUnindexedQueriesAgree) {
  // Two identical tables, one with secondary indexes; every query must
  // return the same multiset of rows.
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  sqldb::Connection conn;
  conn.execute_update(
      "CREATE TABLE with_idx (id INTEGER PRIMARY KEY, k INTEGER, v REAL)");
  conn.execute_update(
      "CREATE TABLE no_idx (id INTEGER PRIMARY KEY, k INTEGER, v REAL)");
  conn.execute_update("CREATE INDEX idx_k ON with_idx (k)");
  auto insert_a = conn.prepare("INSERT INTO with_idx (id, k, v) VALUES (?, ?, ?)");
  auto insert_b = conn.prepare("INSERT INTO no_idx (id, k, v) VALUES (?, ?, ?)");
  for (int i = 1; i <= 500; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.next_below(20));
    const double v = rng.uniform(0.0, 100.0);
    insert_a.set_int(1, i);
    insert_a.set_int(2, k);
    insert_a.set_double(3, v);
    insert_a.execute_update();
    insert_b.set_int(1, i);
    insert_b.set_int(2, k);
    insert_b.set_double(3, v);
    insert_b.execute_update();
  }

  const char* kPredicates[] = {
      "k = 7",
      "k = 99",             // matches nothing
      "k >= 15",
      "k > 3 AND k < 9",
      "k BETWEEN 5 AND 12",
      "k = 4 AND v > 50.0",
      "k <= 2 OR k >= 18",  // OR: not index-servable, must still be right
      "v > 90.0",
  };
  for (const char* predicate : kPredicates) {
    auto run = [&](const char* table) {
      auto rs = conn.execute(std::string("SELECT id FROM ") + table +
                             " WHERE " + predicate + " ORDER BY id");
      std::vector<std::int64_t> ids;
      while (rs.next()) ids.push_back(rs.get_int(1));
      return ids;
    };
    EXPECT_EQ(run("with_idx"), run("no_idx")) << predicate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------ WAL recovery

class WalTruncationProperty : public ::testing::TestWithParam<int> {};

TEST_P(WalTruncationProperty, TruncatedWalReplaysAnIntactPrefix) {
  // Write N records, truncate the log at an arbitrary byte, and verify
  // replay yields a prefix of the statements (never garbage, never a
  // statement out of order).
  util::ScopedTempDir dir;
  const auto path = dir.path() / "wal.log";
  sqldb::Wal wal(path);
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    wal.append("INSERT INTO t VALUES (?)",
               {sqldb::Value(static_cast<std::int64_t>(i))});
  }
  const std::string full = util::read_file(path);
  // Truncate at a pseudo-random fraction determined by the parameter.
  const std::size_t cut = full.size() * static_cast<std::size_t>(GetParam()) / 17;
  util::write_file(path, full.substr(0, cut));

  std::vector<std::int64_t> replayed;
  wal.replay([&](const std::string& sql, const sqldb::Params& params) {
    ASSERT_EQ(sql, "INSERT INTO t VALUES (?)");
    ASSERT_EQ(params.size(), 1u);
    replayed.push_back(params[0].as_int());
  });
  // Replayed sequence must be exactly 0..k-1 for some k <= n.
  ASSERT_LE(replayed.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], static_cast<std::int64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, WalTruncationProperty,
                         ::testing::Range(0, 18));

// ------------------------------------------------- value encoding

class ValueEncodingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueEncodingProperty, RandomValuesRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 200; ++i) {
    sqldb::Value v;
    switch (rng.next_below(4)) {
      case 0: v = sqldb::Value(); break;
      case 1:
        v = sqldb::Value(static_cast<std::int64_t>(rng.next_u64()));
        break;
      case 2:
        v = sqldb::Value(rng.next_gaussian() * std::pow(10.0, rng.uniform(-5, 15)));
        break;
      default: {
        std::string s;
        const std::size_t length = rng.next_below(40);
        for (std::size_t c = 0; c < length; ++c) {
          s += static_cast<char>(rng.next_below(256));
        }
        v = sqldb::Value(std::move(s));
      }
    }
    const std::string encoded = sqldb::encode_value(v);
    std::size_t pos = 0;
    const sqldb::Value decoded = sqldb::decode_value(encoded, pos);
    EXPECT_EQ(pos, encoded.size());
    EXPECT_EQ(decoded, v) << "encoded as: " << encoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueEncodingProperty, ::testing::Values(1, 2, 3));

// ----------------------------------------------- algebra identities

class AlgebraIdentityProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraIdentityProperty, MergeMinusOperandEqualsOtherOperand) {
  // (a + b) - b == a on every aligned point.
  io::synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 6;
  spec.seed = static_cast<std::uint64_t>(GetParam());
  auto a = io::synth::generate_trial(spec);
  spec.seed += 1000;
  auto b = io::synth::generate_trial(spec);

  auto merged = analysis::trial_merge(a, b);
  auto recovered = analysis::trial_difference(merged, b);
  a.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                          const profile::IntervalDataPoint& p) {
    const auto re = recovered.find_event(a.events()[e].name);
    const auto rt = recovered.find_thread(a.threads()[t]);
    const auto rm = recovered.find_metric(a.metrics()[m].name);
    ASSERT_TRUE(re && rt && rm);
    const auto* q = recovered.interval_data(*re, *rt, *rm);
    ASSERT_NE(q, nullptr);
    EXPECT_NEAR(q->exclusive, p.exclusive, 1e-6 * std::fabs(p.exclusive) + 1e-9);
  });
}

TEST_P(AlgebraIdentityProperty, SummaryTotalsMatchManualSums) {
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  spec.event_count = 5;
  spec.seed = static_cast<std::uint64_t>(GetParam()) + 50;
  auto trial = io::synth::generate_trial(spec);

  auto summaries = profile::compute_interval_summaries(trial);
  for (const auto& s : summaries) {
    double manual = 0.0;
    std::size_t count = 0;
    for (std::size_t t = 0; t < trial.threads().size(); ++t) {
      const auto* p = trial.interval_data(s.event_index, t, s.metric_index);
      if (p != nullptr) {
        manual += p->exclusive;
        ++count;
      }
    }
    EXPECT_NEAR(s.total.exclusive, manual, 1e-9 * std::fabs(manual) + 1e-12);
    EXPECT_EQ(s.thread_count, count);
    EXPECT_NEAR(s.mean.exclusive, manual / count,
                1e-9 * std::fabs(manual) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraIdentityProperty,
                         ::testing::Values(101, 202, 303, 404));

// ----------------------------------- aggregate vs manual (random SQL)

class AggregateProperty : public ::testing::TestWithParam<int> {};

TEST_P(AggregateProperty, SqlAggregatesMatchManualComputation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  sqldb::Connection conn;
  conn.execute_update("CREATE TABLE t (id INTEGER PRIMARY KEY, g INTEGER, x REAL)");
  auto insert = conn.prepare("INSERT INTO t (g, x) VALUES (?, ?)");
  std::map<std::int64_t, std::vector<double>> groups;
  for (int i = 0; i < 300; ++i) {
    const std::int64_t g = static_cast<std::int64_t>(rng.next_below(5));
    const double x = rng.uniform(-100.0, 100.0);
    insert.set_int(1, g);
    insert.set_double(2, x);
    insert.execute_update();
    groups[g].push_back(x);
  }
  auto rs = conn.execute(
      "SELECT g, COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x), STDDEV(x)"
      " FROM t GROUP BY g ORDER BY 1");
  std::size_t seen = 0;
  while (rs.next()) {
    ++seen;
    const auto& values = groups.at(rs.get_int(1));
    double sum = 0.0;
    double minimum = values[0];
    double maximum = values[0];
    for (double v : values) {
      sum += v;
      minimum = std::min(minimum, v);
      maximum = std::max(maximum, v);
    }
    const double mean = sum / static_cast<double>(values.size());
    double m2 = 0.0;
    for (double v : values) m2 += (v - mean) * (v - mean);
    const double stddev =
        values.size() > 1 ? std::sqrt(m2 / static_cast<double>(values.size() - 1))
                          : 0.0;
    EXPECT_EQ(rs.get_int(2), static_cast<std::int64_t>(values.size()));
    EXPECT_NEAR(rs.get_double(3), sum, 1e-7);
    EXPECT_NEAR(rs.get_double(4), mean, 1e-9);
    EXPECT_DOUBLE_EQ(rs.get_double(5), minimum);
    EXPECT_DOUBLE_EQ(rs.get_double(6), maximum);
    if (values.size() > 1) {
      EXPECT_NEAR(rs.get_double(7), stddev, 1e-6);
    }
  }
  EXPECT_EQ(seen, groups.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateProperty, ::testing::Values(7, 8, 9));

// ------------------------- randomized transaction interleavings

namespace {

// One randomized run: `conns` writer threads, each with its own
// Connection over a shared Database, each executing `txns` transactions
// of a fixed insert batch (tagged with a txn-unique marker) plus random
// updates, ending in a commit-or-rollback coin flip — while snapshot
// reader threads concurrently assert MVCC visibility: a transaction's
// rows appear all-or-nothing (no dirty reads of a partial batch), and
// the committed row count only grows. Returns an error description if
// an invariant broke, nullopt on success. All randomness derives from
// `seed`, so a failing (seed, conns, txns) triple replays the same
// workload (though not the same interleaving).
constexpr int kRowsPerTxn = 3;

std::optional<std::string> run_txn_interleaving(std::uint64_t seed, int conns,
                                                int txns) {
  auto database = std::make_shared<sqldb::Database>();
  sqldb::Connection setup(database);
  setup.execute_update(
      "CREATE TABLE acct (id INTEGER PRIMARY KEY, k INTEGER, v REAL, "
      "tag INTEGER)");
  setup.execute_update("CREATE INDEX idx_acct_k ON acct (k)");

  std::vector<std::int64_t> committed_inserts(static_cast<std::size_t>(conns));
  std::atomic<int> errors{0};
  std::atomic<bool> writers_done{false};
  std::mutex failure_mutex;
  std::optional<std::string> reader_failure;

  // Snapshot readers: with MVCC they run lock-free against the writers,
  // and every statement sees a committed-only snapshot — so every tag
  // group it observes is a fully committed batch of kRowsPerTxn rows.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      try {
        sqldb::Connection conn(database);
        auto by_tag =
            conn.prepare("SELECT tag, COUNT(*) FROM acct GROUP BY tag");
        std::int64_t last_total = 0;
        while (!writers_done.load(std::memory_order_acquire)) {
          auto rs = by_tag.execute_query();
          std::int64_t total = 0;
          while (rs.next()) {
            const std::int64_t per_tag = rs.get_int(2);
            if (per_tag != kRowsPerTxn) {
              std::lock_guard<std::mutex> lock(failure_mutex);
              reader_failure = "dirty read: tag " +
                               std::to_string(rs.get_int(1)) + " visible with " +
                               std::to_string(per_tag) + "/" +
                               std::to_string(kRowsPerTxn) + " rows";
              return;
            }
            total += per_tag;
          }
          if (total < last_total) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            reader_failure = "committed state shrank: " +
                             std::to_string(total) + " after " +
                             std::to_string(last_total);
            return;
          }
          last_total = total;
        }
      } catch (...) {
        ++errors;
      }
    });
  }

  std::vector<std::thread> threads;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      try {
        sqldb::Connection conn(database);
        util::Rng rng(seed * 1000 + static_cast<std::uint64_t>(c));
        auto insert =
            conn.prepare("INSERT INTO acct (k, v, tag) VALUES (?, ?, ?)");
        auto update = conn.prepare("UPDATE acct SET v = v + 1 WHERE k = ?");
        std::int64_t committed = 0;
        for (int t = 0; t < txns; ++t) {
          conn.begin();
          const std::int64_t tag = static_cast<std::int64_t>(c) * 100000 + t;
          for (int row = 0; row < kRowsPerTxn; ++row) {
            insert.set_int(1, static_cast<std::int64_t>(rng.next_below(10)));
            insert.set_double(2, rng.uniform(0.0, 10.0));
            insert.set_int(3, tag);
            insert.execute_update();
          }
          const int updates = static_cast<int>(rng.next_below(3));
          for (int op = 0; op < updates; ++op) {
            update.set_int(1, static_cast<std::int64_t>(rng.next_below(10)));
            update.execute_update();  // row count unchanged
          }
          if (rng.next_below(2) == 0) {
            conn.commit();
            committed += kRowsPerTxn;
          } else {
            conn.rollback();
          }
        }
        committed_inserts[static_cast<std::size_t>(c)] = committed;
      } catch (...) {
        ++errors;
      }
    });
  }
  for (auto& t : threads) t.join();
  writers_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  if (errors.load() != 0) return "a connection thread threw";
  if (reader_failure) return reader_failure;

  std::int64_t expected = 0;
  for (std::int64_t d : committed_inserts) expected += d;
  auto rs = setup.execute("SELECT COUNT(*) FROM acct");
  rs.next();
  const std::int64_t total = rs.get_int(1);
  if (total != expected) {
    return "row count " + std::to_string(total) + " != sum of committed " +
           "insert deltas " + std::to_string(expected);
  }
  // Index consistency: the per-key point counts (index path) must
  // partition the table (scan path).
  std::int64_t by_key = 0;
  auto point = setup.prepare("SELECT COUNT(*) FROM acct WHERE k = ?");
  for (int k = 0; k < 10; ++k) {
    point.set_int(1, k);
    auto krs = point.execute_query();
    krs.next();
    by_key += krs.get_int(1);
  }
  if (by_key != total) {
    return "index point counts sum to " + std::to_string(by_key) +
           " but table scan counts " + std::to_string(total);
  }
  return std::nullopt;
}

}  // namespace

class TxnInterleavingProperty : public ::testing::TestWithParam<int> {};

TEST_P(TxnInterleavingProperty, CommittedDeltasAndIndexesStayConsistent) {
  // PERFDMF_SEED replays a reported failure without recompiling (it
  // overrides every parameterized instance with the same seed).
  const auto seed = util::seed_from_env(static_cast<std::uint64_t>(GetParam()));
  const int conns = 2 + GetParam() % 7;  // 2..8 connections
  const int txns = 12;

  auto failure = run_txn_interleaving(seed, conns, txns);
  if (!failure) return;

  // Shrink: halve the transactions-per-thread while the failure
  // reproduces, then report the minimal failing size with its seed.
  int size = txns;
  while (size > 1) {
    const int smaller = size / 2;
    auto shrunk = run_txn_interleaving(seed, conns, smaller);
    if (!shrunk) break;
    size = smaller;
    failure = shrunk;
  }
  ADD_FAILURE() << "invariant violated (seed=" << seed << " conns=" << conns
                << " txns_per_thread=" << size
                << " — minimal reproducer; replay with PERFDMF_SEED=" << seed
                << "): " << *failure;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnInterleavingProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------- all formats: structural round trip

#include "io/dynaprof_format.h"
#include "io/hpm_format.h"
#include "io/psrun_format.h"
#include "io/tau_format.h"

namespace {

struct FormatCase {
  io::ProfileFormat format;
  std::int32_t nodes;
  std::size_t events;
};

std::string format_case_name(const ::testing::TestParamInfo<FormatCase>& info) {
  std::string name = io::format_name(info.param.format);
  // gtest parameter names must be alphanumeric/underscore.
  name = util::replace_all(name, "-", "_");
  return name + "_n" + std::to_string(info.param.nodes) + "e" +
         std::to_string(info.param.events);
}

}  // namespace

class FormatRoundTripProperty : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatRoundTripProperty, StructureSurvivesDiskRoundTrip) {
  const FormatCase& param = GetParam();
  util::ScopedTempDir dir;

  io::synth::TrialSpec spec;
  spec.nodes = param.nodes;
  spec.event_count = param.events;
  spec.seed = 1000 + static_cast<std::uint64_t>(param.nodes) * 13 +
              param.events;

  profile::TrialData original;
  profile::TrialData reloaded;
  switch (param.format) {
    case io::ProfileFormat::kTau: {
      original = io::synth::generate_trial(spec);
      io::synth::write_as_tau(original, dir.path() / "t");
      reloaded = io::load_profile(dir.path() / "t");
      break;
    }
    case io::ProfileFormat::kGprof: {
      spec.nodes = 1;  // sequential profiler
      original = io::synth::generate_trial(spec);
      io::synth::write_as_gprof(original, dir.path() / "g.txt");
      reloaded = io::load_profile(dir.path() / "g.txt");
      break;
    }
    case io::ProfileFormat::kMpiP: {
      original = io::synth::generate_mpip_style_trial(spec);
      io::synth::write_as_mpip(original, dir.path() / "m.mpiP");
      reloaded = io::load_profile(dir.path() / "m.mpiP");
      break;
    }
    case io::ProfileFormat::kDynaprof: {
      original = io::synth::generate_trial(spec);
      io::synth::write_as_dynaprof(original, dir.path() / "d");
      for (const auto& file : util::list_files(dir.path() / "d")) {
        io::DynaprofDataSource::parse_into(util::read_file(file), reloaded);
      }
      reloaded.infer_dimensions();
      break;
    }
    case io::ProfileFormat::kHpm: {
      spec.extra_metrics = {"PM_INST_CMPL"};
      original = io::synth::generate_trial(spec);
      io::synth::write_as_hpm(original, dir.path() / "h");
      for (const auto& file : util::list_files(dir.path() / "h")) {
        io::HpmDataSource::parse_into(util::read_file(file), reloaded);
      }
      reloaded.infer_dimensions();
      break;
    }
    case io::ProfileFormat::kPsrun: {
      spec.extra_metrics = {"PAPI_TOT_CYC", "PAPI_FP_OPS"};
      original = io::synth::generate_psrun_style_trial(spec);
      io::synth::write_as_psrun(original, dir.path() / "p");
      for (const auto& file : util::list_files(dir.path() / "p")) {
        io::PsrunDataSource::parse_into(util::read_file(file), reloaded);
      }
      reloaded.infer_dimensions();
      break;
    }
    case io::ProfileFormat::kPerfDmfXml: {
      original = io::synth::generate_trial(spec);
      util::write_file(dir.path() / "x.xml", io::export_xml(original));
      reloaded = io::load_profile(dir.path() / "x.xml");
      break;
    }
  }

  // Structural invariants common to every format.
  EXPECT_EQ(reloaded.events().size(), original.events().size());
  EXPECT_EQ(reloaded.threads().size(), original.threads().size());
  EXPECT_EQ(reloaded.metrics().size(), original.metrics().size());
  for (const auto& event : original.events()) {
    EXPECT_TRUE(reloaded.find_event(event.name).has_value()) << event.name;
  }
  for (const auto& metric : original.metrics()) {
    EXPECT_TRUE(reloaded.find_metric(metric.name).has_value()) << metric.name;
  }
  for (const auto& thread : original.threads()) {
    EXPECT_TRUE(reloaded.find_thread(thread).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatRoundTripProperty,
    ::testing::Values(
        FormatCase{io::ProfileFormat::kTau, 2, 4},
        FormatCase{io::ProfileFormat::kTau, 6, 12},
        FormatCase{io::ProfileFormat::kGprof, 1, 5},
        FormatCase{io::ProfileFormat::kGprof, 1, 20},
        FormatCase{io::ProfileFormat::kMpiP, 3, 4},
        FormatCase{io::ProfileFormat::kMpiP, 8, 10},
        FormatCase{io::ProfileFormat::kDynaprof, 2, 6},
        FormatCase{io::ProfileFormat::kDynaprof, 5, 9},
        FormatCase{io::ProfileFormat::kHpm, 2, 5},
        FormatCase{io::ProfileFormat::kHpm, 4, 8},
        FormatCase{io::ProfileFormat::kPsrun, 2, 3},
        FormatCase{io::ProfileFormat::kPsrun, 6, 3},
        FormatCase{io::ProfileFormat::kPerfDmfXml, 3, 7},
        FormatCase{io::ProfileFormat::kPerfDmfXml, 5, 15}),
    format_case_name);
