// Load-imbalance and outlier analysis.
//
// The first diagnosis analysts run on a parallel profile (and a staple of
// the TAU/PerfExplorer lineage the paper seeds): per event, how unevenly
// is time distributed across threads, and which threads are outliers?
//
// Imbalance metrics per (event, metric):
//   imbalance_pct  = (max/mean - 1) * 100      — the classic definition;
//   imbalance_time = (max - mean)              — time recoverable by
//                                                 perfect balancing;
//   cov            = stddev / mean             — coefficient of variation.
#pragma once

#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::analysis {

struct EventImbalance {
  std::size_t event_index = 0;
  std::string event_name;
  std::size_t thread_count = 0;
  double mean = 0.0;
  double maximum = 0.0;
  double imbalance_pct = 0.0;
  double imbalance_time = 0.0;
  double cov = 0.0;
};

/// Per-event imbalance of exclusive time for one metric (by name),
/// sorted by imbalance_time descending (biggest balancing win first).
/// Events with data on fewer than 2 threads are skipped.
std::vector<EventImbalance> compute_imbalance(const profile::TrialData& trial,
                                              const std::string& metric_name = "TIME");

struct OutlierThread {
  profile::ThreadId thread;
  double total = 0.0;    // summed exclusive over all events
  double z_score = 0.0;  // against the across-thread distribution
};

/// Threads whose total exclusive value for `metric_name` deviates from
/// the mean by at least `z_threshold` standard deviations, strongest
/// first. Empty when the trial has < 3 threads (no meaningful stddev).
std::vector<OutlierThread> find_outlier_threads(const profile::TrialData& trial,
                                                const std::string& metric_name = "TIME",
                                                double z_threshold = 2.0);

std::string format_imbalance_table(const std::vector<EventImbalance>& rows);

}  // namespace perfdmf::analysis
