file(REMOVE_RECURSE
  "CMakeFiles/bench_derived.dir/bench_derived.cpp.o"
  "CMakeFiles/bench_derived.dir/bench_derived.cpp.o.d"
  "bench_derived"
  "bench_derived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_derived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
