# Empty compiler generated dependencies file for test_sqldb_parser.
# This may be replaced when dependencies are built.
