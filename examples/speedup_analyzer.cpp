// speedup_analyzer: the trial browser + speedup analyzer of paper §5.2.
//
// Generates an EVH1-style strong-scaling family (1..64 processors), stores
// every trial in a PerfDMF archive, then computes the minimum / mean /
// maximum speedup of every profiled routine through the API — plus an
// Amdahl fit per routine to diagnose which routines limit scaling.
//
// Run:  ./speedup_analyzer [max_procs]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/scalability.h"
#include "analysis/speedup.h"
#include "api/database_session.h"
#include "io/synth.h"

using namespace perfdmf;

int main(int argc, char** argv) {
  std::int32_t max_procs = 64;
  if (argc > 1) max_procs = std::atoi(argv[1]);
  if (max_procs < 2) max_procs = 2;

  // Archive the scaling family.
  api::DatabaseSession session;
  io::synth::ScalingSpec spec;
  std::printf("generating + archiving EVH1-style trials:");
  for (std::int32_t p = 1; p <= max_procs; p *= 2) {
    session.save_trial(io::synth::generate_scaling_trial(spec, p), "evh1",
                       "strong scaling");
    std::printf(" %dp", p);
  }
  std::printf("\n\n");

  // Browse: list what the archive holds (trial browser part).
  session.clear_application();
  session.clear_experiment();
  auto apps = session.get_application_list();
  for (const auto& app : apps) {
    session.set_application(app.id);
    for (const auto& experiment : session.get_experiment_list()) {
      session.set_experiment(experiment.id);
      std::printf("%s / %s: %zu trials\n", app.name.c_str(),
                  experiment.name.c_str(), session.get_trial_list().size());
    }
  }
  std::printf("\n");

  // Analyze: per-routine min/mean/max speedup (paper's headline analysis).
  auto experiments = session.api().list_experiments(apps[0].id);
  auto report = analysis::compute_speedup_for_experiment(session.api(),
                                                         experiments[0].id);
  std::printf("%s\n", analysis::format_speedup_table(report).c_str());

  // Fit Amdahl per routine from mean times at each processor count.
  std::printf("%-28s %10s %10s %10s  %s\n", "routine", "T1(fit)", "serial",
              "max-spd", "class");
  for (const auto& routine : report.routines) {
    if (routine.points.size() < 2) continue;
    std::vector<analysis::ScalingObservation> observations;
    for (const auto& point : routine.points) {
      // Invert speedup back to time (relative): T(p) = T(base)/speedup.
      observations.push_back(
          {point.processors, point.mean_speedup > 0.0
                                 ? 1.0 / point.mean_speedup
                                 : 1.0});
    }
    auto fit = analysis::fit_amdahl(observations);
    const double bound = fit.max_speedup();
    char bound_text[32];
    if (std::isinf(bound)) {
      std::snprintf(bound_text, sizeof bound_text, "      inf");
    } else {
      std::snprintf(bound_text, sizeof bound_text, "%9.1f", bound);
    }
    std::printf("%-28s %10.4f %10.3f %10s  %s\n", routine.event_name.c_str(),
                fit.t1, fit.serial_fraction, bound_text,
                analysis::classify_scaling(observations).c_str());
  }
  return 0;
}
