// Failpoints: named fault-injection sites for crash-safety testing.
//
// Production code marks the spots where durability can go wrong —
// WAL appends, snapshot renames, fsyncs — with a named site, e.g.
// `failpoint::evaluate("wal.commit")`. Tests (or the PERFDMF_FAILPOINTS
// environment variable) arm a site with an action and an activation
// mode. When no failpoint is armed the check is one relaxed atomic
// load, so sites are free to sit on hot paths.
//
// Actions:
//   kError      throw IoError before the operation (clean IO failure);
//               `arg` is the errno the injected IoError carries (pass
//               ENOSPC to simulate a full disk, 0 for a generic fault)
//   kShortWrite write only the first `arg` bytes, then _exit — a torn
//               write followed by a process crash (IO sites only)
//   kAbort      _exit immediately (crash before the operation)
//   kDelay      sleep `arg` milliseconds, then proceed (race widening)
//
// Activation modes:
//   one-shot    (enable) fires on the countdown-th evaluation, then
//               disarms itself; re-arm for repetition
//   every-N     (enable_every) fires on every Nth evaluation and stays
//               armed — N=1 is a sticky failpoint that fires every time
//   probability (enable_probability) fires with probability p per
//               evaluation and stays armed; the coin stream is
//               deterministic per site given set_seed()
//
// Site names follow `<component>.<operation>`, e.g. "wal.append",
// "snapshot.install", "util.write_file".
//
// Environment syntax (sites separated by ';'):
//   PERFDMF_FAILPOINTS="wal.commit=short:3:17;snapshot.install=abort"
//   PERFDMF_FAILPOINTS="wal.append=error:every=1:arg=28;wal.sync=delay:p=0.2:arg=5"
//   each entry: <name>=<error|short|abort|delay>[:<field>...]
//   fields: bare integers are positional (countdown, then arg); the
//   key=value forms `every=N`, `p=X`, `arg=N` select modes explicitly.
// Malformed entries are logged at warn level and skipped — a typo in
// the environment must not take down the process it was meant to test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace perfdmf::util {

enum class FailAction { kError, kShortWrite, kAbort, kDelay };

struct FailpointHit {
  FailAction action;
  int arg;  // kError: errno; kShortWrite: bytes to keep; kDelay: milliseconds
};

namespace failpoint {

/// Exit status used by kAbort/kShortWrite so a crash harness can tell
/// an injected crash from a genuine one.
constexpr int kCrashExitCode = 87;

/// Arm `name` one-shot: fires on the `countdown`-th evaluation (1 = next).
void enable(const std::string& name, FailAction action, int countdown = 1,
            int arg = 0);
/// Arm `name` persistently: fires on every `every_n`-th evaluation
/// (every_n = 1 fires every time — a sticky failpoint).
void enable_every(const std::string& name, FailAction action, int every_n = 1,
                  int arg = 0);
/// Arm `name` persistently: fires with probability `p` (clamped to
/// [0, 1]) on each evaluation. Deterministic per site for a given seed.
void enable_probability(const std::string& name, FailAction action, double p,
                        int arg = 0);
void disable(const std::string& name);
/// Disarm every failpoint (test teardown).
void clear_all();

/// Seed for the probability-mode coin streams (default 0). Each site
/// derives its own stream from this seed and its name, so schedules
/// replay exactly under a fixed seed regardless of arming order.
void set_seed(std::uint64_t seed);

/// Human-readable descriptions of every armed failpoint, sorted by
/// name: "wal.append=error:every=1:arg=28". For diagnostics and tests.
std::vector<std::string> list_armed();

/// Parse one PERFDMF_FAILPOINTS-syntax entry ("name=action:...") and arm
/// it. Returns false (after logging a warning) on malformed input
/// instead of throwing — exposed so tests can cover the parser.
bool arm_from_spec(const std::string& entry);

/// Raw check-and-consume: returns the hit if `name` fires now. Does not
/// act on it. Most call sites want evaluate() instead.
std::optional<FailpointHit> hit(const char* name);

/// Evaluate `name` and act: kError throws IoError (carrying `arg` as
/// its errno), kAbort calls _exit, kDelay sleeps then returns nullopt.
/// kShortWrite is returned for the IO site to apply (write `arg` bytes,
/// then _exit). Returns nullopt when nothing fires.
std::optional<FailpointHit> evaluate(const char* name);

}  // namespace failpoint
}  // namespace perfdmf::util
