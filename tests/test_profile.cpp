// Unit tests for the profile data model: TrialData, summaries, derived
// metrics.
#include <gtest/gtest.h>

#include "profile/derived.h"
#include "profile/summary.h"
#include "profile/trial_data.h"
#include "util/error.h"

using namespace perfdmf::profile;

namespace {

TrialData make_small_trial() {
  TrialData trial;
  const std::size_t time = trial.intern_metric("TIME");
  const std::size_t flops = trial.intern_metric("PAPI_FP_OPS");
  const std::size_t main_event = trial.intern_event("main", "application");
  const std::size_t work = trial.intern_event("work", "computation");
  for (int n = 0; n < 2; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    IntervalDataPoint main_point;
    main_point.inclusive = 100.0;
    main_point.exclusive = 20.0;
    main_point.num_calls = 1.0;
    main_point.num_subrs = 1.0;
    trial.set_interval_data(main_event, t, time, main_point);
    IntervalDataPoint work_point;
    work_point.inclusive = 80.0;
    work_point.exclusive = 80.0;
    work_point.num_calls = 8.0;
    trial.set_interval_data(work, t, time, work_point);
    IntervalDataPoint flops_point;
    flops_point.inclusive = 640.0;
    flops_point.exclusive = 640.0;
    flops_point.num_calls = 8.0;
    trial.set_interval_data(work, t, flops, flops_point);
  }
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

}  // namespace

TEST(TrialData, InterningIsIdempotent) {
  TrialData trial;
  EXPECT_EQ(trial.intern_metric("TIME"), 0u);
  EXPECT_EQ(trial.intern_metric("TIME"), 0u);
  EXPECT_EQ(trial.intern_metric("OTHER"), 1u);
  EXPECT_EQ(trial.intern_event("f", "g1"), 0u);
  EXPECT_EQ(trial.intern_event("f", "different-group-ignored"), 0u);
  EXPECT_EQ(trial.events()[0].group, "g1");
  EXPECT_EQ(trial.intern_thread({1, 2, 3}), 0u);
  EXPECT_EQ(trial.intern_thread({1, 2, 3}), 0u);
  EXPECT_EQ(trial.intern_thread({1, 2, 4}), 1u);
}

TEST(TrialData, FindReturnsNulloptForUnknown) {
  TrialData trial;
  EXPECT_FALSE(trial.find_metric("absent"));
  EXPECT_FALSE(trial.find_event("absent"));
  EXPECT_FALSE(trial.find_thread({9, 9, 9}));
  trial.intern_metric("m");
  EXPECT_TRUE(trial.find_metric("m"));
}

TEST(TrialData, SetAndGetIntervalData) {
  TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e = trial.intern_event("f");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  IntervalDataPoint p;
  p.inclusive = 5.0;
  trial.set_interval_data(e, t, m, p);
  ASSERT_NE(trial.interval_data(e, t, m), nullptr);
  EXPECT_DOUBLE_EQ(trial.interval_data(e, t, m)->inclusive, 5.0);
  EXPECT_EQ(trial.interval_data(e, t, m + 1), nullptr);
  EXPECT_EQ(trial.interval_point_count(), 1u);
}

TEST(TrialData, OverwriteKeepsSinglePoint) {
  TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e = trial.intern_event("f");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  IntervalDataPoint p;
  p.inclusive = 1.0;
  trial.set_interval_data(e, t, m, p);
  p.inclusive = 2.0;
  trial.set_interval_data(e, t, m, p);
  EXPECT_EQ(trial.interval_point_count(), 1u);
  EXPECT_DOUBLE_EQ(trial.interval_data(e, t, m)->inclusive, 2.0);
}

TEST(TrialData, OutOfRangeIndexThrows) {
  TrialData trial;
  trial.intern_metric("TIME");
  trial.intern_event("f");
  trial.intern_thread({0, 0, 0});
  IntervalDataPoint p;
  EXPECT_THROW(trial.set_interval_data(5, 0, 0, p), perfdmf::InvalidArgument);
  EXPECT_THROW(trial.set_interval_data(0, 5, 0, p), perfdmf::InvalidArgument);
  EXPECT_THROW(trial.set_interval_data(0, 0, 5, p), perfdmf::InvalidArgument);
}

TEST(TrialData, ForEachIntervalVisitsInsertionOrder) {
  TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  for (int i = 0; i < 5; ++i) {
    const std::size_t e = trial.intern_event("f" + std::to_string(i));
    IntervalDataPoint p;
    p.inclusive = i;
    trial.set_interval_data(e, t, m, p);
  }
  std::vector<std::size_t> order;
  trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t,
                              const IntervalDataPoint&) { order.push_back(e); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TrialData, AtomicDataRoundTrip) {
  TrialData trial;
  const std::size_t a = trial.intern_atomic_event("bytes sent", "TAU_EVENT");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  AtomicDataPoint p;
  p.sample_count = 10;
  p.mean = 256;
  p.minimum = 8;
  p.maximum = 1024;
  p.std_dev = 50;
  trial.set_atomic_data(a, t, p);
  ASSERT_NE(trial.atomic_data(a, t), nullptr);
  EXPECT_DOUBLE_EQ(trial.atomic_data(a, t)->mean, 256);
  EXPECT_EQ(trial.atomic_point_count(), 1u);
}

TEST(TrialData, RecomputeDerivedFields) {
  TrialData trial = make_small_trial();
  const std::size_t time = *trial.find_metric("TIME");
  const std::size_t main_event = *trial.find_event("main");
  const std::size_t work = *trial.find_event("work");
  const std::size_t t0 = *trial.find_thread({0, 0, 0});
  // main inclusive 100 is the thread total: 100% inclusive.
  EXPECT_DOUBLE_EQ(trial.interval_data(main_event, t0, time)->inclusive_pct, 100.0);
  EXPECT_DOUBLE_EQ(trial.interval_data(work, t0, time)->inclusive_pct, 80.0);
  EXPECT_DOUBLE_EQ(trial.interval_data(work, t0, time)->exclusive_pct, 80.0);
  // per call: 80 / 8
  EXPECT_DOUBLE_EQ(trial.interval_data(work, t0, time)->inclusive_per_call, 10.0);
}

TEST(TrialData, InferDimensions) {
  TrialData trial;
  trial.intern_thread({0, 0, 0});
  trial.intern_thread({3, 1, 2});
  trial.infer_dimensions();
  EXPECT_EQ(trial.trial().node_count, 4);
  EXPECT_EQ(trial.trial().contexts_per_node, 2);
  EXPECT_EQ(trial.trial().threads_per_context, 3);
}

TEST(ThreadIdToString, Formats) {
  EXPECT_EQ(to_string(ThreadId{1, 2, 3}), "1:2:3");
}

// ---------------------------------------------------------------- summary

TEST(Summary, TotalsAndMeansAcrossThreads) {
  TrialData trial = make_small_trial();
  auto summaries = compute_interval_summaries(trial);
  // (main, TIME), (work, TIME), (work, FLOPS)
  ASSERT_EQ(summaries.size(), 3u);
  const auto& main_summary = summaries[0];
  EXPECT_EQ(main_summary.thread_count, 2u);
  EXPECT_DOUBLE_EQ(main_summary.total.inclusive, 200.0);
  EXPECT_DOUBLE_EQ(main_summary.mean.inclusive, 100.0);
  const auto& work_summary = summaries[1];
  EXPECT_DOUBLE_EQ(work_summary.total.exclusive, 160.0);
  EXPECT_DOUBLE_EQ(work_summary.mean.num_calls, 8.0);
}

TEST(Summary, AtomicSummaries) {
  TrialData trial;
  const std::size_t a = trial.intern_atomic_event("ev");
  for (int n = 0; n < 3; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    AtomicDataPoint p;
    p.sample_count = 10;
    p.minimum = n;
    p.maximum = 100 + n;
    p.mean = 50 + n;
    trial.set_atomic_data(a, t, p);
  }
  auto summaries = compute_atomic_summaries(trial);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].thread_count, 3u);
  EXPECT_DOUBLE_EQ(summaries[0].total_samples, 30.0);
  EXPECT_DOUBLE_EQ(summaries[0].minimum, 0.0);
  EXPECT_DOUBLE_EQ(summaries[0].maximum, 102.0);
  EXPECT_DOUBLE_EQ(summaries[0].mean_of_means, 51.0);
}

TEST(Summary, EmptyTrialYieldsNoSummaries) {
  TrialData trial;
  EXPECT_TRUE(compute_interval_summaries(trial).empty());
  EXPECT_TRUE(compute_atomic_summaries(trial).empty());
}

// ---------------------------------------------------------------- derived

TEST(Derived, RatioMetric) {
  TrialData trial = make_small_trial();
  const std::size_t index =
      derive_ratio(trial, "FLOPS_PER_US", "PAPI_FP_OPS", "TIME");
  EXPECT_TRUE(trial.metrics()[index].derived);
  const std::size_t work = *trial.find_event("work");
  const std::size_t t0 = *trial.find_thread({0, 0, 0});
  // 640 FLOPS / 80 us = 8.
  ASSERT_NE(trial.interval_data(work, t0, index), nullptr);
  EXPECT_DOUBLE_EQ(trial.interval_data(work, t0, index)->exclusive, 8.0);
  // main has no FLOPS data: no derived point.
  const std::size_t main_event = *trial.find_event("main");
  EXPECT_EQ(trial.interval_data(main_event, t0, index), nullptr);
}

TEST(Derived, ScaledMetric) {
  TrialData trial = make_small_trial();
  const std::size_t index = derive_scaled(trial, "TIME_MS", "TIME", 1e-3);
  const std::size_t work = *trial.find_event("work");
  const std::size_t t0 = *trial.find_thread({0, 0, 0});
  EXPECT_DOUBLE_EQ(trial.interval_data(work, t0, index)->exclusive, 0.08);
}

TEST(Derived, DuplicateNameThrows) {
  TrialData trial = make_small_trial();
  EXPECT_THROW(derive_ratio(trial, "TIME", "PAPI_FP_OPS", "TIME"),
               perfdmf::InvalidArgument);
}

TEST(Derived, MissingOperandThrows) {
  TrialData trial = make_small_trial();
  EXPECT_THROW(derive_ratio(trial, "X", "NOPE", "TIME"),
               perfdmf::InvalidArgument);
  EXPECT_THROW(derive_ratio(trial, "X", "TIME", "NOPE"),
               perfdmf::InvalidArgument);
}

TEST(Derived, DivisionByZeroYieldsZero) {
  TrialData trial;
  const std::size_t a = trial.intern_metric("A");
  const std::size_t b = trial.intern_metric("B");
  const std::size_t e = trial.intern_event("f");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  IntervalDataPoint pa;
  pa.exclusive = 10.0;
  trial.set_interval_data(e, t, a, pa);
  IntervalDataPoint pb;  // zeros
  trial.set_interval_data(e, t, b, pb);
  const std::size_t index = derive_ratio(trial, "R", "A", "B");
  EXPECT_DOUBLE_EQ(trial.interval_data(e, t, index)->exclusive, 0.0);
}

TEST(TrialDataLimits, TooManyMetricsRejected) {
  TrialData trial;
  // The packed-key layout allows 4096 metrics; the 4097th must throw
  // rather than corrupt keys.
  for (int i = 0; i < 4096; ++i) {
    trial.intern_metric("m" + std::to_string(i));
  }
  EXPECT_THROW(trial.intern_metric("one_too_many"), perfdmf::InvalidArgument);
  // Existing metrics still intern idempotently.
  EXPECT_EQ(trial.intern_metric("m0"), 0u);
}

TEST(TrialData, NegativeThreadComponentsRoundTrip) {
  // Odd but legal: some tools use -1 sentinels; packing must not collide.
  TrialData trial;
  const std::size_t a = trial.intern_thread({-1, 0, 0});
  const std::size_t b = trial.intern_thread({0, -1, 0});
  const std::size_t c = trial.intern_thread({0, 0, -1});
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(trial.find_thread({-1, 0, 0}).value(), a);
}

TEST(Summary, PerCallUsesTotalCallsNotMeanOfRates) {
  TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e = trial.intern_event("f");
  // Thread 0: 100us / 1 call; thread 1: 100us / 99 calls.
  for (int n = 0; n < 2; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    IntervalDataPoint p;
    p.inclusive = 100.0;
    p.exclusive = 100.0;
    p.num_calls = n == 0 ? 1.0 : 99.0;
    trial.set_interval_data(e, t, m, p);
  }
  auto summaries = compute_interval_summaries(trial);
  ASSERT_EQ(summaries.size(), 1u);
  // total per-call = 200 / 100 = 2, not the mean of 100 and ~1.
  EXPECT_DOUBLE_EQ(summaries[0].total.inclusive_per_call, 2.0);
}
