#include "api/data_session.h"

// DataSession's virtual destructor and inline filter methods live in the
// header; this translation unit anchors the vtable.

namespace perfdmf::api {}  // namespace perfdmf::api
