// Chaos-schedule harness: randomized multi-threaded workloads under
// randomized fault schedules, checking the governance invariants the
// directed tests pin down one at a time:
//
//   - liveness: no worker hangs past the schedule watchdog, whatever
//     combination of injected I/O errors, delays, ENOSPC, timeouts,
//     admission shedding, and cross-thread cancellations fires;
//   - typed failures: every operation either succeeds or raises a typed
//     DbError / IoError — never an unclassified exception, never a
//     process death;
//   - durability: after the faults clear and the store is reopened, it
//     holds exactly the keys whose insert or commit was acknowledged —
//     nothing lost, nothing phantom;
//   - degradation round-trip: a database driven into read-only mode by
//     sticky ENOSPC serves reads throughout and accepts writes again
//     once space returns.
//
// Each schedule derives entirely from one seed (workload, fault plan,
// governance config, cancellation timing), so a failure replays with
// PERFDMF_SEED=<printed seed>. Only kError and kDelay actions are used:
// the process must survive every schedule (crash actions live in the
// fork-based harness, test_sqldb_crash.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/connection.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/file.h"
#include "util/log.h"
#include "util/rng.h"

using namespace perfdmf::sqldb;
using perfdmf::DbError;
using perfdmf::IoError;
namespace u = perfdmf::util;
namespace fp = perfdmf::util::failpoint;

namespace {

constexpr int kEnospc = 28;

// ------------------------------------------------------------ schedule

struct FaultPlan {
  struct Site {
    const char* name;
    double probability;
    int arg;  // errno for kError, milliseconds for kDelay
    perfdmf::util::FailAction action;
  };
  std::vector<Site> sites;
  bool governed = false;
  AdmissionGovernor::Config admission;
  std::int64_t statement_timeout_ms = 0;  // 0 = none
  bool cancel_chaos = false;
};

/// Everything about one schedule flows from its seed.
FaultPlan make_fault_plan(u::Rng& rng) {
  FaultPlan plan;
  // Error faults: each durability site independently armed with a small
  // probability; ENOSPC (which degrades) and generic I/O errors (which
  // roll back) are both represented.
  for (const char* site : {"wal.append", "wal.commit", "wal.sync"}) {
    if (rng.next_below(2) == 0) {
      const int err = rng.next_below(2) == 0 ? kEnospc : 0;
      plan.sites.push_back(
          {site, rng.uniform(0.02, 0.25), err, perfdmf::util::FailAction::kError});
    }
  }
  // Keep a failed recovery probe in some schedules so degraded mode
  // sticks instead of flapping on the next write.
  if (rng.next_below(3) == 0) {
    plan.sites.push_back(
        {"wal.probe", 1.0, kEnospc, perfdmf::util::FailAction::kError});
  }
  // Delay faults widen race windows without failing anything.
  if (rng.next_below(2) == 0) {
    plan.sites.push_back({"wal.sync", rng.uniform(0.05, 0.3),
                          1 + static_cast<int>(rng.next_below(3)),
                          perfdmf::util::FailAction::kDelay});
  }
  plan.governed = rng.next_below(2) == 0;
  if (plan.governed) {
    plan.admission.max_concurrent = 1 + static_cast<int>(rng.next_below(3));
    plan.admission.max_queue = static_cast<int>(rng.next_below(5));
    plan.admission.queue_timeout_ms = 20 + static_cast<int>(rng.next_below(40));
  }
  if (rng.next_below(2) == 0) {
    plan.statement_timeout_ms = 5 + static_cast<std::int64_t>(rng.next_below(20));
  }
  plan.cancel_chaos = rng.next_below(2) == 0;
  return plan;
}

void arm(const FaultPlan& plan) {
  for (const auto& site : plan.sites) {
    fp::enable_probability(site.name, site.action, site.probability, site.arg);
  }
}

// ------------------------------------------------------------- worker

struct ScheduleState {
  std::mutex model_mutex;
  std::set<std::int64_t> committed;  // keys whose write was acknowledged
  std::set<std::int64_t> attempted;  // every key any op tried to write
  std::atomic<int> untyped_failures{0};
  std::string untyped_what;  // first offender, for the failure message
};

/// One worker's slice of the schedule: a mix of autocommit inserts,
/// multi-statement transactions, point/aggregate reads, and the odd
/// checkpoint — every op wrapped so only *typed* errors are tolerated.
void run_worker(const FaultPlan& plan, std::uint64_t seed, int worker, int ops,
                ScheduleState& state, Connection* conn) {
  u::Rng rng(seed ^ (0xABCDULL + static_cast<std::uint64_t>(worker) * 7919));
  if (plan.statement_timeout_ms > 0) {
    conn->set_statement_timeout_ms(plan.statement_timeout_ms);
  }
  auto insert = conn->prepare("INSERT INTO kv (k, v) VALUES (?, ?)");
  std::int64_t next_key = worker * 1000000;

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t dice = rng.next_below(10);
    try {
      if (dice < 4) {
        // Autocommit insert of one fresh key.
        const std::int64_t key = next_key++;
        {
          std::lock_guard<std::mutex> lock(state.model_mutex);
          state.attempted.insert(key);
        }
        insert.set_int(1, key);
        insert.set_int(2, static_cast<std::int64_t>(rng.next_below(1000)));
        insert.execute_update();
        std::lock_guard<std::mutex> lock(state.model_mutex);
        state.committed.insert(key);
      } else if (dice < 6) {
        // Transaction of 2-3 inserts: all keys commit or none do.
        const int batch = 2 + static_cast<int>(rng.next_below(2));
        std::vector<std::int64_t> keys;
        for (int i = 0; i < batch; ++i) keys.push_back(next_key++);
        {
          std::lock_guard<std::mutex> lock(state.model_mutex);
          state.attempted.insert(keys.begin(), keys.end());
        }
        bool began = false;
        try {
          conn->begin();
          began = true;
          for (const std::int64_t key : keys) {
            insert.set_int(1, key);
            insert.set_int(2, 7);
            insert.execute_update();
          }
          conn->commit();
          std::lock_guard<std::mutex> lock(state.model_mutex);
          state.committed.insert(keys.begin(), keys.end());
        } catch (...) {
          if (began) {
            // The statement or commit died; the transaction may already
            // be rolled back — a second rollback is then a typed no-op
            // failure we ignore.
            try {
              conn->rollback();
            } catch (const DbError&) {
            }
          }
          throw;
        }
      } else if (dice < 9) {
        // Reads: these must work even while the database is degraded.
        auto rs = conn->execute("SELECT COUNT(*) FROM kv");
        if (!rs.next()) throw std::logic_error("COUNT returned no row");
      } else {
        conn->checkpoint();
      }
    } catch (const DbError&) {
      // Timeout, cancel, overload, read-only, mem budget, semantic —
      // all typed, all survivable.
    } catch (const IoError&) {
      // An injected generic I/O fault that rolled the statement back.
    } catch (const std::exception& e) {
      if (state.untyped_failures.fetch_add(1) == 0) {
        std::lock_guard<std::mutex> lock(state.model_mutex);
        state.untyped_what = e.what();
      }
    }
  }
}

std::set<std::int64_t> dump_keys(Connection& conn) {
  std::set<std::int64_t> keys;
  auto rs = conn.execute("SELECT k FROM kv");
  while (rs.next()) keys.insert(rs.get_int(1));
  return keys;
}

}  // namespace

TEST(SqldbChaos, RandomFaultSchedulesPreserveEveryInvariant) {
  // Chaos chatter (every degraded-mode entry logs at error level) would
  // swamp the test output across 200+ schedules.
  u::set_log_level(u::LogLevel::kOff);
  const std::uint64_t kSeed = u::seed_from_env(0xC4A05ULL);
  constexpr int kSchedules = 220;
  constexpr int kWorkers = 3;
  constexpr int kOpsPerWorker = 12;

  for (int sched = 0; sched < kSchedules; ++sched) {
    const std::uint64_t sched_seed =
        kSeed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(sched + 1));
    SCOPED_TRACE(::testing::Message()
                 << "schedule " << sched << " (seed 0x" << std::hex << kSeed
                 << std::dec << "; replay with PERFDMF_SEED=" << kSeed << ")");
    u::Rng rng(sched_seed);
    const FaultPlan plan = make_fault_plan(rng);

    u::ScopedTempDir dir;
    const auto db_dir = dir.path() / "db";
    auto db = std::make_shared<Database>(db_dir);
    {
      Connection setup(db);
      setup.execute_update(
          "CREATE TABLE kv (id INTEGER PRIMARY KEY, k INTEGER, v INTEGER)");
    }
    if (plan.governed) db->governor().configure(plan.admission);

    ScheduleState state;
    std::vector<std::unique_ptr<Connection>> conns;
    for (int w = 0; w < kWorkers; ++w) {
      conns.push_back(std::make_unique<Connection>(db));
    }

    // Faults arm only after setup: the schedule attacks the workload,
    // not the CREATE TABLE.
    fp::set_seed(sched_seed);
    arm(plan);

    std::atomic<int> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        run_worker(plan, sched_seed, w, kOpsPerWorker, state,
                   conns[static_cast<std::size_t>(w)].get());
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          done.fetch_add(1);
        }
        done_cv.notify_all();
      });
    }

    // Cancellation chaos: poke random workers' connections while they run.
    std::atomic<bool> stop_chaos{false};
    std::thread chaos;
    if (plan.cancel_chaos) {
      chaos = std::thread([&] {
        u::Rng crng(sched_seed ^ 0xCA4CE1ULL);
        while (!stop_chaos.load(std::memory_order_relaxed)) {
          conns[crng.next_below(kWorkers)]->cancel();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(1 + crng.next_below(3)));
        }
      });
    }

    // Watchdog: the whole point of deadlines is that nothing hangs. A
    // schedule that cannot finish inside a generous bound is a bug; the
    // seed line above has already been printed, so die loudly rather
    // than letting the test runner time the whole suite out.
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      const bool finished =
          done_cv.wait_for(lock, std::chrono::seconds(60),
                           [&] { return done.load() == kWorkers; });
      if (!finished) {
        std::fprintf(stderr,
                     "chaos schedule %d hung past the watchdog "
                     "(replay with PERFDMF_SEED=%llu)\n",
                     sched, static_cast<unsigned long long>(kSeed));
        std::fflush(stderr);
        std::abort();
      }
    }
    stop_chaos.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    if (chaos.joinable()) chaos.join();

    ASSERT_EQ(state.untyped_failures.load(), 0)
        << "untyped exception escaped a governed operation: "
        << state.untyped_what;

    // Faults clear ("space returns"); a degraded database must come
    // back and accept writes again.
    fp::clear_all();
    ASSERT_TRUE(db->try_exit_read_only());
    ASSERT_FALSE(db->read_only());
    {
      Connection conn(db);
      conn.clear_cancel();
      const std::int64_t sentinel = 999999999 + sched;
      conn.execute_update("INSERT INTO kv (k, v) VALUES (" +
                          std::to_string(sentinel) + ", 0)");
      std::lock_guard<std::mutex> lock(state.model_mutex);
      state.attempted.insert(sentinel);
      state.committed.insert(sentinel);
    }

    // Close every handle, reopen from disk, and audit: recovery holds
    // every acknowledged key and invents none.
    conns.clear();
    db.reset();
    {
      Connection conn(db_dir);
      const std::set<std::int64_t> actual = dump_keys(conn);
      for (const std::int64_t key : state.committed) {
        ASSERT_TRUE(actual.count(key))
            << "acknowledged key " << key << " lost after recovery";
      }
      for (const std::int64_t key : actual) {
        ASSERT_TRUE(state.attempted.count(key))
            << "recovery surfaced key " << key << " no operation wrote";
      }
    }
  }
}
