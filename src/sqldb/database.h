// The database: catalog of tables, DML with transactions, WAL-backed
// durability, and snapshot persistence. This is the substrate standing in
// for the external RDBMS (PostgreSQL / MySQL / Oracle / DB2) the paper's
// Java implementation connects to.
//
// Concurrency: Database is externally synchronized through its
// LockManager — the Connection layer classifies each statement and takes
// the drain lock shared (SELECT), the writer mutex (DML/transactions) or
// both exclusively (DDL/checkpoint) — and internally versioned: every
// mutation installs MVCC row versions stamped with a CommitStamp, and
// every statement resolves them against the ReadView it snapshotted at
// start. Readers therefore run in parallel with the writer without
// blocking it (the shared-repository deployment of the paper's
// PerfExplorer back end).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sqldb/ast.h"
#include "sqldb/durability.h"
#include "sqldb/executor.h"
#include "sqldb/governor.h"
#include "sqldb/lock_manager.h"
#include "sqldb/statement_registry.h"
#include "sqldb/table.h"

namespace perfdmf::sqldb {

class Wal;

class Database {
 public:
  /// In-memory database (no durability).
  Database();
  /// File-backed: `directory` holds snapshot + WAL. Created if missing;
  /// existing state is recovered (newest snapshot — falling back to the
  /// previous one when the newest is corrupt — then WAL replay above the
  /// snapshot's watermark). What recovery found is in recovery_report().
  /// Sync policy defaults to DurabilityOptions::from_env().
  explicit Database(const std::filesystem::path& directory);
  Database(const std::filesystem::path& directory,
           const DurabilityOptions& options);
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ----- statement execution ------------------------------------------
  /// Parse and execute one statement. For SELECT, returns rows; for DML,
  /// a one-cell result holding the affected-row count.
  ResultSetData execute(std::string_view sql, const Params& params = {});

  /// Execute a pre-parsed statement (prepared-statement path).
  ResultSetData execute(Statement& stmt, const Params& params,
                        std::string_view original_sql);

  // ----- catalog --------------------------------------------------------
  bool has_table(std::string_view name) const;
  Table& table(std::string_view name);
  const Table& table(std::string_view name) const;
  /// Table names in creation order (DatabaseMetaData reflection).
  std::vector<std::string> table_names() const;

  // ----- views ----------------------------------------------------------
  bool has_view(std::string_view name) const;
  /// The stored SELECT text of a view (throws for unknown views).
  const std::string& view_sql(std::string_view name) const;
  std::vector<std::string> view_names() const;

  // ----- transactions ---------------------------------------------------
  void begin();
  void commit();
  void rollback();
  bool in_transaction() const { return in_txn_; }

  /// Flush a snapshot and truncate the WAL (file-backed databases only).
  /// Atomic: the snapshot is written to a temp file, fsynced, and renamed
  /// over the old one (which is kept as snapshot.pdb.prev); a crash at
  /// any point leaves a recoverable store.
  void checkpoint();

  bool is_persistent() const { return wal_ != nullptr; }

  /// What opening this database's files found and did. Empty (clean)
  /// for in-memory databases. Immutable after construction.
  const RecoveryReport& recovery_report() const { return report_; }

  // ----- MVCC snapshots -------------------------------------------------
  /// The snapshot the calling thread should read through: the view its
  /// current statement pinned at start (nested execution — view
  /// expansion, INSERT..SELECT — inherits it), else a fresh view of
  /// everything committed so far, carrying the thread's write-unit token
  /// when it owns one so a writer sees its own pending versions.
  ReadView read_view() const;

  /// Newest published commit timestamp (tests and telemetry).
  std::uint64_t commit_ts() const {
    return commit_ts_.load(std::memory_order_acquire);
  }

  /// Group-commit hand-off: if the thread's last statement deferred its
  /// WAL fsync (see Wal::wait_durable), block until it is durable. Called
  /// by the Connection AFTER releasing the statement's locks, so many
  /// committers can queue behind one leader fsync. ENOSPC degrades the
  /// database to read-only exactly like an inline sync failure.
  void await_durability(StatementContext& ctx);

  /// Reader-writer lock coordinating every Connection over this database.
  /// The Database itself never locks (recursive execution — view
  /// expansion, WAL replay — must not self-deadlock); callers hold the
  /// appropriate lock around execute()/begin()/commit()/checkpoint().
  LockManager& locks() { return locks_; }

  /// Monotonic counter bumped by every DDL statement (CREATE/DROP
  /// TABLE/VIEW/INDEX, ALTER). Connections key their plan caches on it:
  /// a cached statement parsed under an older epoch is re-parsed, so DDL
  /// invalidates every connection's cache without coordination.
  std::uint64_t schema_epoch() const {
    return schema_epoch_.load(std::memory_order_acquire);
  }

  /// Executor strategy switches (see ExecutorTuning). Not synchronized:
  /// toggle only while no query is in flight (tests/benches).
  ExecutorTuning executor_tuning() const { return tuning_; }
  void set_executor_tuning(const ExecutorTuning& tuning) { tuning_ = tuning; }

  // ----- resource governance -------------------------------------------
  /// Admission control for top-level statement units. Disabled unless
  /// configured (PERFDMF_MAX_CONCURRENT_STMTS or governor().configure()).
  AdmissionGovernor& governor() { return governor_; }

  /// Degraded read-only mode. Entered when WAL appends or checkpoints
  /// keep failing with ENOSPC after bounded retries: SELECTs continue,
  /// writes fail fast with DbError{kReadOnly}. Left automatically — a
  /// rate-limited space probe runs on each rejected write — or
  /// explicitly via try_exit_read_only().
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }
  /// Why the database degraded (empty when healthy).
  std::string read_only_reason() const;
  /// Probe for recovered disk space; on success writes are re-enabled.
  /// Returns the post-probe writability. Callers must hold the
  /// exclusive lock (or be single-threaded) like any write.
  bool try_exit_read_only();

  /// The admission slot held by the active transaction's unit. Stored on
  /// the database (not the Connection) because the lock manager lets the
  /// owning thread finish a transaction through any connection. Both are
  /// touched only while holding the exclusive lock.
  void adopt_txn_admission(AdmissionSlot slot) {
    const bool held = slot.held();
    txn_admission_ = std::move(slot);
    txn_intro_.admission_held.store(held, std::memory_order_relaxed);
  }
  void release_txn_admission() {
    txn_admission_.release();
    txn_intro_.admission_held.store(false, std::memory_order_relaxed);
  }

  // ----- introspection --------------------------------------------------
  /// Live registry of currently executing statements (PERFDMF_STATEMENTS).
  StatementRegistry& statements() { return stmt_registry_; }

  /// The WAL, or nullptr for in-memory databases (PERFDMF_WAL).
  Wal* wal() { return wal_.get(); }

  /// Lock-free mirror of the open transaction's state, maintained by the
  /// txn owner (under the writer mutex) and read by the PERFDMF_TRANSACTIONS
  /// materializer from any thread. The mirror exists precisely so
  /// introspection never reads the non-atomic txn fields (in_txn_,
  /// txn_stamps_, ...) the writer mutates.
  struct TxnIntrospection {
    std::atomic<bool> open{false};
    std::atomic<bool> admission_held{false};
    std::atomic<std::uint64_t> token{0};
    std::atomic<std::uint64_t> read_ts{0};      // commit_ts at BEGIN
    std::atomic<std::uint64_t> statements{0};   // DML statements so far
    // mvcc.versions_installed at BEGIN. The open txn holds the writer
    // mutex, so the counter's growth since BEGIN is exactly this txn's
    // installed versions.
    std::atomic<std::uint64_t> versions_base{0};
    std::atomic<std::int64_t> started_unix_ms{0};
  };
  const TxnIntrospection& txn_introspection() const { return txn_intro_; }

 private:
  friend ResultSetData execute_select(Database&, SelectStatement&, const Params&,
                                      ExplainInfo*);

  /// RAII around one DML statement's writes: owns the CommitStamp every
  /// version the statement installs is tagged with. succeed() publishes
  /// it (autocommit) or hands it to the open transaction; destruction
  /// without succeed() aborts it, making the statement's versions
  /// invisible garbage — the MVCC replacement for the old undo log.
  class WriteUnit;

  ResultSetData execute_parsed(Statement& stmt, const Params& params,
                               std::string_view sql);
  ResultSetData dispatch_statement(Statement& stmt, const Params& params,
                                   std::string_view sql);
  std::size_t run_insert(InsertStatement& stmt, const Params& params,
                         CommitStamp* stamp, const ReadView& view);
  std::size_t run_update(UpdateStatement& stmt, const Params& params,
                         CommitStamp* stamp, const ReadView& view);
  std::size_t run_delete(DeleteStatement& stmt, const Params& params,
                         CommitStamp* stamp, const ReadView& view);
  void run_create_table(const CreateTableStatement& stmt);
  void run_drop_table(const DropTableStatement& stmt);
  void run_create_index(const CreateIndexStatement& stmt);
  void run_create_view(const CreateViewStatement& stmt);
  void run_drop_view(const DropViewStatement& stmt);

  void check_foreign_keys_insert(const Table& table, const Row& row,
                                 const ReadView& view);
  void check_foreign_keys_delete(const Table& table, const Row& row,
                                 const ReadView& view);

  /// Reject writes while degraded (after attempting a rate-limited
  /// recovery probe); no-op when healthy or replaying.
  void ensure_writable();
  /// Flip into degraded read-only mode (idempotent; logs + counts).
  void enter_read_only(const std::string& reason);
  /// Run `fn` (a WAL write or checkpoint step); ENOSPC failures are
  /// retried with bounded exponential backoff, then degrade the
  /// database and surface as DbError{kReadOnly}. Other IoErrors pass
  /// through untouched (crash-harness semantics preserved).
  template <typename Fn>
  void governed_durable_write(Fn&& fn, const char* what);

  void log_statement(std::string_view sql, const Params& params);
  /// WAL-log a schema change immediately, bypassing the transaction
  /// buffer (DDL is not undone by rollback, so it must not be lost with
  /// a rolled-back batch).
  void log_ddl(std::string_view sql, const Params& params);

  /// The calling thread's write-unit token (non-zero only for the thread
  /// that owns the active write unit or transaction).
  std::uint64_t self_token() const;
  /// Stamp every pending txn stamp with one fresh commit timestamp and
  /// advance the global counter — the atomic commit point.
  void publish_txn_stamps();
  void abort_txn_stamps();
  /// Mark a stamp aborted and revert its optimistic live-count delta.
  void abort_stamp(CommitStamp* stamp);
  void clear_writer();

  /// Serialize the full store. `watermark` is the highest WAL sequence
  /// number the snapshot subsumes; recovery skips replaying records at
  /// or below it. A trailing "SUM <crc32>" line seals the content.
  std::string render_snapshot(std::uint64_t watermark) const;
  /// Load a snapshot; returns its watermark. Throws ParseError on a bad
  /// checksum or frame; the catalog may be partially populated on throw
  /// (the constructor clears it before falling back).
  std::uint64_t load_snapshot(const std::filesystem::path& path);
  void clear_catalog();

  std::map<std::string, std::unique_ptr<Table>> tables_;  // key: lower name
  std::vector<std::string> table_order_;                  // original names
  std::map<std::string, std::string> views_;              // lower name -> SELECT
  std::vector<std::string> view_order_;

  bool in_txn_ = false;
  std::vector<std::pair<std::string, Params>> txn_wal_buffer_;

  // MVCC state. commit_ts_ is the database-global commit timestamp
  // counter: readers snapshot it lock-free, and only the single write
  // unit (serialized by the writer mutex) advances it. Stamps live in
  // the graveyard until checkpoint GC frees them (vacuum() folds every
  // resolved stamp into the version caches first, so no dangling
  // pointers remain).
  std::atomic<std::uint64_t> commit_ts_{0};
  std::atomic<std::uint64_t> next_token_{1};
  std::uint64_t writer_token_ = 0;  // guarded by the writer mutex
  std::atomic<std::thread::id> writer_thread_{};
  std::vector<CommitStamp*> txn_stamps_;  // pending, in statement order
  std::vector<std::unique_ptr<CommitStamp>> stamp_graveyard_;

  std::unique_ptr<Wal> wal_;
  std::filesystem::path directory_;
  bool replaying_ = false;  // suppress WAL writes during recovery
  RecoveryReport report_;

  void note_schema_change() {
    schema_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::atomic<std::uint64_t> schema_epoch_{0};
  ExecutorTuning tuning_;

  LockManager locks_;

  AdmissionGovernor governor_{AdmissionGovernor::config_from_env()};
  AdmissionSlot txn_admission_;
  StatementRegistry stmt_registry_;
  TxnIntrospection txn_intro_;
  std::atomic<bool> read_only_{false};
  mutable std::mutex read_only_mutex_;  // guards read_only_reason_
  std::string read_only_reason_;
  std::atomic<std::int64_t> last_probe_ms_{0};
};

}  // namespace perfdmf::sqldb
