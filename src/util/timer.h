// Wall-clock timer used by the benchmark harnesses and examples.
#pragma once

#include <chrono>

namespace perfdmf::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace perfdmf::util
