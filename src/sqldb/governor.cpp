#include "sqldb/governor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "telemetry/span.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

namespace {

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const auto parsed = util::parse_int(raw);
  return parsed ? static_cast<int>(*parsed) : fallback;
}

telemetry::Histogram& admission_wait_histogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::instance().histogram(
          "gov.admission.wait_micros");
  return h;
}

}  // namespace

void AdmissionSlot::release() {
  if (gov_ == nullptr) return;
  gov_->release();
  gov_ = nullptr;
}

AdmissionGovernor::Config AdmissionGovernor::config_from_env() {
  Config cfg;
  cfg.max_concurrent = std::max(0, env_int("PERFDMF_MAX_CONCURRENT_STMTS", 0));
  cfg.max_queue = std::max(0, env_int("PERFDMF_ADMISSION_QUEUE", cfg.max_queue));
  cfg.queue_timeout_ms =
      std::max(0, env_int("PERFDMF_ADMISSION_QUEUE_MS", cfg.queue_timeout_ms));
  return cfg;
}

void AdmissionGovernor::configure(const Config& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  cfg_ = cfg;
  limited_.store(cfg_.max_concurrent > 0, std::memory_order_relaxed);
  cv_.notify_all();
}

AdmissionGovernor::Config AdmissionGovernor::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cfg_;
}

int AdmissionGovernor::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionGovernor::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

AdmissionSlot AdmissionGovernor::admit(StatementContext* ctx) {
  if (!limited_.load(std::memory_order_relaxed)) return AdmissionSlot{};

  using Clock = std::chrono::steady_clock;
  // Slots free up and queue heads advance in bounded time, so waiting
  // in short slices keeps cancellation latency low without thundering.
  constexpr auto kSlice = std::chrono::milliseconds(5);

  std::unique_lock<std::mutex> lock(mu_);
  if (cfg_.max_concurrent <= 0) return AdmissionSlot{};  // raced a disable
  if (running_ < cfg_.max_concurrent && queue_.empty()) {
    ++running_;
    return AdmissionSlot{this};
  }
  if (static_cast<int>(queue_.size()) >= cfg_.max_queue) {
    detail::gov_admission_rejected().add();
    std::ostringstream msg;
    msg << "overloaded: " << running_ << " statements executing, "
        << queue_.size() << " queued (admission queue full)";
    throw DbError(msg.str(), DbError::Kind::kOverloaded);
  }

  const std::uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  // Queued: the time from here until admission is governance overhead,
  // not execution — attribute it to the span's admission phase (and flag
  // the live-statement view) instead of letting it hide in the execute
  // remainder.
  telemetry::PhaseTimer admission_timer(telemetry::Phase::kAdmission,
                                        &admission_wait_histogram());
  ScopedPhaseLabel phase_label(ctx, "admission");
  const auto shed_at = Clock::now() + std::chrono::milliseconds(cfg_.queue_timeout_ms);
  auto abandon = [&] {
    queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
    // The head may have changed; wake the queue so the new head can go.
    cv_.notify_all();
  };
  while (!(queue_.front() == ticket && running_ < cfg_.max_concurrent)) {
    cv_.wait_for(lock, kSlice);
    if (cfg_.max_concurrent <= 0) {  // disabled while we waited
      abandon();
      return AdmissionSlot{};
    }
    if (ctx != nullptr) {
      try {
        ctx->check_now();
      } catch (...) {
        abandon();
        throw;
      }
    }
    if (Clock::now() >= shed_at &&
        !(queue_.front() == ticket && running_ < cfg_.max_concurrent)) {
      abandon();
      detail::gov_admission_rejected().add();
      std::ostringstream msg;
      msg << "overloaded: no execution slot within " << cfg_.queue_timeout_ms
          << " ms (queue-deadline shed)";
      throw DbError(msg.str(), DbError::Kind::kOverloaded);
    }
  }
  queue_.pop_front();
  ++running_;
  // Another waiter may be admissible too (slots can outnumber the
  // statements ahead of it in the queue).
  cv_.notify_all();
  return AdmissionSlot{this};
}

void AdmissionGovernor::release() {
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  cv_.notify_all();
}

}  // namespace perfdmf::sqldb
