// Synthetic workload generation.
//
// The paper evaluates PerfDMF on datasets we cannot obtain (Miranda on
// BlueGene/L at 8K/16K processors, EVH1 scaling runs, ASCI Purple sPPM /
// SMG2000 / SPhot with PAPI counters, plus gprof / mpiP / HPMToolkit /
// dynaprof / psrun outputs). These generators synthesize statistically
// realistic stand-ins with controlled structure — load imbalance,
// Amdahl-style scaling, planted behavioural clusters — and can write them
// in every supported on-disk format, so the import -> store -> query ->
// analyze pipeline runs the same code paths at the same scales
// (documented in DESIGN.md, "Substitutions").
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "profile/trial_data.h"

namespace perfdmf::io::synth {

/// Shape of a generated trial.
struct TrialSpec {
  std::string name = "synthetic";
  std::int32_t nodes = 4;
  std::int32_t contexts_per_node = 1;
  std::int32_t threads_per_context = 1;
  /// Interval events, split ~70% computation / 30% MPI by name & group.
  std::size_t event_count = 16;
  /// Metric names; "TIME" is always added first when absent.
  std::vector<std::string> extra_metrics;
  /// Atomic (user-defined) events; 0 disables.
  std::size_t atomic_event_count = 0;
  /// Relative per-thread load imbalance (std dev of a ~N(1, imbalance)
  /// multiplier applied to computation events).
  double imbalance = 0.05;
  /// Also emit TAU-style callpath events ("main => <child>", group
  /// TAU_CALLPATH) alongside every flat child event.
  bool with_callpaths = false;
  /// Base per-event exclusive time, microseconds.
  double base_time_us = 1.0e5;
  std::uint64_t seed = 42;
};

/// Generate a trial with a two-level call tree:
/// main -> { compute_<i> (computation), MPI_* (communication) }.
/// Totals are internally consistent: main.inclusive == sum of children +
/// main.exclusive; percentages/per-call are recomputed at the end.
profile::TrialData generate_trial(const TrialSpec& spec);

/// Strong-scaling family (EVH1-style, paper §5.2): one trial per
/// processor count. Each computation event has its own serial fraction
/// (Amdahl), so per-routine speedups differ; MPI overhead grows mildly
/// with the processor count.
struct ScalingSpec {
  std::string name = "evh1";
  std::size_t routine_count = 12;
  double total_work_us = 6.4e7;  // one-processor total
  /// Serial fraction of routine i ramps linearly from min to max.
  double min_serial_fraction = 0.0;
  double max_serial_fraction = 0.30;
  /// Communication cost per processor doubling, as a fraction of work.
  double comm_fraction = 0.01;
  std::uint64_t seed = 7;
};
profile::TrialData generate_scaling_trial(const ScalingSpec& spec,
                                          std::int32_t processors);

/// Weak-scaling family: the per-processor work stays constant as the
/// processor count grows (the problem grows with the machine), so ideal
/// behaviour is constant time per routine; communication still grows
/// with log2(p), which is what the efficiency analysis should expose.
profile::TrialData generate_weak_scaling_trial(const ScalingSpec& spec,
                                               std::int32_t processors);

/// Clustered multi-metric trial (sPPM-style, paper §5.3): threads belong
/// to `cluster_count` behavioural clusters; each cluster has a distinct
/// signature across the PAPI-like metrics so that k-means can recover the
/// planted structure. Returns the trial plus the ground-truth assignment.
struct ClusterSpec {
  std::string name = "sppm";
  std::int32_t threads = 256;
  std::size_t event_count = 24;
  std::size_t metric_count = 7;  // "up to 7 PAPI hardware counters"
  std::size_t cluster_count = 3;
  double cluster_separation = 6.0;  // signature distance in noise std-devs
  std::uint64_t seed = 1234;
};
struct ClusteredTrial {
  profile::TrialData trial;
  std::vector<std::size_t> ground_truth;  // thread index -> cluster id
};
ClusteredTrial generate_clustered_trial(const ClusterSpec& spec);

// ---- on-disk emission ----------------------------------------------------
// Each writer produces files the corresponding importer parses. For
// single-process formats (gprof) only thread 0:0:0 is written.

void write_as_tau(const profile::TrialData& trial,
                  const std::filesystem::path& directory);
void write_as_gprof(const profile::TrialData& trial,
                    const std::filesystem::path& file);
void write_as_mpip(const profile::TrialData& trial,
                   const std::filesystem::path& file);
/// One file per thread: <dir>/dynaprof.<rank>.<thread>.txt
void write_as_dynaprof(const profile::TrialData& trial,
                       const std::filesystem::path& directory,
                       const std::string& metric_name = "TIME");
/// One file per process: <dir>/hpm_<rank>.txt
void write_as_hpm(const profile::TrialData& trial,
                  const std::filesystem::path& directory);
/// One file per process: <dir>/psrun.<rank>.xml
void write_as_psrun(const profile::TrialData& trial,
                    const std::filesystem::path& directory);

/// A trial shaped for mpiP emission (Application + MPI callsites only).
profile::TrialData generate_mpip_style_trial(const TrialSpec& spec);
/// A trial shaped for psrun emission (one whole-program event, counters).
profile::TrialData generate_psrun_style_trial(const TrialSpec& spec);

}  // namespace perfdmf::io::synth
