file(REMOVE_RECURSE
  "CMakeFiles/test_io_synth.dir/test_io_synth.cpp.o"
  "CMakeFiles/test_io_synth.dir/test_io_synth.cpp.o.d"
  "test_io_synth"
  "test_io_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
