#include "analysis/comparison.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/error.h"

namespace perfdmf::analysis {

ComparisonReport compare_trials(const std::vector<const profile::TrialData*>& trials,
                                const std::string& metric_name) {
  if (trials.empty()) throw InvalidArgument("compare_trials: no trials given");

  ComparisonReport report;
  std::map<std::string, std::vector<double>> by_event;

  for (std::size_t i = 0; i < trials.size(); ++i) {
    const profile::TrialData& trial = *trials[i];
    report.trial_names.push_back(trial.trial().name);
    auto metric = trial.find_metric(metric_name);
    if (!metric) {
      throw InvalidArgument("trial '" + trial.trial().name + "' has no metric '" +
                            metric_name + "'");
    }
    std::map<std::string, double> sums;
    std::map<std::string, std::size_t> counts;
    trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t m,
                                const profile::IntervalDataPoint& p) {
      if (m != *metric) return;
      sums[trial.events()[e].name] += p.exclusive;
      ++counts[trial.events()[e].name];
    });
    for (const auto& [name, total] : sums) {
      auto& row = by_event[name];
      row.resize(trials.size(), -1.0);
      row[i] = total / static_cast<double>(counts[name]);
    }
  }

  for (auto& [name, values] : by_event) {
    values.resize(trials.size(), -1.0);
    ComparisonRow row;
    row.event_name = name;
    row.mean_exclusive = values;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const bool valid = values[0] > 0.0 && values[i] >= 0.0;
      row.ratio_to_first.push_back(valid ? values[i] / values[0] : -1.0);
    }
    report.rows.push_back(std::move(row));
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const ComparisonRow& a, const ComparisonRow& b) {
              return a.mean_exclusive[0] > b.mean_exclusive[0];
            });
  return report;
}

std::string format_comparison_table(const ComparisonReport& report) {
  std::string out = "event";
  for (const auto& name : report.trial_names) {
    out += "\t" + name + "\tratio";
  }
  out += "\n";
  char buffer[64];
  for (const auto& row : report.rows) {
    out += row.event_name;
    for (std::size_t i = 0; i < row.mean_exclusive.size(); ++i) {
      std::snprintf(buffer, sizeof buffer, "\t%.4g\t%.3f", row.mean_exclusive[i],
                    row.ratio_to_first[i]);
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

}  // namespace perfdmf::analysis
