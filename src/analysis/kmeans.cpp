#include "analysis/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "analysis/stats.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace perfdmf::analysis {

namespace {

std::span<const double> row_of(const std::vector<double>& data, std::size_t row,
                               std::size_t dims) {
  return {data.data() + row * dims, dims};
}

/// k-means++ seeding: first centroid uniform, then proportional to D^2.
std::vector<std::vector<double>> seed_centroids(const std::vector<double>& data,
                                                std::size_t rows, std::size_t dims,
                                                std::size_t k, util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  const std::size_t first = rng.next_below(rows);
  auto first_row = row_of(data, first, dims);
  centroids.emplace_back(first_row.begin(), first_row.end());

  std::vector<double> best_distance(rows, std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double d =
          squared_distance(row_of(data, r, dims), centroids.back());
      best_distance[r] = std::min(best_distance[r], d);
      total += best_distance[r];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t r = 0; r < rows; ++r) {
        target -= best_distance[r];
        if (target <= 0.0) {
          chosen = r;
          break;
        }
      }
    } else {
      chosen = rng.next_below(rows);  // all points identical
    }
    auto chosen_row = row_of(data, chosen, dims);
    centroids.emplace_back(chosen_row.begin(), chosen_row.end());
  }
  return centroids;
}

KMeansResult run_once(const std::vector<double>& data, std::size_t rows,
                      std::size_t dims, std::size_t k, const KMeansOptions& options,
                      util::Rng& rng) {
  KMeansResult result;
  result.centroids = seed_centroids(data, rows, dims, k, rng);
  result.assignment.assign(rows, 0);

  auto assign_point = [&](std::size_t r) {
    auto row = row_of(data, r, dims);
    double best = std::numeric_limits<double>::max();
    std::size_t best_cluster = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(row, result.centroids[c]);
      if (d < best) {
        best = d;
        best_cluster = c;
      }
    }
    result.assignment[r] = best_cluster;
  };

  for (std::size_t iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Assignment step (parallel: rows are independent).
    if (options.parallel && rows >= 1024) {
      util::default_pool().parallel_for(0, rows, assign_point);
    } else {
      for (std::size_t r = 0; r < rows; ++r) assign_point(r);
    }

    // Update step.
    std::vector<std::vector<double>> fresh(k, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> sizes(k, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t c = result.assignment[r];
      ++sizes[c];
      auto row = row_of(data, r, dims);
      for (std::size_t d = 0; d < dims; ++d) fresh[c][d] += row[d];
    }
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) {
        // Empty cluster: reseed at the point farthest from its centroid.
        double farthest = -1.0;
        std::size_t victim = 0;
        for (std::size_t r = 0; r < rows; ++r) {
          const double d = squared_distance(
              row_of(data, r, dims), result.centroids[result.assignment[r]]);
          if (d > farthest) {
            farthest = d;
            victim = r;
          }
        }
        auto row = row_of(data, victim, dims);
        fresh[c].assign(row.begin(), row.end());
        sizes[c] = 1;
      } else {
        for (std::size_t d = 0; d < dims; ++d) {
          fresh[c][d] /= static_cast<double>(sizes[c]);
        }
      }
      movement += squared_distance(fresh[c], result.centroids[c]);
      result.centroids[c] = std::move(fresh[c]);
    }
    result.cluster_sizes = std::move(sizes);
    if (movement <= options.tolerance) break;
  }

  // Final assignment + inertia with the settled centroids.
  result.inertia = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    assign_point(r);
    result.inertia += squared_distance(row_of(data, r, dims),
                                       result.centroids[result.assignment[r]]);
  }
  result.cluster_sizes.assign(k, 0);
  for (std::size_t c : result.assignment) ++result.cluster_sizes[c];
  return result;
}

}  // namespace

KMeansResult kmeans(const std::vector<double>& data, std::size_t rows,
                    std::size_t dims, const KMeansOptions& options) {
  if (rows == 0 || dims == 0 || data.size() != rows * dims) {
    throw InvalidArgument("kmeans: bad matrix shape");
  }
  if (options.k == 0) throw InvalidArgument("kmeans: k must be positive");
  const std::size_t k = std::min(options.k, rows);

  util::Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  for (std::size_t restart = 0; restart < restarts; ++restart) {
    KMeansResult candidate = run_once(data, rows, dims, k, options, rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

ThreadFeatureMatrix thread_features(const profile::TrialData& trial,
                                    bool normalize) {
  ThreadFeatureMatrix m;
  m.rows = trial.threads().size();
  const std::size_t n_events = trial.events().size();
  const std::size_t n_metrics = trial.metrics().size();

  // Determine which (event, metric) columns actually have data anywhere.
  std::vector<bool> present(n_events * n_metrics, false);
  trial.for_each_interval([&](std::size_t e, std::size_t, std::size_t mt,
                              const profile::IntervalDataPoint&) {
    present[e * n_metrics + mt] = true;
  });
  std::vector<std::size_t> column_of(n_events * n_metrics,
                                     static_cast<std::size_t>(-1));
  for (std::size_t em = 0; em < present.size(); ++em) {
    if (!present[em]) continue;
    column_of[em] = m.cols++;
    m.column_names.push_back(trial.events()[em / n_metrics].name + " / " +
                             trial.metrics()[em % n_metrics].name);
  }

  m.values.assign(m.rows * m.cols, 0.0);
  trial.for_each_interval([&](std::size_t e, std::size_t t, std::size_t mt,
                              const profile::IntervalDataPoint& p) {
    const std::size_t column = column_of[e * n_metrics + mt];
    m.values[t * m.cols + column] = p.exclusive;
  });

  if (normalize && m.rows > 0 && m.cols > 0) {
    zscore_columns(m.values, m.rows, m.cols);
  }
  return m;
}

std::vector<std::vector<double>> summarize_clusters(const ThreadFeatureMatrix& m,
                                                    const KMeansResult& result) {
  const std::size_t k = result.centroids.size();
  std::vector<std::vector<double>> means(k, std::vector<double>(m.cols, 0.0));
  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t r = 0; r < m.rows; ++r) {
    const std::size_t c = result.assignment[r];
    ++sizes[c];
    for (std::size_t d = 0; d < m.cols; ++d) {
      means[c][d] += m.values[r * m.cols + d];
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (sizes[c] == 0) continue;
    for (double& v : means[c]) v /= static_cast<double>(sizes[c]);
  }
  return means;
}

double adjusted_rand_index(const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("adjusted_rand_index: size mismatch");
  }
  // Contingency table.
  std::map<std::pair<std::size_t, std::size_t>, double> table;
  std::map<std::size_t, double> row_sums;
  std::map<std::size_t, double> col_sums;
  for (std::size_t i = 0; i < a.size(); ++i) {
    table[{a[i], b[i]}] += 1.0;
    row_sums[a[i]] += 1.0;
    col_sums[b[i]] += 1.0;
  }
  auto choose2 = [](double n) { return n * (n - 1.0) / 2.0; };
  double sum_table = 0.0;
  for (const auto& [key, n] : table) sum_table += choose2(n);
  double sum_rows = 0.0;
  for (const auto& [key, n] : row_sums) sum_rows += choose2(n);
  double sum_cols = 0.0;
  for (const auto& [key, n] : col_sums) sum_cols += choose2(n);
  const double total = choose2(static_cast<double>(a.size()));
  const double expected = sum_rows * sum_cols / total;
  const double maximum = 0.5 * (sum_rows + sum_cols);
  if (maximum == expected) return 1.0;  // degenerate: single cluster each
  return (sum_table - expected) / (maximum - expected);
}

}  // namespace perfdmf::analysis
