// Tests for the analysis toolkit: descriptive stats, comparison, speedup,
// scalability models.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/comparison.h"
#include "analysis/scalability.h"
#include "analysis/speedup.h"
#include "analysis/stats.h"
#include "io/synth.h"
#include "util/error.h"

using namespace perfdmf;
using namespace perfdmf::analysis;

// ------------------------------------------------------------------- stats

TEST(Stats, DescribeBasics) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  auto d = describe(values);
  EXPECT_EQ(d.count, 8u);
  EXPECT_DOUBLE_EQ(d.minimum, 2.0);
  EXPECT_DOUBLE_EQ(d.maximum, 9.0);
  EXPECT_DOUBLE_EQ(d.mean, 5.0);
  EXPECT_DOUBLE_EQ(d.sum, 40.0);
  EXPECT_NEAR(d.std_dev, std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
}

TEST(Stats, DescribeEmptyAndSingle) {
  EXPECT_EQ(describe({}).count, 0u);
  auto d = describe(std::vector<double>{3.0});
  EXPECT_EQ(d.count, 1u);
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.std_dev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 2.5);
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile(values, 1.5), InvalidArgument);
}

TEST(Stats, PearsonPerfectAndAnti) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  const std::vector<double> constant{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);  // degenerate
}

TEST(Stats, ZscoreColumns) {
  std::vector<double> m{1.0, 10.0, 2.0, 20.0, 3.0, 30.0};  // 3x2
  zscore_columns(m, 3, 2);
  // Each column now has mean 0.
  EXPECT_NEAR(m[0] + m[2] + m[4], 0.0, 1e-12);
  EXPECT_NEAR(m[1] + m[3] + m[5], 0.0, 1e-12);
  // And sample stddev 1: values -1, 0, 1.
  EXPECT_NEAR(m[0], -1.0, 1e-12);
  EXPECT_NEAR(m[4], 1.0, 1e-12);
}

TEST(Stats, ZscoreZeroVarianceColumnBecomesZero) {
  std::vector<double> m{5.0, 5.0, 5.0};  // 3x1 constant
  zscore_columns(m, 3, 1);
  for (double v : m) EXPECT_DOUBLE_EQ(v, 0.0);
}

// -------------------------------------------------------------- comparison

TEST(Comparison, AlignsEventsAcrossTrials) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 4;
  auto a = io::synth::generate_trial(spec);
  spec.base_time_us *= 2.0;  // second trial twice as slow
  spec.seed = 43;
  auto b = io::synth::generate_trial(spec);
  a.trial().name = "fast";
  b.trial().name = "slow";

  auto report = compare_trials({&a, &b});
  EXPECT_EQ(report.trial_names, (std::vector<std::string>{"fast", "slow"}));
  ASSERT_EQ(report.rows.size(), 4u);
  // Sorted descending by the first trial's value.
  for (std::size_t i = 1; i < report.rows.size(); ++i) {
    EXPECT_GE(report.rows[i - 1].mean_exclusive[0],
              report.rows[i].mean_exclusive[0]);
  }
  // Ratio around 2 for every aligned event.
  for (const auto& row : report.rows) {
    EXPECT_NEAR(row.ratio_to_first[1], 2.0, 0.3);
    EXPECT_DOUBLE_EQ(row.ratio_to_first[0], 1.0);
  }
}

TEST(Comparison, MissingEventGetsSentinel) {
  profile::TrialData a;
  profile::TrialData b;
  for (auto* trial : {&a, &b}) {
    const std::size_t m = trial->intern_metric("TIME");
    const std::size_t t = trial->intern_thread({0, 0, 0});
    const std::size_t e = trial->intern_event("shared");
    profile::IntervalDataPoint p;
    p.exclusive = 10.0;
    trial->set_interval_data(e, t, m, p);
  }
  const std::size_t only_b = b.intern_event("only_in_b");
  profile::IntervalDataPoint p;
  p.exclusive = 5.0;
  b.set_interval_data(only_b, 0, 0, p);

  auto report = compare_trials({&a, &b});
  ASSERT_EQ(report.rows.size(), 2u);
  bool found = false;
  for (const auto& row : report.rows) {
    if (row.event_name == "only_in_b") {
      EXPECT_DOUBLE_EQ(row.mean_exclusive[0], -1.0);
      EXPECT_DOUBLE_EQ(row.ratio_to_first[1], -1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Comparison, ErrorsOnBadInput) {
  EXPECT_THROW(compare_trials({}), InvalidArgument);
  profile::TrialData no_metric;
  EXPECT_THROW(compare_trials({&no_metric}, "TIME"), InvalidArgument);
}

TEST(Comparison, FormatsTable) {
  io::synth::TrialSpec spec;
  auto a = io::synth::generate_trial(spec);
  auto report = compare_trials({&a});
  const std::string table = format_comparison_table(report);
  EXPECT_NE(table.find("event"), std::string::npos);
  EXPECT_NE(table.find("main"), std::string::npos);
}

// ------------------------------------------------------------------ speedup

namespace {

std::vector<profile::TrialData> scaling_family(std::vector<std::int32_t> procs) {
  std::vector<profile::TrialData> out;
  io::synth::ScalingSpec spec;
  for (auto p : procs) out.push_back(io::synth::generate_scaling_trial(spec, p));
  return out;
}

}  // namespace

TEST(Speedup, PerfectRoutineScalesNearLinearly) {
  auto family = scaling_family({1, 4, 16});
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials;
  std::int32_t procs[] = {1, 4, 16};
  for (std::size_t i = 0; i < family.size(); ++i) {
    trials.emplace_back(procs[i], &family[i]);
  }
  auto report = compute_speedup(trials);
  EXPECT_EQ(report.base_processors, 1);

  // hydro_sweep has serial fraction 0 -> speedup ~ p.
  const RoutineSpeedup* hydro = nullptr;
  for (const auto& routine : report.routines) {
    if (routine.event_name == "hydro_sweep") hydro = &routine;
  }
  ASSERT_NE(hydro, nullptr);
  ASSERT_EQ(hydro->points.size(), 3u);
  EXPECT_NEAR(hydro->points[2].mean_speedup, 16.0, 2.0);
  EXPECT_GE(hydro->points[2].max_speedup, hydro->points[2].mean_speedup);
  EXPECT_LE(hydro->points[2].min_speedup, hydro->points[2].mean_speedup);
  EXPECT_NEAR(hydro->points[2].efficiency, 1.0, 0.15);
}

TEST(Speedup, SerialRoutineSaturates) {
  auto family = scaling_family({1, 16});
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {1, &family[0]}, {16, &family[1]}};
  auto report = compute_speedup(trials);
  const RoutineSpeedup* remap = nullptr;  // highest serial fraction
  for (const auto& routine : report.routines) {
    if (routine.event_name == "remap") remap = &routine;
  }
  ASSERT_NE(remap, nullptr);
  EXPECT_LT(remap->points[1].mean_speedup, 4.0);
  EXPECT_LT(remap->points[1].efficiency, 0.3);
}

TEST(Speedup, ApplicationSpeedupUsesLargestInclusive) {
  auto family = scaling_family({1, 4});
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {1, &family[0]}, {4, &family[1]}};
  auto report = compute_speedup(trials);
  EXPECT_EQ(report.application.event_name, "main");
  ASSERT_EQ(report.application.points.size(), 2u);
  EXPECT_GT(report.application.points[1].mean_speedup, 1.5);
  EXPECT_LE(report.application.points[1].mean_speedup, 4.2);
}

TEST(Speedup, NeedsTwoTrials) {
  auto family = scaling_family({1});
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {1, &family[0]}};
  EXPECT_THROW(compute_speedup(trials), InvalidArgument);
}

TEST(Speedup, MissingMetricThrows) {
  auto family = scaling_family({1, 2});
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {1, &family[0]}, {2, &family[1]}};
  EXPECT_THROW(compute_speedup(trials, "PAPI_FP_OPS"), InvalidArgument);
}

TEST(Speedup, FormatTableContainsRoutines) {
  auto family = scaling_family({1, 4});
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {1, &family[0]}, {4, &family[1]}};
  const std::string table = format_speedup_table(compute_speedup(trials));
  EXPECT_NE(table.find("hydro_sweep"), std::string::npos);
  EXPECT_NE(table.find("main"), std::string::npos);
  EXPECT_NE(table.find("eff"), std::string::npos);
}

// --------------------------------------------------------------- scalability

TEST(Amdahl, RecoversKnownSerialFraction) {
  // T(p) = 100 * (0.2 + 0.8/p)
  std::vector<ScalingObservation> observations;
  for (std::int64_t p : {1, 2, 4, 8, 16, 32}) {
    observations.push_back({p, 100.0 * (0.2 + 0.8 / static_cast<double>(p))});
  }
  auto fit = fit_amdahl(observations);
  EXPECT_NEAR(fit.t1, 100.0, 1e-9);
  EXPECT_NEAR(fit.serial_fraction, 0.2, 1e-9);
  EXPECT_NEAR(fit.max_speedup(), 5.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(64), 100.0 * (0.2 + 0.8 / 64.0), 1e-9);
}

TEST(Amdahl, PerfectScalingHasInfiniteBound) {
  std::vector<ScalingObservation> observations;
  for (std::int64_t p : {1, 2, 4, 8}) {
    observations.push_back({p, 64.0 / static_cast<double>(p)});
  }
  auto fit = fit_amdahl(observations);
  EXPECT_NEAR(fit.serial_fraction, 0.0, 1e-9);
  EXPECT_TRUE(std::isinf(fit.max_speedup()));
}

TEST(Amdahl, RejectsDegenerateInput) {
  EXPECT_THROW(fit_amdahl({}), InvalidArgument);
  EXPECT_THROW(fit_amdahl({{4, 10.0}}), InvalidArgument);
  EXPECT_THROW(fit_amdahl({{4, 10.0}, {4, 11.0}}), InvalidArgument);
  EXPECT_THROW(fit_amdahl({{0, 10.0}, {2, 5.0}}), InvalidArgument);
  auto fit = fit_amdahl({{1, 10.0}, {2, 5.0}});
  EXPECT_THROW(fit.predict(0), InvalidArgument);
}

TEST(ClassifyScaling, Categories) {
  EXPECT_EQ(classify_scaling({{1, 100}, {2, 50}, {4, 25}}), "linear");
  EXPECT_EQ(classify_scaling({{1, 100}, {4, 40}}), "sublinear");
  EXPECT_EQ(classify_scaling({{1, 100}, {16, 50}}), "saturating");
  EXPECT_EQ(classify_scaling({{1, 100}, {2, 60}, {4, 80}}), "degrading");
  EXPECT_EQ(classify_scaling({{1, 100}}), "unknown");
}

TEST(CommModel, RecoversKnownCoefficients) {
  // T(p) = 10 + 1000/p + 4*log2(p)
  std::vector<ScalingObservation> observations;
  for (std::int64_t p : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double dp = static_cast<double>(p);
    observations.push_back({p, 10.0 + 1000.0 / dp + 4.0 * std::log2(dp)});
  }
  auto fit = fit_comm_model(observations);
  EXPECT_NEAR(fit.serial, 10.0, 1e-6);
  EXPECT_NEAR(fit.work, 1000.0, 1e-6);
  EXPECT_NEAR(fit.comm, 4.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(256), 10.0 + 1000.0 / 256.0 + 4.0 * 8.0, 1e-6);
  // Optimum at work*ln2/comm = 1000*0.693/4 ~ 173.
  EXPECT_NEAR(fit.optimal_processors(), 1000.0 * std::log(2.0) / 4.0, 1e-6);
}

TEST(CommModel, PureAmdahlHasNoCommTerm) {
  std::vector<ScalingObservation> observations;
  for (std::int64_t p : {1, 2, 4, 8, 16}) {
    observations.push_back({p, 100.0 * (0.1 + 0.9 / static_cast<double>(p))});
  }
  auto fit = fit_comm_model(observations);
  EXPECT_NEAR(fit.comm, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(fit.optimal_processors(), 0.0);  // always improves
}

TEST(CommModel, RejectsTooFewCounts) {
  EXPECT_THROW(fit_comm_model({{1, 10.0}, {2, 6.0}}), InvalidArgument);
  EXPECT_THROW(fit_comm_model({{2, 6.0}, {2, 6.1}, {2, 6.2}}), InvalidArgument);
  EXPECT_THROW(fit_comm_model({{0, 1.0}, {2, 1.0}, {4, 1.0}}), InvalidArgument);
}

TEST(CommModel, FitsSyntheticScalingFamily) {
  // The synthetic generator has comm growing with log2(p); the model
  // should attribute positive comm and near-total work to MPI_Allreduce.
  std::vector<ScalingObservation> observations;
  io::synth::ScalingSpec spec;
  for (std::int32_t p : {1, 2, 4, 8, 16, 32}) {
    auto trial = io::synth::generate_scaling_trial(spec, p);
    const std::size_t metric = *trial.find_metric("TIME");
    const std::size_t main_event = *trial.find_event("main");
    double sum = 0.0;
    for (std::size_t t = 0; t < trial.threads().size(); ++t) {
      sum += trial.interval_data(main_event, t, metric)->inclusive;
    }
    observations.push_back({p, sum / static_cast<double>(trial.threads().size())});
  }
  auto fit = fit_comm_model(observations);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_GT(fit.work, 0.0);
}

TEST(WeakScaling, ComputeRoutinesStayNearIdealCommDecays) {
  io::synth::ScalingSpec spec;
  std::vector<profile::TrialData> family;
  for (std::int32_t p : {1, 4, 16, 64}) {
    family.push_back(io::synth::generate_weak_scaling_trial(spec, p));
  }
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials;
  std::int32_t procs[] = {1, 4, 16, 64};
  for (std::size_t i = 0; i < family.size(); ++i) {
    trials.emplace_back(procs[i], &family[i]);
  }
  auto report = compute_weak_scaling(trials);
  EXPECT_EQ(report.base_processors, 1);

  const WeakScalingReport::Row* compute = nullptr;
  const WeakScalingReport::Row* comm = nullptr;
  for (const auto& row : report.routines) {
    if (row.event_name == "hydro_sweep") compute = &row;
    if (row.event_name == "MPI_Allreduce()") comm = &row;
  }
  ASSERT_NE(compute, nullptr);
  ASSERT_NE(comm, nullptr);
  // Compute work per processor is constant: efficiency ~ 1 at 64p.
  ASSERT_EQ(compute->efficiency.size(), 4u);
  EXPECT_NEAR(compute->efficiency.back().second, 1.0, 0.1);
  // Communication grows with log2(p): efficiency well below 1 at 64p
  // (the generator gives the base count a latency floor, so the ratio is
  // defined everywhere).
  ASSERT_EQ(comm->efficiency.size(), 4u);
  EXPECT_LT(comm->efficiency.back().second, 0.6);
}

TEST(WeakScaling, RejectsSingleTrial) {
  io::synth::ScalingSpec spec;
  auto only = io::synth::generate_weak_scaling_trial(spec, 4);
  std::vector<std::pair<std::int64_t, const profile::TrialData*>> trials{
      {4, &only}};
  EXPECT_THROW(compute_weak_scaling(trials), InvalidArgument);
}

TEST(WeakScaling, GeneratorKeepsPerProcessorWorkConstant) {
  io::synth::ScalingSpec spec;
  auto small = io::synth::generate_weak_scaling_trial(spec, 2);
  auto large = io::synth::generate_weak_scaling_trial(spec, 32);
  const std::size_t ms = *small.find_metric("TIME");
  const std::size_t ml = *large.find_metric("TIME");
  const std::size_t es = *small.find_event("hydro_sweep");
  const std::size_t el = *large.find_event("hydro_sweep");
  const double a = small.interval_data(es, 0, ms)->exclusive;
  const double b = large.interval_data(el, 0, ml)->exclusive;
  EXPECT_NEAR(b / a, 1.0, 0.1);  // same per-rank work
}
