file(REMOVE_RECURSE
  "CMakeFiles/perfdmf_xml.dir/xml/xml_parser.cpp.o"
  "CMakeFiles/perfdmf_xml.dir/xml/xml_parser.cpp.o.d"
  "CMakeFiles/perfdmf_xml.dir/xml/xml_writer.cpp.o"
  "CMakeFiles/perfdmf_xml.dir/xml/xml_writer.cpp.o.d"
  "libperfdmf_xml.a"
  "libperfdmf_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdmf_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
