#include "sqldb/statement_context.h"

#include <sstream>

#include "util/error.h"

namespace perfdmf::sqldb {

namespace {
thread_local StatementContext* t_current = nullptr;
}  // namespace

StatementContext* StatementContext::current() { return t_current; }

void StatementContext::check_now() {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    // Consume the flag: the cancellation applies to this statement; the
    // connection remains usable for the next one.
    cancel->store(false, std::memory_order_relaxed);
    detail::gov_cancellations().add();
    throw DbError("statement cancelled", DbError::Kind::kCancelled);
  }
  if (deadline.expired()) {
    detail::gov_timeouts().add();
    throw DbError("statement timeout exceeded", DbError::Kind::kTimeout);
  }
}

bool StatementContext::charge(std::uint64_t bytes) {
  mem_used_ += bytes;
  if (mem_hard_bytes != 0 && mem_used_ > mem_hard_bytes) {
    std::ostringstream msg;
    msg << "statement memory hard cap exceeded (" << mem_used_ << " > "
        << mem_hard_bytes << " bytes)";
    throw DbError(msg.str(), DbError::Kind::kMemBudget);
  }
  return mem_soft_bytes == 0 || mem_used_ <= mem_soft_bytes;
}

void StatementContext::note_mem_degraded() {
  if (mem_degraded_) return;  // count once per statement
  mem_degraded_ = true;
  detail::gov_mem_degraded().add();
}

ScopedStatementContext::ScopedStatementContext(StatementContext& ctx)
    : prev_(t_current) {
  t_current = &ctx;
}

ScopedStatementContext::~ScopedStatementContext() { t_current = prev_; }

}  // namespace perfdmf::sqldb
