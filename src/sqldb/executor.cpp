#include "sqldb/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "sqldb/database.h"
#include "util/error.h"
#include "util/strings.h"

namespace perfdmf::sqldb {

namespace {

// ------------------------------------------------------------ planning

/// A simple index-usable predicate: column (by resolved index) op constant.
struct IndexPredicate {
  std::size_t column = 0;
  std::string op;  // "=", "<", "<=", ">", ">="
  Value value;
};

bool is_constant_expr(const Expr& e) {
  return e.kind == ExprKind::kLiteral || e.kind == ExprKind::kPlaceholder;
}

Value const_value(const Expr& e, const Params& params) {
  if (e.kind == ExprKind::kLiteral) return e.literal;
  if (e.placeholder_index >= params.size()) {
    throw DbError("missing bind parameter " + std::to_string(e.placeholder_index + 1));
  }
  return params[e.placeholder_index];
}

/// Walk the AND-conjunction tree of a bound WHERE clause collecting
/// predicates an index can serve. `max_column` restricts to base-table
/// columns (resolved indexes below it).
void collect_index_predicates(const Expr& e, const Params& params,
                              std::size_t max_column,
                              std::vector<IndexPredicate>& out) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    collect_index_predicates(*e.children[0], params, max_column, out);
    collect_index_predicates(*e.children[1], params, max_column, out);
    return;
  }
  if (e.kind == ExprKind::kBetween && !e.negated &&
      e.children[0]->kind == ExprKind::kColumnRef &&
      e.children[0]->resolved_index < max_column &&
      is_constant_expr(*e.children[1]) && is_constant_expr(*e.children[2])) {
    out.push_back({e.children[0]->resolved_index, ">=",
                   const_value(*e.children[1], params)});
    out.push_back({e.children[0]->resolved_index, "<=",
                   const_value(*e.children[2], params)});
    return;
  }
  if (e.kind != ExprKind::kBinary) return;
  static const char* kOps[] = {"=", "<", "<=", ">", ">="};
  bool usable = false;
  for (const char* op : kOps) {
    if (e.op == op) usable = true;
  }
  if (!usable) return;
  const Expr* lhs = e.children[0].get();
  const Expr* rhs = e.children[1].get();
  std::string op = e.op;
  if (lhs->kind != ExprKind::kColumnRef && rhs->kind == ExprKind::kColumnRef) {
    std::swap(lhs, rhs);  // constant op column -> column (flipped op) constant
    if (op == "<") op = ">";
    else if (op == "<=") op = ">=";
    else if (op == ">") op = "<";
    else if (op == ">=") op = "<=";
  }
  if (lhs->kind == ExprKind::kColumnRef && lhs->resolved_index < max_column &&
      is_constant_expr(*rhs)) {
    out.push_back({lhs->resolved_index, op, const_value(*rhs, params)});
  }
}

/// Split an AND-conjunction tree into its conjuncts (pointers into the
/// tree). A non-AND expression is a single conjunct.
void split_conjuncts(Expr& e, std::vector<Expr*>& out) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    split_conjuncts(*e.children[0], out);
    split_conjuncts(*e.children[1], out);
    return;
  }
  out.push_back(&e);
}

}  // namespace

std::vector<RowId> collect_candidates(const Table& table, const Expr* bound_where,
                                      const Params& params) {
  std::vector<RowId> all;
  if (bound_where != nullptr) {
    std::vector<IndexPredicate> predicates;
    collect_index_predicates(*bound_where, params, table.schema().columns().size(),
                             predicates);
    // Prefer an equality on an indexed column; else try to assemble a range.
    for (const auto& p : predicates) {
      if (p.op == "=" && table.has_index(p.column)) {
        if (auto hits = table.index_equal(p.column, p.value)) return *hits;
      }
    }
    // Range: combine lo/hi bounds on the same indexed column.
    for (const auto& p : predicates) {
      if (!table.has_index(p.column)) continue;
      std::optional<Value> lo;
      std::optional<Value> hi;
      for (const auto& q : predicates) {
        if (q.column != p.column) continue;
        if (q.op == ">" || q.op == ">=") {
          if (!lo || q.value > *lo) lo = q.value;
        } else if (q.op == "<" || q.op == "<=") {
          if (!hi || q.value < *hi) hi = q.value;
        }
      }
      if (lo || hi) {
        if (auto hits = table.index_range(p.column, lo, hi)) return *hits;
      }
    }
  }
  table.scan([&](RowId id, const Row&) { all.push_back(id); });
  return all;
}

namespace {

// ------------------------------------------------------- aggregation

struct Accumulator {
  const Expr* node = nullptr;  // the aggregate call in the tree
  std::int64_t count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;
  std::int64_t int_sum = 0;
  bool all_int = true;
  bool any = false;
  Value min;
  Value max;
  std::set<Value> distinct;  // for COUNT(DISTINCT x)

  void add(const Value& v) {
    if (v.is_null()) return;
    any = true;
    ++count;
    if (node->distinct) distinct.insert(v);
    if (v.type() == ValueType::kInt) {
      int_sum += v.as_int();
    } else {
      all_int = false;
    }
    if (v.type() == ValueType::kInt || v.type() == ValueType::kReal) {
      const double d = v.as_real();
      sum += d;
      sum_squares += d * d;
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
  }

  Value result() const {
    const std::string& name = node->function_name;
    if (name == "COUNT") {
      return Value(node->distinct ? static_cast<std::int64_t>(distinct.size())
                                  : count);
    }
    if (!any) return Value();  // SUM/AVG/MIN/MAX/STDDEV over no rows is NULL
    if (name == "SUM") return all_int ? Value(int_sum) : Value(sum);
    if (name == "AVG") return Value(sum / static_cast<double>(count));
    if (name == "MIN") return min;
    if (name == "MAX") return max;
    if (name == "STDDEV" || name == "VARIANCE") {
      if (count < 2) return Value();
      const double n = static_cast<double>(count);
      const double variance = (sum_squares - sum * sum / n) / (n - 1.0);
      const double clamped = variance < 0.0 ? 0.0 : variance;  // fp noise
      return Value(name == "VARIANCE" ? clamped : std::sqrt(clamped));
    }
    throw DbError("unknown aggregate " + name);
  }
};

/// RAII: rewrite aggregate nodes to literals for one evaluation, restore.
class AggregateRewrite {
 public:
  AggregateRewrite(const std::vector<Expr*>& nodes, const std::vector<Value>& values) {
    nodes_ = nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->kind = ExprKind::kLiteral;
      nodes[i]->literal = values[i];
    }
  }
  ~AggregateRewrite() {
    for (Expr* node : nodes_) node->kind = ExprKind::kFunction;
  }

 private:
  std::vector<Expr*> nodes_;
};

struct WorkingSet {
  std::vector<BoundColumn> layout;
  std::vector<Row> rows;
  /// Tables materialized from views for the duration of this query.
  std::vector<std::unique_ptr<Table>> owned_tables;
};

/// Resolve a FROM/JOIN name: a real table directly, or a view materialized
/// into a temporary untyped table by executing its stored SELECT. A depth
/// guard catches self-referential view chains.
Table& resolve_table(Database& db, const std::string& name, WorkingSet& ws) {
  if (!db.has_view(name)) return db.table(name);

  thread_local int view_depth = 0;
  if (view_depth > 16) {
    throw DbError("view expansion too deep (cycle?) at " + name);
  }
  ++view_depth;
  ResultSetData data;
  try {
    // Views were validated placeholder-free at CREATE VIEW time.
    data = db.execute(db.view_sql(name), {});
  } catch (...) {
    --view_depth;
    throw;
  }
  --view_depth;

  TableSchema schema(name);
  for (const auto& column : data.column_names) {
    ColumnDef def;
    def.name = column;  // untyped: values stored as produced
    def.type = ValueType::kNull;
    schema.add_column(std::move(def));
  }
  auto materialized = std::make_unique<Table>(std::move(schema));
  for (auto& row : data.rows) materialized->insert(std::move(row));
  ws.owned_tables.push_back(std::move(materialized));
  return *ws.owned_tables.back();
}

/// FROM + JOIN + WHERE: produce the working rows and the column layout.
WorkingSet build_working_set(Database& db, SelectStatement& stmt,
                             const Params& params) {
  WorkingSet ws;
  if (!stmt.from) {
    ws.rows.emplace_back();  // one empty row: SELECT 1+1
    if (stmt.where) {
      bind_expr(*stmt.where, ws.layout);
      std::vector<Row> kept;
      for (auto& row : ws.rows) {
        if (is_truthy(eval_expr(*stmt.where, row, params))) kept.push_back(row);
      }
      ws.rows = std::move(kept);
    }
    return ws;
  }

  Table& base = resolve_table(db, stmt.from->table, ws);
  const std::string base_alias = util::to_lower(stmt.from->alias);
  for (const auto& column : base.schema().columns()) {
    ws.layout.push_back({base_alias, column.name});
  }
  // Predicate push-down. Without joins the whole WHERE binds against the
  // base layout and drives index selection. With joins, each AND-conjunct
  // that references only base columns is bound, used for index selection,
  // and applied before the join (sound under three-valued logic: a row on
  // which any conjunct is not truthy cannot satisfy the full conjunction).
  const Expr* base_where = nullptr;
  std::vector<Expr*> pushed;
  if (stmt.where) {
    if (stmt.joins.empty()) {
      bind_expr(*stmt.where, ws.layout);
      base_where = stmt.where.get();
    } else {
      std::vector<Expr*> conjuncts;
      split_conjuncts(*stmt.where, conjuncts);
      for (Expr* conjunct : conjuncts) {
        try {
          bind_expr(*conjunct, ws.layout);
          pushed.push_back(conjunct);
        } catch (const DbError&) {
          // References a joined table's columns; evaluated post-join.
        }
      }
    }
  }

  std::vector<RowId> candidates;
  if (base_where != nullptr || pushed.empty()) {
    candidates = collect_candidates(base, base_where, params);
  } else {
    // Index selection over the first pushed conjunct that an index serves.
    bool used_index = false;
    for (const Expr* conjunct : pushed) {
      std::vector<IndexPredicate> predicates;
      collect_index_predicates(*conjunct, params,
                               base.schema().columns().size(), predicates);
      for (const auto& p : predicates) {
        if (p.op == "=" && base.has_index(p.column)) {
          if (auto hits = base.index_equal(p.column, p.value)) {
            candidates = *hits;
            used_index = true;
          }
          break;
        }
      }
      if (used_index) break;
    }
    if (!used_index) {
      base.scan([&](RowId id, const Row&) { candidates.push_back(id); });
    }
  }

  ws.rows.reserve(candidates.size());
  for (RowId id : candidates) {
    if (!base.is_live(id)) continue;
    const Row& row = base.row(id);
    bool keep = true;
    for (const Expr* conjunct : pushed) {
      if (!is_truthy(eval_expr(*conjunct, row, params))) {
        keep = false;
        break;
      }
    }
    if (keep) ws.rows.push_back(row);
  }

  // Joins: nested loop, with index lookup when ON is equality between an
  // existing column and a column of the joined table that has an index.
  for (auto& join : stmt.joins) {
    Table& right = resolve_table(db, join.table.table, ws);
    const std::string right_alias = util::to_lower(join.table.alias);
    std::vector<BoundColumn> new_layout = ws.layout;
    for (const auto& column : right.schema().columns()) {
      new_layout.push_back({right_alias, column.name});
    }
    bind_expr(*join.on, new_layout);

    // Detect "left_col = right_col" to drive an index lookup.
    std::size_t left_key = static_cast<std::size_t>(-1);
    std::size_t right_key = static_cast<std::size_t>(-1);
    const Expr& on = *join.on;
    if (on.kind == ExprKind::kBinary && on.op == "=" &&
        on.children[0]->kind == ExprKind::kColumnRef &&
        on.children[1]->kind == ExprKind::kColumnRef) {
      std::size_t a = on.children[0]->resolved_index;
      std::size_t b = on.children[1]->resolved_index;
      if (a < ws.layout.size() && b >= ws.layout.size()) {
        left_key = a;
        right_key = b - ws.layout.size();
      } else if (b < ws.layout.size() && a >= ws.layout.size()) {
        left_key = b;
        right_key = a - ws.layout.size();
      }
    }
    const bool use_index =
        right_key != static_cast<std::size_t>(-1) && right.has_index(right_key);

    std::vector<Row> joined;
    const std::size_t right_width = right.schema().columns().size();
    for (const auto& left_row : ws.rows) {
      bool matched = false;
      auto try_pair = [&](const Row& right_row) {
        Row combined = left_row;
        combined.insert(combined.end(), right_row.begin(), right_row.end());
        if (is_truthy(eval_expr(on, combined, params))) {
          joined.push_back(std::move(combined));
          matched = true;
        }
      };
      if (use_index) {
        auto hits = right.index_equal(right_key, left_row[left_key]);
        for (RowId id : *hits) {
          if (right.is_live(id)) try_pair(right.row(id));
        }
      } else {
        right.scan([&](RowId, const Row& right_row) { try_pair(right_row); });
      }
      if (!matched && join.left_outer) {
        Row combined = left_row;
        combined.resize(combined.size() + right_width);  // NULL padding
        joined.push_back(std::move(combined));
      }
    }
    ws.rows = std::move(joined);
    ws.layout = std::move(new_layout);
  }

  if (stmt.where && !stmt.joins.empty()) {
    bind_expr(*stmt.where, ws.layout);
    std::vector<Row> kept;
    kept.reserve(ws.rows.size());
    for (auto& row : ws.rows) {
      if (is_truthy(eval_expr(*stmt.where, row, params))) {
        kept.push_back(std::move(row));
      }
    }
    ws.rows = std::move(kept);
  } else if (stmt.where && stmt.joins.empty()) {
    // Index candidates are a superset; apply the full predicate.
    std::vector<Row> kept;
    kept.reserve(ws.rows.size());
    for (auto& row : ws.rows) {
      if (is_truthy(eval_expr(*stmt.where, row, params))) {
        kept.push_back(std::move(row));
      }
    }
    ws.rows = std::move(kept);
  }
  return ws;
}

std::string default_column_name(const Expr* expr, std::size_t position) {
  if (expr == nullptr) return "col" + std::to_string(position);
  if (expr->kind == ExprKind::kColumnRef) return expr->column_name;
  if (expr->kind == ExprKind::kFunction) {
    return util::to_lower(expr->function_name);
  }
  return "col" + std::to_string(position);
}

}  // namespace

ResultSetData execute_select(Database& db, SelectStatement& stmt,
                             const Params& params) {
  WorkingSet ws = build_working_set(db, stmt, params);

  // Expand '*' items into one column ref per working column.
  std::vector<const Expr*> output_exprs;  // parallel to output columns
  std::vector<ExprPtr> expanded;          // owns the expansion
  ResultSetData result;
  for (std::size_t i = 0; i < stmt.items.size(); ++i) {
    SelectItem& item = stmt.items[i];
    if (item.expr == nullptr) {
      for (std::size_t c = 0; c < ws.layout.size(); ++c) {
        auto ref = make_column(ws.layout[c].qualifier, ws.layout[c].name);
        ref->resolved_index = c;
        result.column_names.push_back(ws.layout[c].name);
        output_exprs.push_back(ref.get());
        expanded.push_back(std::move(ref));
      }
      continue;
    }
    bind_expr(*item.expr, ws.layout);
    result.column_names.push_back(
        item.alias.empty() ? default_column_name(item.expr.get(), i) : item.alias);
    output_exprs.push_back(item.expr.get());
  }

  // Detect aggregation.
  std::vector<Expr*> aggregate_nodes;
  for (const Expr* e : output_exprs) {
    auto found = find_aggregates(*const_cast<Expr*>(e));
    aggregate_nodes.insert(aggregate_nodes.end(), found.begin(), found.end());
  }
  if (stmt.having) {
    bind_expr(*stmt.having, ws.layout);
    auto found = find_aggregates(*stmt.having);
    aggregate_nodes.insert(aggregate_nodes.end(), found.begin(), found.end());
  }
  const bool aggregated = !aggregate_nodes.empty() || !stmt.group_by.empty();

  // Pre-compute ORDER BY keys alongside each output row so sorting works
  // uniformly for plain and aggregated queries.
  struct OutputRow {
    Row values;
    Row sort_keys;
  };
  std::vector<OutputRow> output;

  auto order_key_for = [&](const Row& working_row, const Row& produced,
                           const OrderItem& item) -> Value {
    // 1) positional: ORDER BY 2
    if (item.expr->kind == ExprKind::kLiteral &&
        item.expr->literal.type() == ValueType::kInt) {
      const std::int64_t pos = item.expr->literal.as_int();
      if (pos < 1 || pos > static_cast<std::int64_t>(produced.size())) {
        throw DbError("ORDER BY position out of range");
      }
      return produced[static_cast<std::size_t>(pos - 1)];
    }
    // 2) alias of an output column
    if (item.expr->kind == ExprKind::kColumnRef && item.expr->table_qualifier.empty()) {
      for (std::size_t c = 0; c < result.column_names.size(); ++c) {
        if (util::iequals(result.column_names[c], item.expr->column_name)) {
          return produced[c];
        }
      }
    }
    // 3) arbitrary expression over the working row (plain queries only)
    if (aggregated) {
      throw DbError("ORDER BY over aggregated queries must reference output "
                    "columns by alias or position");
    }
    bind_expr(*item.expr, ws.layout);
    return eval_expr(*item.expr, working_row, params);
  };

  if (!aggregated) {
    output.reserve(ws.rows.size());
    for (const auto& row : ws.rows) {
      OutputRow out;
      out.values.reserve(output_exprs.size());
      for (const Expr* e : output_exprs) {
        out.values.push_back(eval_expr(*e, row, params));
      }
      for (const auto& item : stmt.order_by) {
        out.sort_keys.push_back(order_key_for(row, out.values, item));
      }
      output.push_back(std::move(out));
    }
  } else {
    for (auto& g : stmt.group_by) bind_expr(*g, ws.layout);
    // Group rows by the GROUP BY key (empty key -> single group).
    std::map<Row, std::vector<const Row*>> groups;
    for (const auto& row : ws.rows) {
      Row key;
      key.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        key.push_back(eval_expr(*g, row, params));
      }
      groups[key].push_back(&row);
    }
    if (groups.empty() && stmt.group_by.empty()) {
      groups[Row{}] = {};  // aggregate over zero rows: one output row
    }
    for (auto& [key, members] : groups) {
      // Accumulate every aggregate node over the group's rows.
      std::vector<Accumulator> accumulators(aggregate_nodes.size());
      for (std::size_t a = 0; a < aggregate_nodes.size(); ++a) {
        accumulators[a].node = aggregate_nodes[a];
      }
      for (const Row* row : members) {
        for (std::size_t a = 0; a < aggregate_nodes.size(); ++a) {
          Expr* node = aggregate_nodes[a];
          if (node->children.size() == 1 &&
              node->children[0]->kind == ExprKind::kStar) {
            ++accumulators[a].count;
            accumulators[a].any = true;
          } else {
            accumulators[a].add(eval_expr(*node->children[0], *row, params));
          }
        }
      }
      std::vector<Value> aggregate_values;
      aggregate_values.reserve(accumulators.size());
      for (const auto& acc : accumulators) aggregate_values.push_back(acc.result());

      // Representative row for bare column references (first member).
      static const Row kEmptyRow;
      const Row& rep = members.empty() ? kEmptyRow : *members.front();

      AggregateRewrite rewrite(aggregate_nodes, aggregate_values);
      if (stmt.having &&
          !is_truthy(eval_expr(*stmt.having, rep, params))) {
        continue;
      }
      OutputRow out;
      out.values.reserve(output_exprs.size());
      for (const Expr* e : output_exprs) {
        out.values.push_back(eval_expr(*e, rep, params));
      }
      for (const auto& item : stmt.order_by) {
        out.sort_keys.push_back(order_key_for(rep, out.values, item));
      }
      output.push_back(std::move(out));
    }
  }

  if (stmt.distinct) {
    std::set<Row> seen;
    std::vector<OutputRow> kept;
    for (auto& row : output) {
      if (seen.insert(row.values).second) kept.push_back(std::move(row));
    }
    output = std::move(kept);
  }

  if (!stmt.order_by.empty()) {
    std::stable_sort(output.begin(), output.end(),
                     [&](const OutputRow& a, const OutputRow& b) {
                       for (std::size_t k = 0; k < stmt.order_by.size(); ++k) {
                         int c = a.sort_keys[k].compare(b.sort_keys[k]);
                         if (stmt.order_by[k].descending) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
  }

  std::size_t begin = 0;
  std::size_t end = output.size();
  if (stmt.offset) begin = std::min<std::size_t>(end, static_cast<std::size_t>(*stmt.offset));
  if (stmt.limit) end = std::min(end, begin + static_cast<std::size_t>(*stmt.limit));

  result.rows.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    result.rows.push_back(std::move(output[i].values));
  }
  return result;
}

}  // namespace perfdmf::sqldb
