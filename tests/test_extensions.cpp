// Tests for the extension modules: TAU callpath support, CSV export,
// expression-based derived metrics, hierarchical clustering.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/derived_expr.h"
#include "analysis/hierarchical.h"
#include "analysis/imbalance.h"
#include "analysis/kmeans.h"
#include "io/csv_export.h"
#include "io/detect.h"
#include "io/synth.h"
#include "profile/callpath.h"
#include "util/error.h"
#include "util/file.h"
#include "util/strings.h"

using namespace perfdmf;

// ---------------------------------------------------------------- callpath

TEST(Callpath, Predicates) {
  EXPECT_TRUE(profile::is_callpath("main => solve"));
  EXPECT_FALSE(profile::is_callpath("main"));
  EXPECT_FALSE(profile::is_callpath("compare a=>b"));  // needs spaces
}

TEST(Callpath, SplitAndComponents) {
  const std::string chain = "main => solve => MPI_Allreduce()";
  auto parts = profile::split_callpath(chain);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "main");
  EXPECT_EQ(parts[2], "MPI_Allreduce()");
  EXPECT_EQ(profile::callpath_leaf(chain), "MPI_Allreduce()");
  EXPECT_EQ(profile::callpath_parent(chain), "main => solve");
  EXPECT_EQ(profile::callpath_depth(chain), 3u);
  EXPECT_EQ(profile::callpath_depth("flat"), 1u);
  EXPECT_EQ(profile::callpath_parent("flat"), "");
  EXPECT_EQ(profile::callpath_leaf("flat"), "flat");
}

namespace {

/// A pure-callpath trial: solve called from two different parents.
profile::TrialData callpath_trial() {
  profile::TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  auto put = [&](const std::string& name, double excl, double calls) {
    const std::size_t e = trial.intern_event(name, "TAU_CALLPATH");
    profile::IntervalDataPoint p;
    p.exclusive = excl;
    p.inclusive = excl;
    p.num_calls = calls;
    trial.set_interval_data(e, t, m, p);
  };
  put("main => a => solve", 30.0, 3.0);
  put("main => b => solve", 70.0, 7.0);
  put("main => a", 10.0, 1.0);
  put("main => b", 20.0, 1.0);
  trial.infer_dimensions();
  trial.recompute_derived_fields();
  return trial;
}

}  // namespace

TEST(Callpath, FlattenAggregatesLeaves) {
  auto flat = profile::flatten_callpaths(callpath_trial());
  const auto solve = flat.find_event("solve");
  ASSERT_TRUE(solve.has_value());
  const auto* p = flat.interval_data(*solve, 0, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 100.0);  // 30 + 70
  EXPECT_DOUBLE_EQ(p->num_calls, 10.0);
  // Group marker stripped.
  EXPECT_EQ(flat.events()[*solve].group, "");
  // Leaves a and b aggregated too.
  EXPECT_TRUE(flat.find_event("a").has_value());
  EXPECT_TRUE(flat.find_event("b").has_value());
  EXPECT_FALSE(flat.find_event("main => a => solve").has_value());
}

TEST(Callpath, FlattenPrefersMeasuredFlatEvents) {
  auto trial = callpath_trial();
  // Add an authoritative flat "solve" with different numbers (TAU emits
  // flat + callpath side by side).
  const std::size_t e = trial.intern_event("solve", "TAU_USER");
  profile::IntervalDataPoint p;
  p.exclusive = 99.0;
  p.inclusive = 99.0;
  p.num_calls = 10.0;
  trial.set_interval_data(e, 0, 0, p);

  auto flat = profile::flatten_callpaths(trial);
  const auto* q = flat.interval_data(*flat.find_event("solve"), 0, 0);
  ASSERT_NE(q, nullptr);
  EXPECT_DOUBLE_EQ(q->exclusive, 99.0);  // measured, not 100 summed
}

TEST(Callpath, FlattenPassesThroughFlatProfiles) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 5;
  auto trial = io::synth::generate_trial(spec);
  auto flat = profile::flatten_callpaths(trial);
  EXPECT_EQ(flat.events().size(), trial.events().size());
  EXPECT_EQ(flat.interval_point_count(), trial.interval_point_count());
}

// --------------------------------------------------------------------- CSV

TEST(CsvEscape, QuotingRules) {
  EXPECT_EQ(io::csv_escape("plain", ','), "plain");
  EXPECT_EQ(io::csv_escape("a,b", ','), "\"a,b\"");
  EXPECT_EQ(io::csv_escape("say \"hi\"", ','), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(io::csv_escape("line\nbreak", ','), "\"line\nbreak\"");
  EXPECT_EQ(io::csv_escape("a,b", '\t'), "a,b");  // separator-dependent
}

TEST(CsvExport, IntervalRowsAndHeader) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 3;
  auto trial = io::synth::generate_trial(spec);
  const std::string csv = io::export_interval_csv(trial);
  auto lines = util::split_lines(csv);
  ASSERT_EQ(lines.size(), 1u + trial.interval_point_count());
  EXPECT_TRUE(util::starts_with(lines[0], "event,group,node,"));
  // Every data line has the same number of separators as the header.
  const auto header_fields = util::split(lines[0], ',');
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(util::split(lines[i], ',').size(), header_fields.size());
  }
}

TEST(CsvExport, EventNamesWithCommasAreQuoted) {
  profile::TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e = trial.intern_event("foo(int, double)");
  const std::size_t t = trial.intern_thread({0, 0, 0});
  profile::IntervalDataPoint p;
  p.exclusive = 1.0;
  trial.set_interval_data(e, t, m, p);
  const std::string csv = io::export_interval_csv(trial);
  EXPECT_NE(csv.find("\"foo(int, double)\""), std::string::npos);
}

TEST(CsvExport, AtomicRows) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 2;
  spec.atomic_event_count = 2;
  auto trial = io::synth::generate_trial(spec);
  const std::string csv = io::export_atomic_csv(trial);
  auto lines = util::split_lines(csv);
  EXPECT_EQ(lines.size(), 1u + trial.atomic_point_count());
}

TEST(CsvExport, CompactOptionDropsDerivedColumns) {
  io::synth::TrialSpec spec;
  auto trial = io::synth::generate_trial(spec);
  io::CsvOptions options;
  options.include_derived_fields = false;
  const std::string csv = io::export_interval_csv(trial, options);
  EXPECT_EQ(csv.find("inclusive_pct"), std::string::npos);
}

// ------------------------------------------------- derived expressions

namespace {

profile::TrialData two_metric_trial() {
  profile::TrialData trial;
  const std::size_t time = trial.intern_metric("TIME");
  const std::size_t flops = trial.intern_metric("PAPI_FP_OPS");
  const std::size_t e = trial.intern_event("kernel");
  for (int n = 0; n < 3; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.exclusive = 10.0 * (n + 1);
    p.inclusive = 20.0 * (n + 1);
    p.num_calls = 5.0;
    trial.set_interval_data(e, t, time, p);
    p.exclusive = 100.0 * (n + 1);
    p.inclusive = 200.0 * (n + 1);
    trial.set_interval_data(e, t, flops, p);
  }
  return trial;
}

}  // namespace

TEST(DerivedExpr, RatioFormula) {
  auto trial = two_metric_trial();
  const std::size_t index =
      analysis::derive_expression(trial, "RATE", "PAPI_FP_OPS / TIME");
  EXPECT_TRUE(trial.metrics()[index].derived);
  const auto* p = trial.interval_data(0, 0, index);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, 10.0);   // 100/10
  EXPECT_DOUBLE_EQ(p->inclusive, 10.0);   // 200/20
}

TEST(DerivedExpr, ArithmeticWithConstants) {
  auto trial = two_metric_trial();
  const std::size_t index = analysis::derive_expression(
      trial, "SCALED", "(PAPI_FP_OPS + TIME) * 0.5 - 5");
  const auto* p = trial.interval_data(0, 1, index);  // thread 1: 220, 20 excl
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->exclusive, (200.0 + 20.0) * 0.5 - 5.0);
}

TEST(DerivedExpr, FunctionsWork) {
  auto trial = two_metric_trial();
  const std::size_t index =
      analysis::derive_expression(trial, "ROOT", "SQRT(PAPI_FP_OPS)");
  const auto* p = trial.interval_data(0, 0, index);
  EXPECT_DOUBLE_EQ(p->exclusive, 10.0);
}

TEST(DerivedExpr, DivisionByZeroYieldsZero) {
  profile::TrialData trial;
  trial.intern_metric("A");
  trial.intern_metric("B");
  trial.intern_event("e");
  trial.intern_thread({0, 0, 0});
  profile::IntervalDataPoint p;
  p.exclusive = 5.0;
  trial.set_interval_data(0, 0, 0, p);
  p.exclusive = 0.0;
  trial.set_interval_data(0, 0, 1, p);
  const std::size_t index = analysis::derive_expression(trial, "R", "A / B");
  EXPECT_DOUBLE_EQ(trial.interval_data(0, 0, index)->exclusive, 0.0);
}

TEST(DerivedExpr, ErrorsAreReported) {
  auto trial = two_metric_trial();
  EXPECT_THROW(analysis::derive_expression(trial, "TIME", "PAPI_FP_OPS"),
               InvalidArgument);  // duplicate name
  EXPECT_THROW(analysis::derive_expression(trial, "X", "NO_SUCH / TIME"),
               DbError);  // unknown metric
  EXPECT_THROW(analysis::derive_expression(trial, "X", "TIME +"), ParseError);
  EXPECT_THROW(analysis::derive_expression(trial, "X", "1 + 2"),
               InvalidArgument);  // no metric referenced
}

TEST(DerivedExpr, SkipsPointsMissingAnOperand) {
  auto trial = two_metric_trial();
  // Add an event with TIME only.
  const std::size_t lonely = trial.intern_event("lonely");
  profile::IntervalDataPoint p;
  p.exclusive = 1.0;
  trial.set_interval_data(lonely, 0, *trial.find_metric("TIME"), p);
  const std::size_t index =
      analysis::derive_expression(trial, "R", "PAPI_FP_OPS / TIME");
  EXPECT_EQ(trial.interval_data(lonely, 0, index), nullptr);
  EXPECT_NE(trial.interval_data(*trial.find_event("kernel"), 0, index), nullptr);
}

// ---------------------------------------------------------- hierarchical

TEST(Hierarchical, MergesObviousClustersLast) {
  // Two tight blobs: the final (highest) merge joins the blobs.
  std::vector<double> data;
  for (int i = 0; i < 5; ++i) data.push_back(0.0 + 0.01 * i);
  for (int i = 0; i < 5; ++i) data.push_back(100.0 + 0.01 * i);
  auto tree = analysis::hierarchical_cluster(data, 10, 1);
  ASSERT_EQ(tree.merges.size(), 9u);
  EXPECT_GT(tree.merges.back().height, 50.0);
  EXPECT_LT(tree.merges[0].height, 1.0);
  // Heights are non-decreasing for average linkage on this data.
  for (std::size_t i = 1; i < tree.merges.size(); ++i) {
    EXPECT_GE(tree.merges[i].height + 1e-9, tree.merges[i - 1].height);
  }
}

TEST(Hierarchical, CutRecoversBlobs) {
  std::vector<double> data;
  for (int i = 0; i < 5; ++i) data.push_back(0.0 + 0.01 * i);
  for (int i = 0; i < 5; ++i) data.push_back(100.0 + 0.01 * i);
  auto tree = analysis::hierarchical_cluster(data, 10, 1);
  auto assignment = tree.cut(2);
  ASSERT_EQ(assignment.size(), 10u);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (int i = 6; i < 10; ++i) EXPECT_EQ(assignment[i], assignment[5]);
  EXPECT_NE(assignment[0], assignment[5]);
}

TEST(Hierarchical, CutExtremes) {
  std::vector<double> data{1.0, 2.0, 3.0};
  auto tree = analysis::hierarchical_cluster(data, 3, 1);
  auto all_separate = tree.cut(3);
  EXPECT_EQ(all_separate, (std::vector<std::size_t>{0, 1, 2}));
  auto all_together = tree.cut(1);
  EXPECT_EQ(all_together, (std::vector<std::size_t>{0, 0, 0}));
  auto clamped = tree.cut(99);
  EXPECT_EQ(clamped, all_separate);
  EXPECT_THROW(tree.cut(0), InvalidArgument);
}

TEST(Hierarchical, SingleRow) {
  auto tree = analysis::hierarchical_cluster({1.0, 2.0}, 1, 2);
  EXPECT_TRUE(tree.merges.empty());
  EXPECT_EQ(tree.cut(1), (std::vector<std::size_t>{0}));
}

TEST(Hierarchical, AgreesWithKMeansOnPlantedClusters) {
  io::synth::ClusterSpec spec;
  spec.threads = 60;
  spec.cluster_count = 3;
  auto planted = io::synth::generate_clustered_trial(spec);
  auto features = analysis::thread_features(planted.trial);
  auto tree = analysis::hierarchical_cluster(features.values, features.rows,
                                             features.cols);
  auto assignment = tree.cut(3);
  EXPECT_GT(analysis::adjusted_rand_index(assignment, planted.ground_truth),
            0.95);
}

TEST(Hierarchical, BadInputThrows) {
  EXPECT_THROW(analysis::hierarchical_cluster({}, 0, 0), InvalidArgument);
  EXPECT_THROW(analysis::hierarchical_cluster({1.0}, 1, 2), InvalidArgument);
}

TEST(Callpath, SyntheticCallpathTrialRoundTripsAndFlattens) {
  io::synth::TrialSpec spec;
  spec.nodes = 2;
  spec.event_count = 5;
  spec.with_callpaths = true;
  auto trial = io::synth::generate_trial(spec);
  // 5 flat events + 4 callpath twins (children only).
  EXPECT_EQ(trial.events().size(), 9u);

  // Through TAU files and back: callpath names survive intact.
  util::ScopedTempDir dir;
  io::synth::write_as_tau(trial, dir.path() / "cp");
  auto reloaded = io::load_profile(dir.path() / "cp");
  EXPECT_EQ(reloaded.events().size(), 9u);
  bool found_chain = false;
  for (const auto& event : reloaded.events()) {
    if (profile::is_callpath(event.name)) {
      found_chain = true;
      EXPECT_EQ(event.group, "TAU_CALLPATH");
    }
  }
  EXPECT_TRUE(found_chain);

  // Flatten: back down to the 5 flat events, flat data authoritative.
  auto flat = profile::flatten_callpaths(reloaded);
  EXPECT_EQ(flat.events().size(), 5u);
  const auto e = flat.find_event("hydro_sweep");
  const auto oe = trial.find_event("hydro_sweep");
  ASSERT_TRUE(e && oe);
  EXPECT_DOUBLE_EQ(flat.interval_data(*e, 0, 0)->exclusive,
                   trial.interval_data(*oe, 0, 0)->exclusive);
}

// ---------------------------------------------------------- imbalance

TEST(Imbalance, DetectsPlantedSkew) {
  profile::TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t balanced = trial.intern_event("balanced");
  const std::size_t skewed = trial.intern_event("skewed");
  for (int n = 0; n < 8; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.exclusive = 100.0;
    trial.set_interval_data(balanced, t, m, p);
    p.exclusive = n == 3 ? 400.0 : 100.0;  // one hot thread
    trial.set_interval_data(skewed, t, m, p);
  }
  auto rows = analysis::compute_imbalance(trial);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].event_name, "skewed");  // biggest balancing win first
  // mean = (7*100 + 400)/8 = 137.5, max = 400 -> imb% ~ 190.9
  EXPECT_NEAR(rows[0].imbalance_pct, (400.0 / 137.5 - 1.0) * 100.0, 1e-9);
  EXPECT_NEAR(rows[0].imbalance_time, 400.0 - 137.5, 1e-9);
  EXPECT_NEAR(rows[1].imbalance_pct, 0.0, 1e-9);
}

TEST(Imbalance, OutlierThreadsByZScore) {
  profile::TrialData trial;
  const std::size_t m = trial.intern_metric("TIME");
  const std::size_t e = trial.intern_event("work");
  for (int n = 0; n < 16; ++n) {
    const std::size_t t = trial.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.exclusive = n == 5 ? 1000.0 : 100.0 + n * 0.01;
    trial.set_interval_data(e, t, m, p);
  }
  auto outliers = analysis::find_outlier_threads(trial, "TIME", 2.0);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].thread.node, 5);
  EXPECT_GT(outliers[0].z_score, 2.0);
}

TEST(Imbalance, NoOutliersInUniformData) {
  io::synth::TrialSpec spec;
  spec.nodes = 16;
  spec.imbalance = 0.0;  // perfectly balanced generator
  auto trial = io::synth::generate_trial(spec);
  // Tiny jitter remains (2% per event); a 3-sigma test finds nothing huge.
  auto outliers = analysis::find_outlier_threads(trial, "TIME", 4.0);
  EXPECT_TRUE(outliers.empty());
}

TEST(Imbalance, ErrorsAndEdges) {
  profile::TrialData empty;
  EXPECT_THROW(analysis::compute_imbalance(empty), InvalidArgument);
  EXPECT_THROW(analysis::find_outlier_threads(empty), InvalidArgument);
  // Two threads: imbalance computes, outliers need >= 3.
  profile::TrialData tiny;
  const std::size_t m = tiny.intern_metric("TIME");
  const std::size_t e = tiny.intern_event("f");
  for (int n = 0; n < 2; ++n) {
    const std::size_t t = tiny.intern_thread({n, 0, 0});
    profile::IntervalDataPoint p;
    p.exclusive = 50.0 + n;
    tiny.set_interval_data(e, t, m, p);
  }
  EXPECT_EQ(analysis::compute_imbalance(tiny).size(), 1u);
  EXPECT_TRUE(analysis::find_outlier_threads(tiny).empty());
}

TEST(Imbalance, FormatTable) {
  io::synth::TrialSpec spec;
  spec.nodes = 4;
  auto trial = io::synth::generate_trial(spec);
  const std::string table =
      analysis::format_imbalance_table(analysis::compute_imbalance(trial));
  EXPECT_NE(table.find("event"), std::string::npos);
  EXPECT_NE(table.find("imb%"), std::string::npos);
}

TEST(Callpath, FlattenIsIdempotent) {
  io::synth::TrialSpec spec;
  spec.nodes = 3;
  spec.event_count = 6;
  spec.with_callpaths = true;
  auto trial = io::synth::generate_trial(spec);
  auto once = profile::flatten_callpaths(trial);
  auto twice = profile::flatten_callpaths(once);
  ASSERT_EQ(twice.events().size(), once.events().size());
  ASSERT_EQ(twice.interval_point_count(), once.interval_point_count());
  once.for_each_interval([&](std::size_t e, std::size_t t, std::size_t m,
                             const profile::IntervalDataPoint& p) {
    const auto* q = twice.interval_data(
        *twice.find_event(once.events()[e].name),
        *twice.find_thread(once.threads()[t]), m);
    ASSERT_NE(q, nullptr);
    EXPECT_DOUBLE_EQ(q->exclusive, p.exclusive);
    EXPECT_DOUBLE_EQ(q->num_calls, p.num_calls);
  });
}
